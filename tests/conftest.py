"""Shared fixtures: small hand-built topologies and policies.

``figure3_*`` fixtures reconstruct the paper's Fig. 3 worked example:
a five-switch network with one ingress (l1) and two egresses (l2, l3),
paths s1-s2-s3 and s1-s2-s4-s5, and a three-rule policy attached to l1.
"""

from __future__ import annotations

import pytest

from repro.core.instance import PlacementInstance
from repro.net.routing import Path, Routing
from repro.net.topology import Topology
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch


def make_rule(pattern: str, action: Action, priority: int, name: str = "") -> Rule:
    return Rule(TernaryMatch.from_string(pattern), action, priority, name)


@pytest.fixture
def figure3_topology() -> Topology:
    topo = Topology()
    for name in ("s1", "s2", "s3", "s4", "s5"):
        topo.add_switch(name, capacity=2)
    topo.add_link("s1", "s2")
    topo.add_link("s2", "s3")
    topo.add_link("s2", "s4")
    topo.add_link("s4", "s5")
    topo.add_entry_port("l1", "s1")
    topo.add_entry_port("l2", "s3")
    topo.add_entry_port("l3", "s5")
    return topo


@pytest.fixture
def figure3_routing() -> Routing:
    return Routing([
        Path("l1", "l2", ("s1", "s2", "s3")),
        Path("l1", "l3", ("s1", "s2", "s4", "s5")),
    ])


@pytest.fixture
def figure3_policy() -> Policy:
    """Three prioritized rules: permit over two overlapping drops.

    r11 (highest): PERMIT 1*** ; r12: DROP 1*0* (overlaps r11);
    r13 (lowest): DROP 0***.
    """
    return Policy("l1", [
        make_rule("1***", Action.PERMIT, 3, "r11"),
        make_rule("1*0*", Action.DROP, 2, "r12"),
        make_rule("0***", Action.DROP, 1, "r13"),
    ])


@pytest.fixture
def figure3_instance(figure3_topology, figure3_routing, figure3_policy
                     ) -> PlacementInstance:
    return PlacementInstance(
        figure3_topology, figure3_routing, PolicySet([figure3_policy])
    )


@pytest.fixture
def line_topology() -> Topology:
    """A 3-switch line with one ingress and one egress, capacity 10."""
    topo = Topology()
    for name in ("a", "b", "c"):
        topo.add_switch(name, capacity=10)
    topo.add_link("a", "b")
    topo.add_link("b", "c")
    topo.add_entry_port("in", "a")
    topo.add_entry_port("out", "c")
    return topo


@pytest.fixture
def line_routing() -> Routing:
    return Routing([Path("in", "out", ("a", "b", "c"))])
