"""Cluster-level chaos: the keyed workload with a shard dying mid-run.

The cluster guarantee under test is *zero failed acked requests*: a
shard killed between the burst and delta phases must cost latency (one
failover + catalog re-deploy per affected deployment), never a failed
request in the loadgen report.  The end-to-end class boots a real
``repro serve --shards 3`` subprocess, drives the same workload over
TCP, and checks the SIGTERM graceful-drain contract the single-daemon
chaos suite pins.

``REPRO_CLUSTER_QUICK=1`` shrinks the workload for CI smoke runs (the
defaults here are already modest; quick roughly halves them).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys

import pytest

from repro.service import (
    ClusterLoadgenConfig,
    LocalCluster,
    ServiceClient,
    run_cluster_loadgen,
)

_QUICK = os.environ.get("REPRO_CLUSTER_QUICK") == "1"


def _workload(**overrides) -> ClusterLoadgenConfig:
    base = dict(
        seed=7, shards=3, deployments=3,
        unique_instances=3 if _QUICK else 4,
        repeats=2 if _QUICK else 3,
        deltas=2 if _QUICK else 4,
        clients=2 if _QUICK else 4,
        burst=3 if _QUICK else 4,
        num_paths=6, rules_per_policy=6, capacity=60,
        executor="inline", request_timeout=120.0,
    )
    base.update(overrides)
    return ClusterLoadgenConfig(**base)


class TestShardDeathMidRun:
    def test_zero_failures_with_home_shard_killed(self):
        """Kill the shard that owns deployment ``loadgen-0`` right
        before the delta phase; its deltas must fail over (catalog
        re-deploy on the ring successor) with zero failed requests."""
        config = _workload()
        with LocalCluster(shards=config.shards,
                          probe_interval=0.1) as cluster:
            victim = cluster.router.ring.route("loadgen-0")

            report = run_cluster_loadgen(
                config, cluster=cluster,
                disrupt=lambda: cluster.kill(victim))

        assert report["totals"]["failures"] == 0, (
            report["totals"]["failure_statuses"])
        summary = report["cluster"]
        assert summary["shards_hit"] >= 2
        assert summary["warm_affinity"]["violations"] == []
        # Every deployment's deltas landed somewhere; the victim's
        # deployment moved to a live shard.
        assert set(summary["delta_homes"]) == {
            "loadgen-0", "loadgen-1", "loadgen-2"}
        for shards in summary["delta_homes"].values():
            assert shards  # served, not dropped
        homes = summary["delta_homes"]["loadgen-0"]
        assert homes != [victim], "deltas kept landing on a dead shard"
        failovers = cluster.router.metrics.counter(
            "router_failovers_total").value
        assert failovers >= 1

    def test_clean_run_has_affinity_and_spread(self):
        report = run_cluster_loadgen(_workload())
        assert report["totals"]["failures"] == 0
        summary = report["cluster"]
        assert summary["shards_hit"] >= 2
        assert summary["warm_affinity"]["violations"] == []
        # Undisrupted, each deployment has exactly one home.
        for shards in summary["delta_homes"].values():
            assert len(shards) == 1


# ---------------------------------------------------------------------------
# Real-process end-to-end
# ---------------------------------------------------------------------------


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _spawn_cluster(port: int, journal_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__),
                                     "..", "..", "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", str(port), "--shards", "3", "--executor", "inline",
         "--journal-dir", journal_dir, "--durability", "flush",
         "--drain-timeout", "20"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )


class TestClusterEndToEnd:
    def test_serve_shards_over_tcp_then_sigterm_drain(self, tmp_path):
        """`repro serve --shards 3` behind the asyncio front-end: the
        full keyed workload over real sockets with zero failures,
        cluster-shaped metrics, then a clean SIGTERM drain (exit 0)."""
        port = _free_port()
        daemon = _spawn_cluster(port, str(tmp_path / "wal"))
        try:
            client = ServiceClient(port=port, retries=8,
                                   backoff_base=0.2, timeout=60.0)
            try:
                client.wait_ready(timeout=60.0)
                ping = client.ping()
                assert ping.result.get("cluster") is True
                assert len(ping.result["shards"]) == 3
            finally:
                client.close()

            config = _workload(address=f"127.0.0.1:{port}",
                               client_retries=4)
            report = run_cluster_loadgen(config)
            assert report["totals"]["failures"] == 0, (
                report["totals"]["failure_statuses"])
            assert report["cluster"]["shards_hit"] >= 2
            assert report["cluster"]["warm_affinity"]["violations"] == []

            daemon.send_signal(signal.SIGTERM)
            output, _ = daemon.communicate(timeout=60.0)
            assert daemon.returncode == 0, output
            assert "draining" in output
        finally:
            if daemon.poll() is None:  # pragma: no cover - hung drain
                daemon.kill()
                daemon.wait(timeout=10.0)

    def test_loadgen_cli_against_live_cluster(self, tmp_path):
        """The ``repro loadgen --cluster`` CLI writes a report with the
        cluster section and exits 0 on a zero-failure run."""
        port = _free_port()
        daemon = _spawn_cluster(port, str(tmp_path / "wal"))
        out = tmp_path / "loadgen.json"
        try:
            client = ServiceClient(port=port, retries=8,
                                   backoff_base=0.2, timeout=60.0)
            try:
                client.wait_ready(timeout=60.0)
            finally:
                client.close()
            env = dict(os.environ)
            env["PYTHONPATH"] = os.path.join(
                os.path.dirname(__file__), "..", "..", "src")
            env["REPRO_CLUSTER_QUICK"] = "1"
            result = subprocess.run(
                [sys.executable, "-m", "repro.cli", "loadgen",
                 "--cluster", "--address", f"127.0.0.1:{port}",
                 "-o", str(out)],
                env=env, capture_output=True, text=True, timeout=300,
            )
            assert result.returncode == 0, result.stdout + result.stderr
            report = json.loads(out.read_text())
            assert report["totals"]["failures"] == 0
            assert "cluster" in report
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=10.0)
