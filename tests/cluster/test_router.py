"""The consistent-hash cluster router.

Routing affinity (same key, same shard -- that is what keeps the
per-shard caches hot), sticky deployment homes, fail-open rerouting
with catalog re-deploy when a shard dies, aggregated control-plane
verbs, and the remote-shard adapter over real TCP daemons.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.generators import ExperimentConfig, build_instance
from repro.net.routing import Routing, ShortestPathRouter
from repro.policy.classbench import generate_policy_set
from repro import io as repro_io
from repro.service import (
    ClusterRouter,
    LocalCluster,
    PlacementService,
    RemoteShard,
    ServiceConfig,
    ServiceServer,
)
from repro.service.protocol import (
    DeltaRequest,
    HealthRequest,
    MetricsRequest,
    PingRequest,
    ReadyRequest,
    SolveRequest,
)


@pytest.fixture(scope="module")
def instances():
    return [build_instance(ExperimentConfig(
        k=4, num_paths=6, rules_per_policy=5, seed=20 + i,
    )) for i in range(4)]


@pytest.fixture
def cluster():
    with LocalCluster(shards=3, probe_interval=0.15) as cl:
        yield cl


def _install_request(instance, deployment, request_id):
    ports = [p.name for p in instance.topology.entry_ports]
    used = set(instance.policies.ingresses)
    free = next(p for p in ports if p not in used)
    policy = generate_policy_set([free], rules_per_policy=4,
                                 seed=77)[free]
    router = ShortestPathRouter(instance.topology, seed=0)
    paths = repro_io.routing_to_dict(
        Routing([router.shortest_path(free, ports[0])]))
    return DeltaRequest(
        deployment=deployment, op="install", ingress=free,
        policy=repro_io.policy_to_dict(policy), paths=paths,
        request_id=request_id,
    )


class TestAffinity:
    def test_same_digest_same_shard_and_cache_hit(self, cluster,
                                                  instances):
        for instance in instances:
            first = cluster.handle(SolveRequest(instance=instance))
            assert first.ok
            again = cluster.handle(SolveRequest(instance=instance))
            assert again.ok
            assert again.shard == first.shard
            assert again.served == "cache"

    def test_distinct_digests_spread_over_shards(self, cluster,
                                                 instances):
        shards = {cluster.handle(SolveRequest(instance=i)).shard
                  for i in instances}
        # 4 digests over 3 shards: in practice at least two distinct
        # shards; the exact spread is the hash's business.
        assert len(shards) >= 2

    def test_deltas_follow_the_deployment_home(self, cluster,
                                               instances):
        deploy = cluster.handle(SolveRequest(
            instance=instances[0], deploy_as="dep-sticky",
            request_id="deploy-1"))
        assert deploy.ok
        home = deploy.shard
        for index in range(3):
            request = _install_request(instances[0], "dep-sticky",
                                       f"ins-{index}")
            request.op = "install" if index == 0 else "modify"
            if index:
                request.paths = None
            response = cluster.handle(request)
            assert response.ok, response.error
            assert response.shard == home


class TestFailover:
    def test_kill_home_shard_reroutes_and_redeploys(self, cluster,
                                                    instances):
        deploy = cluster.handle(SolveRequest(
            instance=instances[1], deploy_as="dep-failover",
            request_id="deploy-f"))
        assert deploy.ok
        home = deploy.shard
        cluster.kill(home)
        response = cluster.handle(_install_request(
            instances[1], "dep-failover", "ins-after-kill"))
        assert response.ok, response.error
        assert response.shard != home
        router_metrics = cluster.router.metrics
        assert router_metrics.counter("router_failovers_total").value >= 1
        assert router_metrics.counter("router_redeploys_total").value >= 1

    def test_home_stays_on_successor_after_rejoin(self, cluster,
                                                  instances):
        deploy = cluster.handle(SolveRequest(
            instance=instances[2], deploy_as="dep-sticky2",
            request_id="deploy-s2"))
        home = deploy.shard
        cluster.kill(home)
        moved = cluster.handle(_install_request(
            instances[2], "dep-sticky2", "ins-moved"))
        assert moved.ok and moved.shard != home
        successor = moved.shard
        cluster.revive(home)
        deadline = time.monotonic() + 10.0
        while (home not in cluster.router.live_shards()
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert home in cluster.router.live_shards()
        # The successor owns deltas the original never saw; the home
        # must not snap back.
        installed = _install_request(instances[2], "dep-sticky2",
                                     "probe").ingress
        follow_up = cluster.handle(DeltaRequest(
            deployment="dep-sticky2", op="remove", ingress=installed,
            request_id="rm-after-rejoin"))
        assert follow_up.ok, follow_up.error
        assert follow_up.shard == successor

    def test_stateless_solve_fails_over(self, cluster, instances):
        first = cluster.handle(SolveRequest(instance=instances[3]))
        assert first.ok
        cluster.kill(first.shard)
        again = cluster.handle(SolveRequest(instance=instances[3]))
        assert again.ok
        assert again.shard != first.shard

    def test_no_live_shard_is_an_error(self, instances):
        with LocalCluster(shards=2, probe_interval=0.1) as cl:
            cl.kill("shard-0")
            cl.kill("shard-1")
            response = cl.handle(SolveRequest(instance=instances[0]))
            assert not response.ok
            assert "no live shard" in (response.error or "")


class TestAggregation:
    def test_ping_reports_all_shards(self, cluster):
        response = cluster.handle(PingRequest())
        assert response.ok and response.result["pong"] is True
        assert sorted(response.result["shards"]) == [
            "shard-0", "shard-1", "shard-2"]

    def test_ready_fails_open(self, cluster):
        assert cluster.handle(ReadyRequest()).result["ready"] is True
        cluster.kill("shard-1")
        deadline = time.monotonic() + 10.0
        while ("shard-1" in cluster.router.live_shards()
               and time.monotonic() < deadline):
            time.sleep(0.05)
        response = cluster.handle(ReadyRequest())
        assert response.result["ready"] is True  # 2 of 3 still serve
        assert "shard-1" in response.result["down"]

    def test_health_aggregates_and_flags_down_shards(self, cluster):
        healthy = cluster.handle(HealthRequest())
        assert healthy.result["healthy"] is True
        assert healthy.result["live_shards"] == 3
        cluster.kill("shard-2")
        deadline = time.monotonic() + 10.0
        while ("shard-2" in cluster.router.live_shards()
               and time.monotonic() < deadline):
            time.sleep(0.05)
        degraded = cluster.handle(HealthRequest())
        assert degraded.result["healthy"] is False
        assert "shard-2" in degraded.result["down"]

    def test_metrics_aggregates_counters(self, cluster, instances):
        for instance in instances[:2]:
            assert cluster.handle(SolveRequest(instance=instance)).ok
        response = cluster.handle(MetricsRequest())
        metrics = response.result["metrics"]
        assert metrics["cluster"]["counters"]["solves_started_total"] >= 2
        assert metrics["router"]["counters"]["router_requests_total"] >= 2
        assert len(metrics["shards"]) == 3


class TestMembership:
    def test_add_and_remove_shard(self, instances):
        with LocalCluster(shards=2, probe_interval=0.1) as cl:
            from repro.service.cluster import LocalShard

            extra = PlacementService(ServiceConfig(
                executor="inline", dispatchers=1, max_workers=1,
                supervise=False))
            try:
                cl.router.add_shard(LocalShard("shard-extra", extra))
                assert "shard-extra" in cl.router.shards()
                assert "shard-extra" in cl.router.ring.nodes()
                cl.router.remove_shard("shard-extra")
                assert "shard-extra" not in cl.router.shards()
                # Routing still works for every key afterwards.
                assert cl.handle(SolveRequest(
                    instance=instances[0])).ok
            finally:
                extra.close()

    def test_duplicate_shard_name_rejected(self):
        with LocalCluster(shards=2, probe_interval=0.1) as cl:
            from repro.service.cluster import LocalShard

            with pytest.raises(ValueError):
                cl.router.add_shard(
                    LocalShard("shard-0", cl.shards["shard-0"].service))


class TestRemoteShards:
    def test_router_over_tcp_daemons(self, instances):
        services = [PlacementService(ServiceConfig(
            executor="inline", dispatchers=1, max_workers=1,
            supervise=False)) for _ in range(2)]
        servers = [ServiceServer(svc) for svc in services]
        for server in servers:
            server.start()
        shards = [RemoteShard(f"tcp-{i}", "127.0.0.1", server.port)
                  for i, server in enumerate(servers)]
        router = ClusterRouter(shards, probe_interval=0.2)
        try:
            assert router.handle(PingRequest()).ok
            first = router.handle(SolveRequest(instance=instances[0]))
            assert first.ok and first.shard in ("tcp-0", "tcp-1")
            again = router.handle(SolveRequest(instance=instances[0]))
            assert again.served == "cache"
            assert again.shard == first.shard
            # The second call reused the pooled connection.
            pooled = shards[int(first.shard[-1])]
            assert pooled.telemetry()["pool_hits"] >= 1
        finally:
            router.close()
            for shard in shards:
                shard.close()
            for server in servers:
                server.shutdown(drain=False)
