"""Epoch invalidation across the cluster.

A cache entry is only safe to serve if its shard has applied every
epoch bump the router has accepted.  These tests pin the three legs of
that invariant: broadcasts reach every live shard, a partitioned shard
is caught up on the bumps it missed *before* it serves again (the
stale-hit prevention path), and a killed-then-revived shard -- whose
fresh cache starts at epoch zero -- replays the ledger the same way.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.generators import ExperimentConfig, build_instance
from repro.service import LocalCluster
from repro.service.protocol import InvalidateRequest, SolveRequest

@pytest.fixture(scope="module")
def instances():
    return [build_instance(ExperimentConfig(
        k=4, num_paths=6, rules_per_policy=5, seed=40 + i,
    )) for i in range(3)]


@pytest.fixture
def cluster():
    with LocalCluster(shards=3, probe_interval=0.1) as cl:
        yield cl


def _wait_live(cluster, name, present=True, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if (name in cluster.router.live_shards()) == present:
            return
        time.sleep(0.05)
    raise AssertionError(
        f"{name} did not become {'live' if present else 'down'}")


class TestBroadcast:
    def test_bump_reaches_every_shard(self, cluster):
        response = cluster.handle(InvalidateRequest(scope="topology"))
        assert response.ok
        assert sorted(response.result["shards"]) == [
            "shard-0", "shard-1", "shard-2"]
        assert response.result["skipped_down"] == []
        for epochs in response.result["shards"].values():
            assert epochs["topology"] >= 1

    def test_repeat_solve_resolves_after_bump(self, cluster, instances):
        first = cluster.handle(SolveRequest(instance=instances[0]))
        assert first.served == "solved"
        warm = cluster.handle(SolveRequest(instance=instances[0]))
        assert warm.served == "cache"
        assert cluster.handle(InvalidateRequest(scope="all")).ok
        again = cluster.handle(SolveRequest(instance=instances[0]))
        assert again.ok
        assert again.served == "solved"  # the cached entry died

    def test_cache_rebuilds_at_the_new_epoch(self, cluster, instances):
        first = cluster.handle(SolveRequest(instance=instances[1]))
        assert first.served == "solved"
        shard = first.shard
        assert cluster.handle(InvalidateRequest(scope="topology")).ok
        rebuilt = cluster.handle(SolveRequest(instance=instances[1]))
        assert rebuilt.served == "solved" and rebuilt.shard == shard
        # The re-solve re-cached under the new epoch: warm again.
        warm = cluster.handle(SolveRequest(instance=instances[1]))
        assert warm.served == "cache" and warm.shard == shard


class TestPartitionedShard:
    def test_no_stale_hit_after_rejoin(self, cluster, instances):
        """The ordering that matters: solve X (cached on S) ->
        partition S -> invalidate (S misses it) -> S rejoins -> solve X
        must re-solve, never serve the pre-invalidation entry."""
        first = cluster.handle(SolveRequest(instance=instances[2]))
        assert first.served == "solved"
        shard = first.shard
        # Simulated partition: the router thinks S is down; the shard
        # itself (and its cache) is untouched.
        cluster.router._mark_down(shard)
        bump = cluster.handle(InvalidateRequest(scope="all"))
        assert shard in bump.result["skipped_down"]
        assert shard not in bump.result["shards"]
        # The prober heals the partition and must catch the shard up.
        _wait_live(cluster, shard, present=True)
        again = cluster.handle(SolveRequest(instance=instances[2]))
        assert again.ok
        assert again.shard == shard
        assert again.served == "solved", (
            "stale cache entry served after missed invalidation")
        assert cluster.metrics.counter(
            "router_catchup_bumps_total").value >= 1

    def test_fail_open_route_to_down_shard_catches_up_first(
            self, cluster, instances):
        """Fail-open routing (all preferred shards down-marked) must
        run catch-up inline rather than waiting for the prober."""
        first = cluster.handle(SolveRequest(instance=instances[2]))
        shard = first.shard
        assert cluster.handle(SolveRequest(
            instance=instances[2])).served == "cache"
        for name in cluster.router.shards():
            cluster.router._mark_down(name)
        assert cluster.handle(InvalidateRequest(scope="all")).ok
        before = cluster.metrics.counter(
            "router_catchup_bumps_total").value
        again = cluster.handle(SolveRequest(instance=instances[2]))
        assert again.ok and again.shard == shard
        assert again.served == "solved"
        assert cluster.metrics.counter(
            "router_catchup_bumps_total").value > before


class TestRevivedShard:
    def test_killed_then_revived_shard_replays_ledger(self, cluster,
                                                      instances):
        first = cluster.handle(SolveRequest(instance=instances[0]))
        shard = first.shard
        cluster.kill(shard)
        _wait_live(cluster, shard, present=False)
        assert cluster.handle(InvalidateRequest(scope="policy",
                                                count=3)).ok
        before = cluster.metrics.counter(
            "router_catchup_bumps_total").value
        cluster.revive(shard)
        _wait_live(cluster, shard, present=True)
        assert cluster.metrics.counter(
            "router_catchup_bumps_total").value >= before + 3
        # The revived shard serves again, at the cluster's epochs.
        again = cluster.handle(SolveRequest(instance=instances[0]))
        assert again.ok and again.shard == shard
