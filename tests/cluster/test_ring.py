"""Consistent-hash ring properties.

The guarantees the cluster design rests on, checked exhaustively with
hypothesis rather than by example:

* **determinism** -- same seed, same membership, same routing, across
  independently constructed rings (shards and the router must agree);
* **minimal remapping** -- adding a node moves keys only *onto* the new
  node; removing a node moves only *its own* keys, and they land on
  each key's next preference -- no innocent bystander key ever moves;
* **quantitative K/N bound** -- the moved share concentrates around
  1/N with virtual nodes;
* **failover coverage** -- the preference list enumerates every node,
  so after any set of failures each key still maps to a live shard,
  and the survivor agrees with a ring rebuilt without the dead nodes.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.service.cluster import HashRing

_NAMES = st.lists(
    st.text(alphabet="abcdefghij0123456789-", min_size=1, max_size=12),
    min_size=2, max_size=8, unique=True,
)

_KEYS = st.lists(st.text(min_size=1, max_size=32),
                 min_size=1, max_size=64, unique=True)


def _ring(nodes, vnodes=64, seed=0) -> HashRing:
    ring = HashRing(vnodes=vnodes, seed=seed)
    for node in nodes:
        ring.add(node)
    return ring


class TestDeterminism:
    @given(nodes=_NAMES, keys=_KEYS, seed=st.integers(0, 2**16))
    @settings(max_examples=50, deadline=None)
    def test_same_seed_same_routing(self, nodes, keys, seed):
        first = _ring(nodes, seed=seed)
        second = _ring(list(reversed(nodes)), seed=seed)
        for key in keys:
            assert first.route(key) == second.route(key)
            assert first.preference(key) == second.preference(key)

    @given(nodes=_NAMES, keys=_KEYS)
    @settings(max_examples=25, deadline=None)
    def test_preference_covers_every_node(self, nodes, keys):
        ring = _ring(nodes)
        for key in keys:
            preference = ring.preference(key)
            assert sorted(preference) == sorted(nodes)
            assert preference[0] == ring.route(key)


class TestMinimalRemapping:
    @given(nodes=_NAMES, keys=_KEYS)
    @settings(max_examples=50, deadline=None)
    def test_join_moves_keys_only_to_new_node(self, nodes, keys):
        ring = _ring(nodes)
        before = {key: ring.route(key) for key in keys}
        ring.add("joiner-xyz")
        for key in keys:
            after = ring.route(key)
            assert after == before[key] or after == "joiner-xyz"

    @given(nodes=_NAMES, keys=_KEYS, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_leave_moves_only_the_dead_nodes_keys(self, nodes, keys,
                                                  data):
        ring = _ring(nodes)
        before = {key: ring.route(key) for key in keys}
        prefs = {key: ring.preference(key) for key in keys}
        victim = data.draw(st.sampled_from(nodes))
        ring.remove(victim)
        for key in keys:
            after = ring.route(key)
            if before[key] != victim:
                assert after == before[key]
            else:
                # The orphaned key lands on its next preference.
                survivors = [n for n in prefs[key] if n != victim]
                assert after == survivors[0]

    def test_remap_share_concentrates_around_one_over_n(self):
        shards = [f"shard-{i}" for i in range(4)]
        ring = _ring(shards, vnodes=64)
        keys = [f"digest-{i:05d}" for i in range(4000)]
        before = {key: ring.route(key) for key in keys}
        ring.remove("shard-2")
        moved = sum(1 for key in keys if ring.route(key) != before[key])
        expected = len(keys) / len(shards)
        # Virtual nodes keep per-shard shares near 1/N; allow 2x slack
        # for hash variance rather than asserting the exact share.
        assert moved <= 2.0 * expected
        assert moved == sum(1 for key in keys if before[key] == "shard-2")


class TestFailover:
    @given(nodes=_NAMES, keys=_KEYS, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_every_key_maps_to_a_live_node_after_failures(
            self, nodes, keys, data):
        ring = _ring(nodes)
        dead = set(data.draw(st.lists(
            st.sampled_from(nodes), max_size=len(nodes) - 1,
            unique=True)))
        live = [n for n in nodes if n not in dead]
        shrunk = _ring(live)
        for key in keys:
            # Walking the full ring's preference past dead nodes gives
            # the same owner as a ring rebuilt without them: failover
            # routing and membership-change routing agree.
            survivor = next(n for n in ring.preference(key)
                            if n not in dead)
            assert survivor in live
            assert survivor == shrunk.route(key)


class TestValidation:
    def test_empty_ring_routes_nowhere(self):
        ring = HashRing()
        assert ring.preference("key") == []
        with pytest.raises(RuntimeError):
            ring.route("key")

    def test_duplicate_add_and_missing_remove_are_noops(self):
        ring = _ring(["a", "b"])
        ring.add("a")
        ring.remove("zzz")
        assert ring.nodes() == ["a", "b"]
        assert len(ring) == 2

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
