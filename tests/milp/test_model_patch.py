"""Property-based tests for in-place model patching.

A warm solver session evolves one live :class:`~repro.milp.model.Model`
across many re-solves instead of re-encoding per request.  That is only
sound if patching commutes with building: after *any* sequence of
coefficient patches, RHS updates, row appends, block replacements,
bound changes, retire/restore cycles, and column recycling, the live
model must be byte-identical -- canonical CSR arrays and content
digest -- to a model built from scratch with the final content.

The suite maintains a plain-Python ground-truth spec alongside the
patched model, mutates both through random operation sequences, and
compares the patched model against a from-scratch rebuild of the spec.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.milp.model import LinExpr, LinearBlock, Model, Sense

SENSES = (Sense.LE, Sense.GE, Sense.EQ)


# ---------------------------------------------------------------------------
# Ground truth: a declarative spec of the model content
# ---------------------------------------------------------------------------


class _BlockSpec:
    def __init__(self) -> None:
        self.entries = {}  # (row, col) -> coefficient
        self.senses = []
        self.rhs = []


class _ModelSpec:
    """What the model *should* contain after the operation sequence."""

    def __init__(self) -> None:
        self.bounds = []  # per variable (lb, ub)
        self.blocks = []
        self.objective = {}

    def rebuild(self) -> Model:
        """A from-scratch model with exactly this content."""
        model = Model("rebuilt")
        for index, (lb, ub) in enumerate(self.bounds):
            var = model.add_binary(f"rb{index}")
            model.set_var_bounds(var.index, lb, ub)
        for spec in self.blocks:
            rows, cols, data = [], [], []
            for (row, col), value in sorted(spec.entries.items()):
                if value != 0.0:
                    rows.append(row)
                    cols.append(col)
                    data.append(value)
            model.add_linear_block(rows, cols, data, list(spec.senses),
                                   list(spec.rhs))
        model.set_objective(LinExpr(dict(self.objective)))
        return model


def assert_equivalent(model: Model, spec: _ModelSpec) -> None:
    rebuilt = spec.rebuild()
    live, fresh = model.canonical_csr(), rebuilt.canonical_csr()
    for key in ("indptr", "indices", "data", "row_lb", "row_ub"):
        np.testing.assert_array_equal(
            live[key], fresh[key],
            err_msg=f"canonical CSR field {key!r} diverged")
    assert model.content_digest() == rebuilt.content_digest()


# ---------------------------------------------------------------------------
# Random operation sequences
# ---------------------------------------------------------------------------


def _random_block(rng: random.Random, model: Model,
                  spec: _ModelSpec) -> None:
    num_rows = rng.randint(1, 4)
    nvars = model.num_variables()
    rows, cols, data = [], [], []
    entries = {}
    for _ in range(rng.randint(0, 3 * num_rows)):
        row, col = rng.randrange(num_rows), rng.randrange(nvars)
        value = float(rng.randint(-3, 3))
        rows.append(row)
        cols.append(col)
        data.append(value)
        # COO duplicates accumulate in canonical form.
        entries[(row, col)] = entries.get((row, col), 0.0) + value
    senses = [rng.choice(SENSES) for _ in range(num_rows)]
    rhs = [float(rng.randint(-5, 5)) for _ in range(num_rows)]
    model.add_linear_block(rows, cols, data, senses, rhs)
    block = _BlockSpec()
    block.entries = entries
    block.senses = senses
    block.rhs = rhs
    spec.blocks.append(block)


def _apply_random_op(rng: random.Random, model: Model,
                     spec: _ModelSpec) -> None:
    op = rng.randrange(9)
    nvars = model.num_variables()
    if op == 0:  # grow the variable space (never recycles: fresh=True)
        count = rng.randint(1, 3)
        names = [f"g{nvars}_{i}" for i in range(count)]
        model.add_binaries(names, fresh=True)
        spec.bounds.extend([(0.0, 1.0)] * count)
    elif op == 1:
        _random_block(rng, model, spec)
    elif op == 2 and spec.blocks:  # coefficient patch (set semantics)
        which = rng.randrange(len(spec.blocks))
        block = spec.blocks[which]
        rows, cols, data = [], [], []
        for _ in range(rng.randint(1, 4)):
            row = rng.randrange(len(block.rhs))
            col = rng.randrange(nvars)
            value = float(rng.randint(-3, 3))  # 0 deletes the entry
            rows.append(row)
            cols.append(col)
            data.append(value)
            block.entries[(row, col)] = value
        model.patch_linear_block(which, rows, cols, data)
    elif op == 3 and spec.blocks:  # RHS patch, sparse or full
        which = rng.randrange(len(spec.blocks))
        block = spec.blocks[which]
        if rng.random() < 0.5:
            updates = {rng.randrange(len(block.rhs)):
                       float(rng.randint(-5, 5))
                       for _ in range(rng.randint(1, 3))}
            model.set_block_rhs(which, updates)
            for row, value in updates.items():
                block.rhs[row] = value
        else:
            fresh = [float(rng.randint(-5, 5))
                     for _ in range(len(block.rhs))]
            model.set_block_rhs(which, fresh)
            block.rhs = fresh
    elif op == 4 and spec.blocks:  # append rows
        which = rng.randrange(len(spec.blocks))
        block = spec.blocks[which]
        new_rows = rng.randint(1, 2)
        offset = len(block.rhs)
        rows, cols, data = [], [], []
        for _ in range(rng.randint(0, 2 * new_rows)):
            row, col = rng.randrange(new_rows), rng.randrange(nvars)
            value = float(rng.randint(-3, 3))
            rows.append(row)
            cols.append(col)
            data.append(value)
            key = (offset + row, col)
            block.entries[key] = block.entries.get(key, 0.0) + value
        senses = [rng.choice(SENSES) for _ in range(new_rows)]
        rhs = [float(rng.randint(-5, 5)) for _ in range(new_rows)]
        model.append_block_rows(which, rows, cols, data, senses, rhs)
        block.senses.extend(senses)
        block.rhs.extend(rhs)
    elif op == 5 and spec.blocks:  # wholesale replacement
        which = rng.randrange(len(spec.blocks))
        block = _BlockSpec()
        num_rows = rng.randint(1, 3)
        rows, cols, data = [], [], []
        for _ in range(rng.randint(0, 2 * num_rows)):
            row, col = rng.randrange(num_rows), rng.randrange(nvars)
            value = float(rng.randint(-3, 3))
            rows.append(row)
            cols.append(col)
            data.append(value)
            block.entries[(row, col)] = (
                block.entries.get((row, col), 0.0) + value)
        block.senses = [rng.choice(SENSES) for _ in range(num_rows)]
        block.rhs = [float(rng.randint(-5, 5)) for _ in range(num_rows)]
        model.replace_block(which, rows, cols, data,
                            list(block.senses), list(block.rhs))
        spec.blocks[which] = block
    elif op == 6:  # bound tightening
        index = rng.randrange(nvars)
        lb = float(rng.choice((0, 0, 1)))
        ub = float(rng.choice((0, 1)))
        if lb > ub:
            lb, ub = ub, lb
        model.set_var_bounds(index, lb, ub)
        spec.bounds[index] = (lb, ub)
    elif op == 7:  # retire / restore
        index = rng.randrange(nvars)
        if rng.random() < 0.5:
            model.retire_variable(index)
            spec.bounds[index] = (0.0, 0.0)
        else:
            model.restore_variable(index)
            spec.bounds[index] = (0.0, 1.0)
    elif op == 8:  # objective term
        index = rng.randrange(nvars)
        value = float(rng.randint(-2, 3))
        if value == 0.0:
            model.objective.coeffs.pop(index, None)
            spec.objective.pop(index, None)
        else:
            model.objective.coeffs[index] = value
            spec.objective[index] = value


def _seed_model(rng: random.Random):
    model = Model("live")
    spec = _ModelSpec()
    count = rng.randint(2, 6)
    model.add_binaries([f"s{i}" for i in range(count)])
    spec.bounds = [(0.0, 1.0)] * count
    for _ in range(rng.randint(1, 3)):
        _random_block(rng, model, spec)
    return model, spec


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       num_ops=st.integers(min_value=1, max_value=25))
def test_random_patch_sequences_match_scratch_build(seed, num_ops):
    """THE session-soundness property: any patch sequence leaves the
    model byte-identical (canonical CSR + digest) to a from-scratch
    build of the same final content."""
    rng = random.Random(seed)
    model, spec = _seed_model(rng)
    for _ in range(num_ops):
        _apply_random_op(rng, model, spec)
    assert_equivalent(model, spec)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_equivalence_holds_at_every_step(seed):
    """Not just at the end: the invariant holds after each operation."""
    rng = random.Random(seed)
    model, spec = _seed_model(rng)
    for _ in range(8):
        _apply_random_op(rng, model, spec)
        assert_equivalent(model, spec)


# ---------------------------------------------------------------------------
# Directed unit tests for the patching API edges
# ---------------------------------------------------------------------------


class TestPatchSemantics:
    def _model(self):
        model = Model("m")
        model.add_binaries(["a", "b", "c"])
        model.add_linear_block([0, 0, 1], [0, 1, 2], [1.0, 2.0, 3.0],
                               Sense.LE, [4.0, 5.0])
        return model

    def test_patch_sets_not_accumulates(self):
        model = self._model()
        model.patch_linear_block(0, [0], [0], [7.0])
        csr = model.canonical_csr()
        row0 = csr["data"][csr["indptr"][0]:csr["indptr"][1]]
        assert sorted(row0.tolist()) == [2.0, 7.0]

    def test_patch_to_zero_deletes_entry(self):
        model = self._model()
        model.patch_linear_block(0, [0], [1], [0.0])
        fresh = Model("f")
        fresh.add_binaries(["a", "b", "c"])
        fresh.add_linear_block([0, 1], [0, 2], [1.0, 3.0],
                               Sense.LE, [4.0, 5.0])
        assert model.content_digest() == fresh.content_digest()

    def test_append_rows_shifts_local_ids(self):
        model = self._model()
        block = model.append_block_rows(0, [0], [0], [9.0],
                                        Sense.GE, [1.0])
        assert block.num_rows == 3
        assert block.rows.max() == 2

    def test_set_block_rhs_sparse_and_full(self):
        model = self._model()
        model.set_block_rhs(0, {1: -2.0})
        assert model.blocks[0].rhs.tolist() == [4.0, -2.0]
        model.set_block_rhs(0, [0.0, 1.0])
        assert model.blocks[0].rhs.tolist() == [0.0, 1.0]

    def test_bad_bounds_and_rows_raise(self):
        model = self._model()
        with pytest.raises(ValueError):
            model.set_var_bounds(0, 1.0, 0.0)
        with pytest.raises(ValueError):
            model.patch_linear_block(0, [5], [0], [1.0])
        with pytest.raises(ValueError):
            model.set_block_rhs(0, [1.0])

    def test_retire_restore_roundtrip(self):
        model = self._model()
        var = model.variables[1]
        model.retire_variable(1)
        assert (var.lb, var.ub) == (0.0, 0.0)
        assert model.num_retired() == 1
        model.restore_variable(1)
        assert (var.lb, var.ub) == (0.0, 1.0)
        assert model.num_retired() == 0

    def test_recycle_requires_scrub_for_equivalence(self):
        """Scrub + recycle reuses the column index and the stale
        coefficients are gone from the canonical form."""
        model = self._model()
        model.retire_variable(2)
        model.scrub_column(2)
        recycled = model.add_binary("fresh")
        assert recycled.index == 2  # the freed slot, not a new column
        fresh = Model("f")
        fresh.add_binaries(["a", "b", "x"])
        fresh.add_linear_block([0, 0], [0, 1], [1.0, 2.0],
                               Sense.LE, [4.0, 5.0])
        assert model.content_digest() == fresh.content_digest()

    def test_fresh_binaries_bypass_free_list(self):
        model = self._model()
        model.retire_variable(0)
        (var,) = model.add_binaries(["brand_new"], fresh=True)
        assert var.index == 3  # appended, not recycled
        assert model.num_retired() == 1
