"""COO-triplet constraint blocks: semantics, validation, backend parity.

``Model.add_linear_block`` must be a pure encoding optimization: a model
built from blocks solves to the same answer as the same rows expressed
through the operator API, on every backend -- SciPy/HiGHS consumes the
triplets natively, branch-and-bound / LP export / presolve see them via
``all_constraints()``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ilp import build_encoding
from repro.core.objectives import TotalRules, apply_objective
from repro.experiments.generators import ExperimentConfig, build_instance
from repro.milp.bnb import BranchAndBoundBackend
from repro.milp.lpfile import to_lp_string
from repro.milp.model import Model, Sense, SolveStatus
from repro.milp.scipy_backend import ScipyMilpBackend


def block_model():
    """min x+y+z  s.t.  x+y >= 1,  y+z >= 1,  x+y+z <= 2  (binaries)."""
    model = Model("blocks")
    x = model.add_binary("x")
    y = model.add_binary("y")
    z = model.add_binary("z")
    model.add_linear_block(
        rows=[0, 0, 1, 1], cols=[x.index, y.index, y.index, z.index],
        data=[1.0, 1.0, 1.0, 1.0], senses=Sense.GE, rhs=[1.0, 1.0],
        name_prefix="cover",
    )
    model.add_linear_block(
        rows=[0, 0, 0], cols=[x.index, y.index, z.index],
        data=[1.0, 1.0, 1.0], senses=[Sense.LE], rhs=[2.0],
    )
    model.set_objective(x + y + z)
    return model, (x, y, z)


class TestBlockSemantics:
    def test_counts_include_blocks(self):
        model, _ = block_model()
        assert model.num_constraints() == 3
        assert len(model.constraints) == 0
        assert len(model.blocks) == 2

    def test_all_constraints_materializes_rows(self):
        model, (x, y, z) = block_model()
        cons = model.all_constraints()
        assert [c.name for c in cons] == ["cover[0]", "cover[1]", "blk[0]"]
        assert cons[0].expr.coeffs == {x.index: 1.0, y.index: 1.0}
        assert cons[0].sense is Sense.GE and cons[0].rhs == 1.0
        assert cons[2].sense is Sense.LE and cons[2].rhs == 2.0

    def test_all_constraints_without_blocks_is_identity(self):
        model = Model("plain")
        x = model.add_binary("x")
        model.add_constraint(x.to_expr() >= 1, name="only")
        assert model.all_constraints() is model.constraints

    def test_duplicate_triplets_accumulate(self):
        model = Model("dup")
        x = model.add_binary("x")
        block = model.add_linear_block(
            rows=[0, 0], cols=[x.index, x.index], data=[1.0, 1.0],
            senses=Sense.LE, rhs=[1.0],
        )
        (con,) = block.to_constraints()
        assert con.expr.coeffs == {x.index: 2.0}

    def test_bounds(self):
        model, _ = block_model()
        lower, upper = model.blocks[0].bounds()
        assert lower.tolist() == [1.0, 1.0]
        assert upper.tolist() == [np.inf, np.inf]
        lower, upper = model.blocks[1].bounds()
        assert lower.tolist() == [-np.inf]
        assert upper.tolist() == [2.0]

    def test_check_solution_covers_blocks(self):
        model, (x, y, z) = block_model()
        ok = {x.index: 1.0, y.index: 1.0, z.index: 0.0}
        bad = {x.index: 1.0, y.index: 0.0, z.index: 0.0}  # y+z >= 1 broken
        assert model.check_solution(ok)
        assert not model.check_solution(bad)


class TestValidation:
    def test_ragged_triplets_rejected(self):
        model = Model("v")
        x = model.add_binary("x")
        with pytest.raises(ValueError, match="parallel"):
            model.add_linear_block([0], [x.index, x.index], [1.0],
                                   Sense.LE, [1.0])

    def test_row_out_of_range_rejected(self):
        model = Model("v")
        x = model.add_binary("x")
        with pytest.raises(ValueError, match="row id"):
            model.add_linear_block([1], [x.index], [1.0], Sense.LE, [1.0])

    def test_unknown_variable_rejected(self):
        model = Model("v")
        model.add_binary("x")
        with pytest.raises(ValueError, match="unknown variable"):
            model.add_linear_block([0], [5], [1.0], Sense.LE, [1.0])

    def test_sense_count_mismatch_rejected(self):
        model = Model("v")
        x = model.add_binary("x")
        with pytest.raises(ValueError, match="senses"):
            model.add_linear_block([0], [x.index], [1.0],
                                   [Sense.LE, Sense.GE], [1.0])


class TestBackendParity:
    def test_scipy_solves_block_model(self):
        model, _ = block_model()
        result = ScipyMilpBackend().solve(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(1.0)

    def test_bnb_solves_block_model(self):
        model, _ = block_model()
        result = BranchAndBoundBackend().solve(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(1.0)

    def test_lp_export_includes_block_rows(self):
        model, _ = block_model()
        text = to_lp_string(model)
        assert "cover[0]" in text and "blk[0]" in text

    def test_infeasible_block_detected(self):
        model = Model("inf")
        x = model.add_binary("x")
        model.add_linear_block([0], [x.index], [1.0], Sense.GE, [2.0])
        result = ScipyMilpBackend().solve(model)
        assert result.status is SolveStatus.INFEASIBLE


class TestEncodingDifferential:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("merging", [False, True])
    def test_bulk_equals_operator(self, seed, merging):
        instance = build_instance(ExperimentConfig(
            seed=seed, num_ingresses=3, rules_per_policy=15))
        op = build_encoding(instance, enable_merging=merging, bulk=False)
        bulk = build_encoding(instance, enable_merging=merging, bulk=True)
        assert bulk.model.num_variables() == op.model.num_variables()
        assert bulk.model.num_constraints() == op.model.num_constraints()
        apply_objective(op, TotalRules())
        apply_objective(bulk, TotalRules())
        backend = ScipyMilpBackend()
        r_op = backend.solve(op.model)
        r_bulk = backend.solve(bulk.model)
        assert r_bulk.status is r_op.status
        assert r_bulk.objective == pytest.approx(r_op.objective)
        # Cross-feasibility: each solution satisfies the other encoding.
        if r_op.has_solution:
            assert bulk.model.check_solution(r_op.values)
            assert op.model.check_solution(r_bulk.values)

    def test_mixed_operator_and_block_rows(self):
        # A model carrying both kinds at once (merge linking stays
        # operator-form even under bulk=True).
        instance = build_instance(ExperimentConfig(
            seed=2, num_ingresses=2, rules_per_policy=12, blacklist_rules=5))
        enc = build_encoding(instance, enable_merging=True, bulk=True)
        assert enc.model.blocks and enc.model.constraints
        apply_objective(enc, TotalRules())
        result = ScipyMilpBackend().solve(enc.model)
        assert result.status is SolveStatus.OPTIMAL
        assert enc.model.check_solution(result.values)
