"""Tests for CPLEX LP-format export."""

from __future__ import annotations

from repro.milp.lpfile import to_lp_string, write_lp_file
from repro.milp.model import Model, lin_sum


def build_model() -> Model:
    m = Model("demo")
    x, y = m.add_binary("x"), m.add_binary("y")
    n = m.add_integer("n", lb=0, ub=5)
    m.add_constraint((x + 2 * y) <= 3, name="row1")
    m.add_constraint((x + n) >= 1)
    m.add_constraint(y.to_expr().eq(0))
    m.set_objective(lin_sum([x, y]) + n)
    return m


class TestFormat:
    def test_sections_present(self):
        text = to_lp_string(build_model())
        for section in ("Minimize", "Subject To", "Binaries", "Generals", "Bounds", "End"):
            assert section in text

    def test_named_and_default_rows(self):
        text = to_lp_string(build_model())
        assert " row1: " in text
        assert " c1: " in text  # auto-named second row

    def test_senses(self):
        text = to_lp_string(build_model())
        assert "<= 3" in text
        assert ">= 1" in text
        assert "= 0" in text

    def test_coefficient_rendering(self):
        text = to_lp_string(build_model())
        assert "x + 2 y" in text

    def test_negative_coefficients(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        m.add_constraint((x - y) <= 0)
        text = to_lp_string(m)
        assert "x - y <= 0" in text

    def test_empty_objective(self):
        m = Model()
        m.add_binary("x")
        assert "obj: 0" in to_lp_string(m)

    def test_write_file(self, tmp_path):
        path = tmp_path / "model.lp"
        write_lp_file(build_model(), str(path))
        assert path.read_text().startswith("\\ Model: demo")
