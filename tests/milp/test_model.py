"""Tests for the MILP modeling layer."""

from __future__ import annotations

import pytest

from repro.milp.model import (
    Constraint,
    LinExpr,
    Model,
    Sense,
    SolveStatus,
    VarType,
    lin_sum,
)


class TestExpressions:
    def test_variable_arithmetic(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        expr = 2 * x + y - 3
        assert expr.coeffs == {x.index: 2.0, y.index: 1.0}
        assert expr.constant == -3.0

    def test_subtraction_cancels(self):
        m = Model()
        x = m.add_binary("x")
        expr = (x + x) - 2 * x
        assert expr.coeffs == {}

    def test_negation_and_rsub(self):
        m = Model()
        x = m.add_binary("x")
        expr = 5 - x
        assert expr.coeffs == {x.index: -1.0}
        assert expr.constant == 5.0
        assert (-x).coeffs == {x.index: -1.0}

    def test_scale_by_non_number_rejected(self):
        m = Model()
        x = m.add_binary("x")
        with pytest.raises(TypeError):
            x.to_expr() * x.to_expr()  # type: ignore[arg-type]

    def test_value_evaluation(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        expr = 2 * x + 3 * y + 1
        assert expr.value({x.index: 1.0, y.index: 0.0}) == 3.0

    def test_lin_sum_matches_naive(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(5)]
        fast = lin_sum(xs)
        slow = LinExpr()
        for x in xs:
            slow = slow + x
        assert fast.coeffs == slow.coeffs

    def test_add_term_accumulates(self):
        m = Model()
        x = m.add_binary("x")
        expr = LinExpr()
        expr.add_term(x, 2).add_term(x, -2)
        assert expr.coeffs == {}


class TestConstraints:
    def test_normalization_moves_constant(self):
        m = Model()
        x = m.add_binary("x")
        con = (x + 5) <= 7
        assert con.sense is Sense.LE
        assert con.rhs == 2.0
        assert con.expr.constant == 0.0

    def test_satisfied(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        le = (x + y) <= 1
        ge = (x + y) >= 1
        eq = (x + y).eq(1)
        values = {x.index: 1.0, y.index: 0.0}
        assert le.satisfied(values) and ge.satisfied(values) and eq.satisfied(values)
        values = {x.index: 1.0, y.index: 1.0}
        assert not le.satisfied(values) and ge.satisfied(values) and not eq.satisfied(values)

    def test_variable_relational_sugar(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        con = x >= y
        assert isinstance(con, Constraint)
        assert con.satisfied({x.index: 1.0, y.index: 0.0})
        assert not con.satisfied({x.index: 0.0, y.index: 1.0})


class TestModel:
    def test_duplicate_names_rejected(self):
        m = Model()
        m.add_binary("x")
        with pytest.raises(ValueError):
            m.add_binary("x")

    def test_var_by_name(self):
        m = Model()
        x = m.add_binary("x")
        assert m.var_by_name("x") is x

    def test_check_solution_bounds_and_integrality(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constraint(x.to_expr() <= 1)
        assert m.check_solution({x.index: 1.0})
        assert not m.check_solution({x.index: 1.5})
        assert not m.check_solution({x.index: -0.5})

    def test_is_pure_binary(self):
        m = Model()
        m.add_binary("x")
        assert m.is_pure_binary()
        m.add_integer("n", ub=5)
        assert not m.is_pure_binary()

    def test_empty_model_solves(self):
        result = Model().solve()
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == 0.0

    def test_solve_result_accessors(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constraint(x.to_expr() >= 1)
        m.set_objective(x.to_expr())
        result = m.solve()
        assert result.status is SolveStatus.OPTIMAL
        assert result.int_value(x) == 1
        assert result.is_one(x)
