"""Backend correctness: HiGHS and branch-and-bound vs the exhaustive
oracle on randomized pure-binary instances."""

from __future__ import annotations

import random

import pytest

from repro.milp.bnb import BranchAndBoundBackend
from repro.milp.exhaustive import ExhaustiveBackend
from repro.milp.model import Model, SolveStatus, lin_sum
from repro.milp.scipy_backend import ScipyMilpBackend


def random_binary_model(rng: random.Random, n_vars: int, n_cons: int) -> Model:
    model = Model("random")
    xs = [model.add_binary(f"x{i}") for i in range(n_vars)]
    for _ in range(n_cons):
        subset = rng.sample(xs, rng.randint(1, n_vars))
        rhs = rng.randint(0, n_vars)
        expr = lin_sum(subset)
        if rng.random() < 0.45:
            model.add_constraint(expr <= rhs)
        elif rng.random() < 0.9:
            model.add_constraint(expr >= rhs)
        else:
            model.add_constraint(expr.eq(rhs))
    weights = [rng.randint(1, 5) for _ in xs]
    model.set_objective(lin_sum(w * x for w, x in zip(weights, xs)))
    return model


@pytest.mark.parametrize("backend_factory", [
    ScipyMilpBackend,
    BranchAndBoundBackend,
], ids=["scipy-highs", "bnb"])
def test_backends_agree_with_exhaustive(backend_factory):
    rng = random.Random(2024)
    oracle = ExhaustiveBackend()
    for trial in range(30):
        model = random_binary_model(rng, rng.randint(2, 9), rng.randint(1, 7))
        expected = oracle.solve(model)
        actual = model.solve(backend_factory())
        assert actual.status.has_solution == expected.status.has_solution, (
            f"trial {trial}: {actual.status} vs {expected.status}"
        )
        if expected.status.has_solution:
            assert actual.objective == pytest.approx(expected.objective, abs=1e-6)
            assert model.check_solution(actual.values)


class TestScipyBackend:
    def test_infeasible(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constraint(x.to_expr() >= 2)
        assert m.solve().status is SolveStatus.INFEASIBLE

    def test_objective_constant_carried(self):
        m = Model()
        x = m.add_binary("x")
        m.set_objective(x + 10)
        result = m.solve()
        assert result.objective == pytest.approx(10.0)

    def test_integer_variables(self):
        m = Model()
        n = m.add_integer("n", lb=0, ub=10)
        m.add_constraint(2 * n >= 7)
        m.set_objective(n.to_expr())
        result = m.solve()
        assert result.status is SolveStatus.OPTIMAL
        assert result.int_value(n) == 4

    def test_continuous_variables(self):
        m = Model()
        x = m.add_continuous("x", lb=0, ub=10)
        m.add_constraint(2 * x >= 7)
        m.set_objective(x.to_expr())
        result = m.solve()
        assert result.value(x) == pytest.approx(3.5)

    def test_unbounded_detected(self):
        m = Model()
        x = m.add_continuous("x", lb=0)
        m.set_objective(-1 * x)
        result = m.solve()
        assert result.status in (SolveStatus.UNBOUNDED, SolveStatus.ERROR)
        assert not result.status.has_solution

    def test_time_limit_option_accepted(self):
        """A (generous) time limit must not change the answer."""
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(6)]
        from repro.milp.model import lin_sum as ls

        m.add_constraint(ls(xs) >= 3)
        m.set_objective(ls(xs))
        result = m.solve(time_limit=30.0)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(3.0)


class TestBranchAndBound:
    def test_infeasible(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        m.add_constraint((x + y) >= 2)
        m.add_constraint((x + y) <= 1)
        result = m.solve(BranchAndBoundBackend())
        assert result.status is SolveStatus.INFEASIBLE

    def test_fractional_lp_forces_branching(self):
        """LP relaxation is fractional; B&B must still reach the integer
        optimum."""
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        # pairwise at-most-one: LP optimum is x=0.5 each.
        m.add_constraint((xs[0] + xs[1]) <= 1)
        m.add_constraint((xs[1] + xs[2]) <= 1)
        m.add_constraint((xs[0] + xs[2]) <= 1)
        m.set_objective(lin_sum(xs) * -1)  # maximize sum
        result = m.solve(BranchAndBoundBackend())
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(-1.0)
        assert result.stats["nodes"] >= 1

    def test_node_budget_reports_progress(self):
        backend = BranchAndBoundBackend(max_nodes=1)
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(6)]
        m.add_constraint(lin_sum(xs) >= 3)
        m.set_objective(lin_sum(xs))
        result = m.solve(backend)
        # With one node it may still find an incumbent via rounding; it
        # must never claim proven optimality with open nodes remaining.
        assert result.status in (
            SolveStatus.FEASIBLE, SolveStatus.TIME_LIMIT, SolveStatus.OPTIMAL
        )


class TestTimeoutSemantics:
    """Regressions for the contract that an expired time limit returns
    ``TIME_LIMIT`` with the best incumbent -- never OPTIMAL, never an
    exception, never a silently dropped solution."""

    @staticmethod
    def fractional_model() -> Model:
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        m.add_constraint((xs[0] + xs[1]) <= 1)
        m.add_constraint((xs[1] + xs[2]) <= 1)
        m.add_constraint((xs[0] + xs[2]) <= 1)
        m.set_objective(lin_sum(xs) * -1)
        return m

    def test_bnb_timeout_returns_incumbent(self):
        """Fake clock expires after the first node: the rounding
        incumbent must come back under TIME_LIMIT, not vanish."""
        ticks = iter([0.0, 1.0, 100.0, 101.0])
        backend = BranchAndBoundBackend(time_limit=50.0, clock=lambda: next(ticks))
        model = self.fractional_model()
        result = model.solve(backend)
        assert result.status is SolveStatus.TIME_LIMIT
        assert result.has_solution
        assert result.objective is not None
        assert model.check_solution(result.values)
        assert result.stats["nodes"] == 1
        # The reported dual bound must bracket the incumbent honestly.
        assert result.stats["bound"] <= result.objective + 1e-9

    def test_bnb_timeout_without_incumbent(self):
        ticks = iter([0.0, 100.0, 101.0])
        backend = BranchAndBoundBackend(time_limit=50.0, clock=lambda: next(ticks))
        result = self.fractional_model().solve(backend)
        assert result.status is SolveStatus.TIME_LIMIT
        assert not result.has_solution
        assert result.objective is None

    def test_bnb_node_budget_is_feasible_not_time_limit(self):
        """Stopping on the node budget is a work limit, not a wall-clock
        expiry; the status must say FEASIBLE (or OPTIMAL if done)."""
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(6)]
        m.add_constraint(lin_sum(xs) >= 3)
        m.set_objective(lin_sum(xs))
        result = m.solve(BranchAndBoundBackend(max_nodes=1))
        assert result.status is not SolveStatus.TIME_LIMIT

    def test_scipy_limit_status_maps_to_time_limit(self, monkeypatch):
        """HiGHS status 1 (limit) with an incumbent must surface as
        TIME_LIMIT carrying that incumbent."""
        import numpy as np

        from repro.milp import scipy_backend as sb

        class FakeResult:
            status = 1
            x = np.array([1.0, 0.0])
            fun = 1.0
            mip_node_count = 7
            mip_gap = 0.25

        monkeypatch.setattr(sb, "milp", lambda *a, **kw: FakeResult())
        m = Model()
        m.add_binary("a"), m.add_binary("b")
        result = m.solve(ScipyMilpBackend())
        assert result.status is SolveStatus.TIME_LIMIT
        assert result.has_solution
        assert result.objective == pytest.approx(1.0)
        assert result.stats["gap"] == pytest.approx(0.25)

    def test_scipy_limit_without_incumbent(self, monkeypatch):
        from repro.milp import scipy_backend as sb

        class FakeResult:
            status = 1
            x = None
            fun = None
            mip_node_count = None
            mip_gap = None

        monkeypatch.setattr(sb, "milp", lambda *a, **kw: FakeResult())
        m = Model()
        m.add_binary("a")
        result = m.solve(ScipyMilpBackend())
        assert result.status is SolveStatus.TIME_LIMIT
        assert not result.has_solution


class TestExhaustive:
    def test_rejects_large_models(self):
        m = Model()
        for i in range(30):
            m.add_binary(f"x{i}")
        with pytest.raises(ValueError):
            m.solve(ExhaustiveBackend())

    def test_rejects_non_binary(self):
        m = Model()
        m.add_integer("n")
        with pytest.raises(ValueError):
            m.solve(ExhaustiveBackend())
