"""Tests for MILP presolve reductions."""

from __future__ import annotations

import random

import pytest

from repro.milp.exhaustive import ExhaustiveBackend
from repro.milp.model import Model, SolveStatus, lin_sum
from repro.milp.presolve import presolve, solve_with_presolve


class TestFixings:
    def test_equality_pin_eliminated(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        m.add_constraint(x.to_expr().eq(1.0))
        m.add_constraint((x + y) <= 1)
        m.set_objective(lin_sum([x, y]))
        reduction = presolve(m)
        # The fixed point cascades: x=1 makes the <= row force y=0.
        assert reduction.fixed == {x.index: 1.0, y.index: 0.0}
        assert reduction.model.num_variables() == 0
        result = solve_with_presolve(m)
        assert result.status is SolveStatus.OPTIMAL
        assert result.values[x.index] == 1.0
        assert result.values[y.index] == 0.0

    def test_cascading_fixings(self):
        m = Model()
        x, y, z = (m.add_binary(n) for n in "xyz")
        m.add_constraint(x.to_expr().eq(1.0))
        m.add_constraint((x + y) <= 1)     # forces y = 0
        m.add_constraint((y + z) >= 1)     # then forces z = 1
        m.set_objective(lin_sum([x, y, z]))
        reduction = presolve(m)
        assert reduction.fixed == {x.index: 1.0, y.index: 0.0, z.index: 1.0}
        assert reduction.model.num_variables() == 0

    def test_all_zero_row(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        m.add_constraint(lin_sum(xs) <= 0)
        reduction = presolve(m)
        assert all(reduction.fixed[x.index] == 0.0 for x in xs)

    def test_all_one_row(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        m.add_constraint(lin_sum(xs) >= 3)
        reduction = presolve(m)
        assert all(reduction.fixed[x.index] == 1.0 for x in xs)

    def test_infeasible_pin_detected(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constraint(x.to_expr().eq(1.0))
        m.add_constraint(x.to_expr().eq(0.0))
        reduction = presolve(m)
        assert reduction.infeasible
        assert solve_with_presolve(m).status is SolveStatus.INFEASIBLE

    def test_redundant_rows_dropped(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        m.add_constraint(lin_sum(xs) <= 5)   # implied by bounds
        m.add_constraint(lin_sum(xs) >= 0)   # implied by bounds
        reduction = presolve(m)
        assert reduction.rows_dropped == 2
        assert reduction.model.num_constraints() == 0


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_same_optimum_as_direct_solve(self, seed):
        rng = random.Random(seed)
        m = Model()
        n = rng.randint(3, 9)
        xs = [m.add_binary(f"x{i}") for i in range(n)]
        # Random structure plus deliberate pins to give presolve work.
        m.add_constraint(xs[0].to_expr().eq(float(rng.randint(0, 1))))
        for _ in range(rng.randint(1, 6)):
            subset = rng.sample(xs, rng.randint(1, n))
            rhs = rng.randint(0, n)
            expr = lin_sum(subset)
            m.add_constraint(expr <= rhs if rng.random() < 0.5 else expr >= rhs)
        weights = [rng.randint(1, 4) for _ in xs]
        m.set_objective(lin_sum(w * x for w, x in zip(weights, xs)))

        direct = m.solve(ExhaustiveBackend())
        via_presolve = solve_with_presolve(m)
        assert direct.status.has_solution == via_presolve.status.has_solution
        if direct.status.has_solution:
            assert via_presolve.objective == pytest.approx(direct.objective)
            assert m.check_solution(via_presolve.values)

    def test_objective_shift_accounted(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        m.add_constraint(x.to_expr().eq(1.0))
        m.add_constraint(y.to_expr() >= 1)
        m.set_objective(5 * x + 3 * y + 2)
        result = solve_with_presolve(m)
        assert result.objective == pytest.approx(10.0)


class TestPlacementIntegration:
    def test_presolve_shrinks_pinned_encoding(self, figure3_instance):
        """Incremental-style pins should be eliminated wholesale."""
        from repro.core.ilp import build_encoding
        from repro.core.objectives import TotalRules, apply_objective

        pins = {(("l1", 1), "s3"): 1, (("l1", 1), "s1"): 0}
        encoding = build_encoding(figure3_instance, fixed=pins)
        apply_objective(encoding, TotalRules())
        reduction = presolve(encoding.model)
        assert reduction.model.num_variables() < encoding.model.num_variables()
        direct = encoding.model.solve()
        via = solve_with_presolve(encoding.model)
        assert via.objective == pytest.approx(direct.objective)
