"""Tests for the baseline placement strategies."""

from __future__ import annotations

import pytest

from repro.baselines import (
    place_all_at_ingress,
    place_greedy,
    place_replicated,
    replication_rule_count,
)
from repro.core.instance import PlacementInstance
from repro.core.placement import RulePlacer
from repro.core.verify import verify_placement
from repro.milp.model import SolveStatus
from repro.net.fattree import fattree
from repro.net.routing import ShortestPathRouter
from repro.policy.classbench import generate_policy_set


@pytest.fixture
def small_instance():
    topo = fattree(4, capacity=60)
    ports = [p.name for p in topo.entry_ports]
    ingresses = ports[:4]
    router = ShortestPathRouter(topo, seed=2)
    routing = router.random_routing(8, ingresses=ingresses)
    policies = generate_policy_set(ingresses, rules_per_policy=12, seed=2)
    return PlacementInstance(topo, routing, policies)


class TestIngressBaseline:
    def test_feasible_and_verified(self, small_instance):
        placement = place_all_at_ingress(small_instance)
        assert placement.status is SolveStatus.FEASIBLE
        assert verify_placement(placement).ok
        # Everything sits on the ingress-attached (edge) switches.
        for key, switches in placement.placed.items():
            assert len(switches) == 1
            (switch,) = switches
            assert small_instance.topology.switch(switch).layer == "edge"

    def test_zero_overhead(self, small_instance):
        placement = place_all_at_ingress(small_instance)
        assert placement.duplication_overhead() == pytest.approx(0.0)

    def test_infeasible_under_tight_capacity(self, small_instance):
        small_instance.topology.set_uniform_capacity(2)
        instance = PlacementInstance(
            small_instance.topology, small_instance.routing,
            small_instance.policies,
        )
        placement = place_all_at_ingress(instance)
        assert placement.status is SolveStatus.INFEASIBLE

    def test_matches_ilp_when_unconstrained(self, small_instance):
        """With ample capacity, all-at-ingress is optimal (the paper:
        the ILP does not preclude the greedy solution)."""
        ilp = RulePlacer().place(small_instance)
        ingress = place_all_at_ingress(small_instance)
        assert ilp.total_installed() == ingress.total_installed()


class TestGreedyBaseline:
    def test_feasible_and_verified(self, small_instance):
        placement = place_greedy(small_instance)
        assert placement.status is SolveStatus.FEASIBLE
        assert verify_placement(placement).ok

    def test_never_beats_ilp(self, small_instance):
        ilp = RulePlacer().place(small_instance)
        greedy = place_greedy(small_instance)
        assert greedy.total_installed() >= ilp.total_installed()

    def test_infeasible_when_capacity_zero(self, small_instance):
        small_instance.topology.set_uniform_capacity(0)
        instance = PlacementInstance(
            small_instance.topology, small_instance.routing,
            small_instance.policies,
        )
        assert place_greedy(instance).status is SolveStatus.INFEASIBLE


class TestReplicateBaseline:
    def test_counts_match_analytic_bound(self, small_instance):
        placement = place_replicated(small_instance)
        assert placement.status is SolveStatus.FEASIBLE
        copies = placement.solver_stats["copies_installed"]
        assert copies == replication_rule_count(small_instance)

    def test_strictly_worse_than_ilp(self, small_instance):
        """The Section V claim: the ILP's total is a small fraction of
        the p x r replication cost."""
        ilp = RulePlacer().place(small_instance)
        replicated = place_replicated(small_instance)
        assert ilp.total_installed() < replicated.solver_stats["copies_installed"]

    def test_semantics_still_correct(self, small_instance):
        """Replication is wasteful, not wrong."""
        placement = place_replicated(small_instance)
        assert verify_placement(placement).ok

    def test_infeasible_when_nothing_fits(self, small_instance):
        small_instance.topology.set_uniform_capacity(1)
        instance = PlacementInstance(
            small_instance.topology, small_instance.routing,
            small_instance.policies,
        )
        assert place_replicated(instance).status is SolveStatus.INFEASIBLE
