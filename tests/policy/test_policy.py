"""Tests for prioritized policies: structure and first-match semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch

WIDTH = 6


def random_policies():
    """Hypothesis strategy for small random policies over 6-bit headers."""
    rule_strategy = st.builds(
        lambda mask, raw, is_drop: (mask, raw & mask, is_drop),
        st.integers(0, (1 << WIDTH) - 1),
        st.integers(0, (1 << WIDTH) - 1),
        st.booleans(),
    )
    def build(rule_specs, default_drop):
        rules = [
            Rule(
                TernaryMatch(WIDTH, mask, value),
                Action.DROP if is_drop else Action.PERMIT,
                priority,
            )
            for priority, (mask, value, is_drop) in enumerate(rule_specs, start=1)
        ]
        return Policy(
            "in", rules, Action.DROP if default_drop else Action.PERMIT
        )
    return st.builds(build, st.lists(rule_strategy, max_size=6), st.booleans())


class TestStructure:
    def test_duplicate_priorities_rejected(self):
        rules = [
            Rule(TernaryMatch.wildcard(4), Action.DROP, 1),
            Rule(TernaryMatch.wildcard(4), Action.PERMIT, 1),
        ]
        with pytest.raises(ValueError):
            Policy("in", rules)

    def test_sorted_rules_decreasing(self):
        policy = Policy("in", [
            Rule(TernaryMatch.wildcard(4), Action.DROP, 1),
            Rule(TernaryMatch.wildcard(4), Action.PERMIT, 5),
            Rule(TernaryMatch.wildcard(4), Action.DROP, 3),
        ])
        assert [r.priority for r in policy.sorted_rules()] == [5, 3, 1]

    def test_add_rule_conflict(self):
        policy = Policy("in", [Rule(TernaryMatch.wildcard(4), Action.DROP, 1)])
        with pytest.raises(ValueError):
            policy.add_rule(Rule(TernaryMatch.wildcard(4), Action.PERMIT, 1))

    def test_priority_helpers(self):
        policy = Policy("in", [
            Rule(TernaryMatch.wildcard(4), Action.DROP, 2),
            Rule(TernaryMatch.wildcard(4), Action.PERMIT, 7),
        ])
        assert policy.next_priority_above() == 8
        assert policy.next_priority_below() == 1
        empty = Policy("in2")
        assert empty.next_priority_above() == 1
        assert empty.next_priority_below() == -1

    def test_rule_by_priority(self):
        rule = Rule(TernaryMatch.wildcard(4), Action.DROP, 2)
        policy = Policy("in", [rule])
        assert policy.rule_by_priority(2) is rule
        with pytest.raises(KeyError):
            policy.rule_by_priority(3)

    def test_partitions(self):
        policy = Policy("in", [
            Rule(TernaryMatch.wildcard(4), Action.DROP, 1),
            Rule(TernaryMatch.wildcard(4), Action.PERMIT, 2),
        ])
        assert len(policy.drop_rules()) == 1
        assert len(policy.permit_rules()) == 1


class TestSemantics:
    def test_first_match_wins(self):
        policy = Policy("in", [
            Rule(TernaryMatch.from_string("1***"), Action.PERMIT, 2),
            Rule(TernaryMatch.from_string("1*0*"), Action.DROP, 1),
        ])
        # 1x0x headers are permitted: the permit has higher priority.
        assert policy.evaluate(0b1000) is Action.PERMIT
        assert policy.evaluate(0b0000) is Action.PERMIT  # default

    def test_default_action(self):
        policy = Policy("in", [], default_action=Action.DROP)
        assert policy.evaluate(0) is Action.DROP

    @given(random_policies(), st.integers(0, (1 << WIDTH) - 1))
    def test_evaluate_matches_reference(self, policy, header):
        """First-match evaluation equals a naive reference."""
        expected = policy.default_action
        for rule in sorted(policy.rules, key=lambda r: -r.priority):
            if rule.match.matches(header):
                expected = rule.action
                break
        assert policy.evaluate(header) is expected

    @given(random_policies())
    def test_drop_region_exact(self, policy):
        region = policy.drop_region()
        for header in range(1 << WIDTH):
            assert region.contains(header) == (policy.evaluate(header) is Action.DROP)

    @given(random_policies())
    def test_semantically_equal_reflexive(self, policy):
        assert policy.semantically_equal(policy)

    def test_semantically_equal_detects_difference(self):
        a = Policy("in", [Rule(TernaryMatch.from_string("1***"), Action.DROP, 1)])
        b = Policy("in", [Rule(TernaryMatch.from_string("0***"), Action.DROP, 1)])
        assert not a.semantically_equal(b)

    def test_semantically_equal_rejects_mixed_defaults(self):
        a = Policy("in", [], default_action=Action.PERMIT)
        b = Policy("in", [], default_action=Action.DROP)
        with pytest.raises(ValueError):
            a.semantically_equal(b)

    def test_first_match_is(self):
        high = Rule(TernaryMatch.from_string("1***"), Action.PERMIT, 2)
        low = Rule(TernaryMatch.from_string("1*0*"), Action.DROP, 1)
        policy = Policy("in", [high, low])
        assert policy.first_match_is(high, 0b1000)
        assert not policy.first_match_is(low, 0b1000)


class TestPolicySet:
    def test_add_and_lookup(self):
        policies = PolicySet([Policy("a"), Policy("b")])
        assert "a" in policies
        assert policies["b"].ingress == "b"
        assert set(policies.ingresses) == {"a", "b"}

    def test_duplicate_rejected(self):
        policies = PolicySet([Policy("a")])
        with pytest.raises(ValueError):
            policies.add(Policy("a"))

    def test_total_rules(self):
        policies = PolicySet([
            Policy("a", [Rule(TernaryMatch.wildcard(4), Action.DROP, 1)]),
            Policy("b", [
                Rule(TernaryMatch.wildcard(4), Action.DROP, 1),
                Rule(TernaryMatch.wildcard(4), Action.PERMIT, 2),
            ]),
        ])
        assert policies.total_rules() == 3

    def test_remove(self):
        policies = PolicySet([Policy("a")])
        removed = policies.remove("a")
        assert removed.ingress == "a"
        assert "a" not in policies
