"""Tests for the ClassBench-style synthetic policy generator."""

from __future__ import annotations

import pytest

from repro.policy.classbench import (
    PolicyGenerator,
    PolicyGeneratorConfig,
    generate_policy_set,
)
from repro.policy.rule import Action, FIVE_TUPLE_WIDTH


class TestDeterminism:
    def test_same_seed_same_policies(self):
        a = generate_policy_set(["i0", "i1"], rules_per_policy=20, seed=42)
        b = generate_policy_set(["i0", "i1"], rules_per_policy=20, seed=42)
        for ingress in ("i0", "i1"):
            assert [(r.match, r.action, r.priority) for r in a[ingress].rules] == \
                   [(r.match, r.action, r.priority) for r in b[ingress].rules]

    def test_different_seeds_differ(self):
        a = generate_policy_set(["i0"], rules_per_policy=20, seed=1)
        b = generate_policy_set(["i0"], rules_per_policy=20, seed=2)
        assert [(r.match, r.action) for r in a["i0"].rules] != \
               [(r.match, r.action) for r in b["i0"].rules]


class TestStructure:
    def test_sizes_and_width(self):
        policies = generate_policy_set(["i0", "i1", "i2"], rules_per_policy=15, seed=0)
        assert len(policies) == 3
        for policy in policies:
            assert len(policy) == 15
            assert all(r.match.width == FIVE_TUPLE_WIDTH for r in policy.rules)

    def test_priorities_strict_and_descending_from_n(self):
        policy = generate_policy_set(["i0"], rules_per_policy=10, seed=0)["i0"]
        priorities = sorted(r.priority for r in policy.rules)
        assert priorities == list(range(1, 11))

    def test_drop_fraction_respected_roughly(self):
        config = PolicyGeneratorConfig(num_rules=400, drop_fraction=0.5)
        policy = PolicyGenerator(config, seed=3).generate_policy("i0")
        drops = sum(1 for r in policy.rules if r.is_drop)
        assert 0.35 < drops / 400 < 0.65

    def test_dependency_structure_exists(self):
        """Nested drops should create actual PERMIT-over-DROP overlaps."""
        from repro.core.depgraph import build_dependency_graph

        config = PolicyGeneratorConfig(
            num_rules=60, drop_fraction=0.5, nested_fraction=0.9
        )
        policy = PolicyGenerator(config, seed=5).generate_policy("i0")
        graph = build_dependency_graph(policy)
        assert graph.num_edges() > 0


class TestBlacklist:
    def test_blacklist_shared_across_policies(self):
        policies = generate_policy_set(
            ["i0", "i1", "i2"], rules_per_policy=10, seed=7, blacklist_rules=3
        )
        for policy in policies:
            assert len(policy) == 13
        # The blacklist rules are identical (match+action) in every policy.
        def top_rules(ingress):
            ordered = policies[ingress].sorted_rules()
            return [(r.match, r.action) for r in ordered[:3]]
        assert top_rules("i0") == top_rules("i1") == top_rules("i2")

    def test_blacklist_is_drop_and_highest_priority(self):
        policies = generate_policy_set(
            ["i0"], rules_per_policy=5, seed=7, blacklist_rules=2
        )
        ordered = policies["i0"].sorted_rules()
        assert all(r.action is Action.DROP for r in ordered[:2])

    def test_attach_blacklist_preserves_original_rules(self):
        generator = PolicyGenerator(seed=0)
        base = generator.generate_policy("i0", num_rules=8)
        blacklist = generator.generate_blacklist(2)
        extended = generator.attach_blacklist(base, blacklist)
        base_rules = {(r.match, r.action, r.priority) for r in base.rules}
        extended_rules = {(r.match, r.action, r.priority) for r in extended.rules}
        assert base_rules <= extended_rules
        assert len(extended) == 10
