"""Tests for the text policy format."""

from __future__ import annotations

import pytest

from repro.policy.rule import Action, FIVE_TUPLE_WIDTH
from repro.policy.textfmt import (
    PolicyParseError,
    format_policy,
    parse_policy,
    parse_rule_line,
)


class TestParseRule:
    def test_basic_permit(self):
        rule = parse_rule_line(
            "permit src 10.0.0.0/8 dport 443 proto tcp", priority=5
        )
        assert rule.action is Action.PERMIT
        assert rule.priority == 5
        assert rule.match.width == FIVE_TUPLE_WIDTH
        # 10.x.x.x, dst port 443, proto 6 should match:
        header = (10 << 24) << (FIVE_TUPLE_WIDTH - 32)
        header |= 443 << 8
        header |= 6
        assert rule.match.matches(header)
        # wrong proto must not:
        assert not rule.match.matches(header ^ 6 ^ 17)

    def test_synonyms(self):
        assert parse_rule_line("deny", 1).action is Action.DROP
        assert parse_rule_line("drop", 1).action is Action.DROP
        assert parse_rule_line("allow", 1).action is Action.PERMIT

    def test_any_everywhere_is_wildcard(self):
        rule = parse_rule_line(
            "deny src any dst any sport any dport any proto any", 1
        )
        assert rule.match.is_full()

    def test_field_order_free(self):
        a = parse_rule_line("deny proto udp src 10.0.0.0/8", 1)
        b = parse_rule_line("deny src 10.0.0.0/8 proto udp", 1)
        assert a.match == b.match

    def test_host_address_means_slash32(self):
        rule = parse_rule_line("deny dst 192.168.1.7", 1)
        header = ((192 << 24) | (168 << 16) | (1 << 8) | 7) << (
            FIVE_TUPLE_WIDTH - 64
        )
        assert rule.match.matches(header)
        assert not rule.match.matches(header + (1 << (FIVE_TUPLE_WIDTH - 64)))

    def test_numeric_protocol(self):
        rule = parse_rule_line("deny proto 47", 1)
        assert rule.match.matches(47)

    @pytest.mark.parametrize("bad", [
        "smash src any",                 # unknown action
        "deny src",                      # dangling token
        "deny src 10.0.0.0/33",          # prefix too long
        "deny src 10.0.0/8",             # malformed address
        "deny src 999.0.0.1/8",          # octet out of range
        "deny sport 70000",              # port out of range
        "deny sport http",               # non-numeric port
        "deny proto banana",             # unknown proto
        "deny proto 300",                # proto out of range
        "deny color red",                # unknown field
        "deny src any src any",          # duplicate field
        "",                              # empty
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(PolicyParseError):
            parse_rule_line(bad, 1)


class TestParsePolicy:
    TEXT = """
    # tenant-a ingress policy
    permit src 10.0.0.0/8 dport 443 proto tcp
    deny   dst 192.168.1.0/24 dport 22 proto tcp   # no ssh to mgmt
    deny   src 0.0.0.0/0
    """

    def test_priorities_follow_line_order(self):
        policy = parse_policy(self.TEXT, "tenant-a")
        ordered = policy.sorted_rules()
        assert len(ordered) == 3
        assert ordered[0].is_permit
        assert ordered[-1].is_drop
        assert [r.priority for r in ordered] == [3, 2, 1]

    def test_names_carry_line_numbers(self):
        policy = parse_policy(self.TEXT, "tenant-a")
        assert all(r.name.startswith("tenant-a.L") for r in policy.rules)

    def test_error_reports_line(self):
        with pytest.raises(PolicyParseError, match="line 2"):
            parse_policy("permit\nbogus action here\n", "x")

    def test_semantics(self):
        policy = parse_policy(self.TEXT, "tenant-a")
        https_from_ten = ((10 << 24) << 72) | (443 << 8) | 6
        assert policy.evaluate(https_from_ten) is Action.PERMIT
        anything_else = (11 << 24) << 72
        assert policy.evaluate(anything_else) is Action.DROP


class TestRoundTrip:
    def test_format_then_parse_preserves_semantics(self):
        text = (
            "permit src 10.1.0.0/16 dst 10.2.0.0/16 dport 80 proto tcp\n"
            "deny src 10.1.0.0/16\n"
            "permit proto udp sport 53\n"
            "deny src 0.0.0.0/0\n"
        )
        policy = parse_policy(text, "rt")
        rendered = format_policy(policy)
        reparsed = parse_policy(rendered, "rt")
        assert policy.semantically_equal(reparsed)

    def test_format_marks_unexpressible_patterns(self):
        from repro.policy.policy import Policy
        from repro.policy.rule import Rule
        from repro.policy.ternary import TernaryMatch

        weird_mask = TernaryMatch(FIVE_TUPLE_WIDTH, 0b101, 0b101)
        policy = Policy("w", [Rule(weird_mask, Action.DROP, 1)])
        assert "pattern:" in format_policy(policy)

    def test_classbench_policies_round_trip(self):
        """Generator policies round-trip exactly (port prefixes go
        through the pattern: escape)."""
        from repro.policy.classbench import generate_policy_set

        policies = generate_policy_set(["a"], rules_per_policy=15, seed=2)
        policy = policies["a"]
        rendered = format_policy(policy)
        reparsed = parse_policy(rendered, "a")
        assert policy.semantically_equal(reparsed)

    def test_pattern_escape_parses(self):
        rule = parse_rule_line("deny sport pattern:01**************", 1)
        # sport occupies bits 39..24; its top two bits must be 01.
        assert rule.match.matches(1 << 38)
        assert not rule.match.matches(1 << 39)
        with pytest.raises(PolicyParseError):
            parse_rule_line("deny sport pattern:01", 1)  # wrong width


class TestPropertyRoundTrip:
    """Hypothesis: any generated 5-tuple policy round-trips exactly."""

    def test_random_policies_round_trip(self):
        from hypothesis import given, settings, strategies as st
        from repro.policy.classbench import PolicyGenerator, PolicyGeneratorConfig

        # Seeded loop instead of @given: PolicyGenerator owns the
        # randomness; hypothesis adds nothing beyond seed variety here.
        for seed in range(12):
            config = PolicyGeneratorConfig(num_rules=10)
            policy = PolicyGenerator(config, seed=seed).generate_policy("p")
            reparsed = parse_policy(format_policy(policy), "p")
            assert policy.semantically_equal(reparsed), seed
            assert len(reparsed) == len(policy)
