"""Tests for range-to-prefix expansion."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.policy.policy import Policy
from repro.policy.ranges import RangeField, expand_rule_ranges, range_to_prefixes
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch, concat_matches


class TestRangeToPrefixes:
    def test_full_range_is_one_wildcard(self):
        prefixes = range_to_prefixes(4, 0, 15)
        assert len(prefixes) == 1
        assert prefixes[0].is_full()

    def test_single_value(self):
        prefixes = range_to_prefixes(4, 5, 5)
        assert len(prefixes) == 1
        assert prefixes[0].is_singleton()
        assert prefixes[0].matches(5)

    def test_classic_worst_case(self):
        """[1, 2^w - 2] needs 2w - 2 prefixes."""
        width = 4
        prefixes = range_to_prefixes(width, 1, 14)
        assert len(prefixes) == 2 * width - 2

    def test_aligned_block(self):
        prefixes = range_to_prefixes(8, 64, 127)
        assert len(prefixes) == 1
        assert prefixes[0].to_string() == "01******"

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            range_to_prefixes(4, 3, 2)
        with pytest.raises(ValueError):
            range_to_prefixes(4, 0, 16)
        with pytest.raises(ValueError):
            range_to_prefixes(4, -1, 3)

    @settings(max_examples=120, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_cover_exact_and_disjoint(self, a, b):
        lo, hi = min(a, b), max(a, b)
        prefixes = range_to_prefixes(8, lo, hi)
        covered: set[int] = set()
        for prefix in prefixes:
            headers = set(prefix.enumerate())
            assert not headers & covered, "prefixes overlap"
            covered |= headers
        assert covered == set(range(lo, hi + 1))

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_within_worst_case_bound(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert len(range_to_prefixes(8, lo, hi)) <= 2 * 8 - 2


class TestRangeField:
    def test_validates_on_construction(self):
        with pytest.raises(ValueError):
            RangeField(4, 9, 3)
        field = RangeField(16, 1024, 65535)
        assert len(field.prefixes) == 6  # 1024..65535 = aligned blocks


class TestExpandRuleRanges:
    FIELDS = [(0, 4), (4, 4)]  # two 4-bit fields, MSB first

    def make_policy(self):
        match = concat_matches([
            TernaryMatch.from_string("1***"),   # field 0 fixed pattern
            TernaryMatch.wildcard(4),           # field 1 to be ranged
        ])
        return Policy("in", [
            Rule(match, Action.DROP, 2, "ranged"),
            Rule(concat_matches([TernaryMatch.from_string("0***"),
                                 TernaryMatch.wildcard(4)]),
                 Action.PERMIT, 1, "plain"),
        ])

    def test_expansion_counts_and_order(self):
        policy = self.make_policy()
        expanded = expand_rule_ranges(
            policy, self.FIELDS,
            {2: {1: RangeField(4, 1, 14)}},
        )
        # 6 prefixes for [1,14] + 1 untouched rule.
        assert len(expanded) == 7
        ordered = expanded.sorted_rules()
        # All expansion pieces outrank the original lower rule.
        assert ordered[-1].name == "plain"
        assert all(r.name.startswith("ranged~") for r in ordered[:-1])

    def test_semantics_match_range(self):
        policy = self.make_policy()
        expanded = expand_rule_ranges(
            policy, self.FIELDS, {2: {1: RangeField(4, 3, 11)}},
        )
        for field0 in range(16):
            for field1 in range(16):
                header = (field0 << 4) | field1
                decision = expanded.evaluate(header)
                in_range = field0 >= 8 and 3 <= field1 <= 11
                assert (decision is Action.DROP) == in_range

    def test_priorities_unique_after_expansion(self):
        policy = self.make_policy()
        expanded = expand_rule_ranges(
            policy, self.FIELDS, {2: {1: RangeField(4, 1, 14)}},
        )
        priorities = [r.priority for r in expanded.rules]
        assert len(priorities) == len(set(priorities))

    def test_multi_field_cross_product(self):
        match = concat_matches([TernaryMatch.wildcard(4),
                                TernaryMatch.wildcard(4)])
        policy = Policy("in", [Rule(match, Action.DROP, 1, "r")])
        expanded = expand_rule_ranges(
            policy, self.FIELDS,
            {1: {0: RangeField(4, 1, 2), 1: RangeField(4, 5, 6)}},
        )
        # [1,2] -> 2 prefixes (1, 2) ... wait: 1 and 2 are separate; [5,6] -> 2.
        sizes = len(range_to_prefixes(4, 1, 2)) * len(range_to_prefixes(4, 5, 6))
        assert len(expanded) == sizes
        for f0 in range(16):
            for f1 in range(16):
                header = (f0 << 4) | f1
                expected = 1 <= f0 <= 2 and 5 <= f1 <= 6
                assert (expanded.evaluate(header) is Action.DROP) == expected

    def test_unconstrained_policy_unchanged_semantically(self):
        policy = self.make_policy()
        expanded = expand_rule_ranges(policy, self.FIELDS, {})
        assert policy.semantically_equal(expanded)
