"""Property-based tests for the exact RegionSet calculus."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.policy.ternary import RegionSet, TernaryMatch

WIDTH = 6


def cubes():
    return st.builds(
        lambda mask, raw: TernaryMatch(WIDTH, mask, raw & mask),
        st.integers(0, (1 << WIDTH) - 1),
        st.integers(0, (1 << WIDTH) - 1),
    )


def regions():
    return st.lists(cubes(), max_size=5).map(lambda cs: RegionSet(WIDTH, cs))


def enumerate_region(region: RegionSet) -> set:
    return {h for cube in region.cubes for h in cube.enumerate()}


class TestBasics:
    def test_empty(self):
        region = RegionSet(WIDTH)
        assert region.is_empty()
        assert not region.contains(0)
        assert len(region) == 0

    def test_add_absorbs_subsets(self):
        region = RegionSet(4)
        region.add(TernaryMatch.from_string("1***"))
        region.add(TernaryMatch.from_string("10**"))
        assert len(region) == 1

    def test_add_removes_covered_existing(self):
        region = RegionSet(4)
        region.add(TernaryMatch.from_string("10**"))
        region.add(TernaryMatch.from_string("11**"))
        region.add(TernaryMatch.from_string("1***"))
        assert len(region) == 1

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            RegionSet(4).add(TernaryMatch.wildcard(5))

    def test_covers_cube_split_case(self):
        """Neither half alone covers, but together they do."""
        region = RegionSet(4, [
            TernaryMatch.from_string("0***"),
            TernaryMatch.from_string("1***"),
        ])
        assert region.covers_cube(TernaryMatch.wildcard(4))


class TestProperties:
    @given(regions(), st.integers(0, (1 << WIDTH) - 1))
    def test_contains_agrees_with_enumeration(self, region, header):
        assert region.contains(header) == (header in enumerate_region(region))

    @given(regions(), cubes())
    def test_covers_cube_exact(self, region, cube):
        expected = set(cube.enumerate()) <= enumerate_region(region)
        assert region.covers_cube(cube) == expected

    @given(regions(), regions())
    def test_covers_and_equals_exact(self, a, b):
        sa, sb = enumerate_region(a), enumerate_region(b)
        assert a.covers(b) == (sb <= sa)
        assert a.equals(b) == (sa == sb)

    @given(regions(), cubes())
    def test_subtract_cube_exact(self, region, cube):
        result = region.subtract_cube(cube)
        assert enumerate_region(result) == enumerate_region(region) - set(cube.enumerate())

    @given(regions(), regions())
    def test_difference_exact(self, a, b):
        assert enumerate_region(a.difference(b)) == enumerate_region(a) - enumerate_region(b)

    @given(regions(), regions())
    def test_union_exact(self, a, b):
        assert enumerate_region(a.union(b)) == enumerate_region(a) | enumerate_region(b)

    @given(regions(), cubes())
    def test_intersect_cube_exact(self, region, cube):
        assert enumerate_region(region.intersect_cube(cube)) == (
            enumerate_region(region) & set(cube.enumerate())
        )

    @given(regions(), cubes())
    def test_sample_counterexample_is_real(self, region, cube):
        rng = random.Random(0)
        found = region.sample_counterexample(cube, rng)
        if found is not None:
            assert cube.matches(found)
            assert not region.contains(found)
        elif not region.covers_cube(cube):
            # Randomized helper may miss; only check it never lies.
            pass
