"""Tests for the redundancy-removal pre-pass (Fig. 4 stage 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.policy.policy import Policy
from repro.policy.redundancy import find_redundant_rules, remove_redundant_rules
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch

WIDTH = 6


def random_policies():
    rule_strategy = st.builds(
        lambda mask, raw, is_drop: (mask, raw & mask, is_drop),
        st.integers(0, (1 << WIDTH) - 1),
        st.integers(0, (1 << WIDTH) - 1),
        st.booleans(),
    )
    def build(rule_specs):
        rules = [
            Rule(
                TernaryMatch(WIDTH, mask, value),
                Action.DROP if is_drop else Action.PERMIT,
                priority,
            )
            for priority, (mask, value, is_drop) in enumerate(rule_specs, start=1)
        ]
        return Policy("in", rules)
    return st.builds(build, st.lists(rule_strategy, max_size=6))


class TestShadowing:
    def test_fully_shadowed_rule_removed(self):
        policy = Policy("in", [
            Rule(TernaryMatch.from_string("1***"), Action.PERMIT, 2),
            Rule(TernaryMatch.from_string("10**"), Action.DROP, 1),
        ])
        redundant = find_redundant_rules(policy)
        # The shadowed drop goes first; the permit then shields nothing
        # (PERMIT default) and is removed as well.
        assert [r.priority for r in redundant] == [1, 2]

    def test_partial_overlap_kept(self):
        policy = Policy("in", [
            Rule(TernaryMatch.from_string("1***"), Action.PERMIT, 2),
            Rule(TernaryMatch.from_string("*0**"), Action.DROP, 1),
        ])
        assert find_redundant_rules(policy) == []

    def test_shadow_by_union_of_rules(self):
        """No single rule covers the victim, but together they do.

        The lowest catch-all DROP keeps the two PERMITs meaningful, so
        only the union-shadowed DROP (priority 2) is redundant.
        """
        policy = Policy("in", [
            Rule(TernaryMatch.from_string("11**"), Action.PERMIT, 4),
            Rule(TernaryMatch.from_string("10**"), Action.PERMIT, 3),
            Rule(TernaryMatch.from_string("1***"), Action.DROP, 2),
            Rule(TernaryMatch.from_string("****"), Action.DROP, 1),
        ])
        redundant = find_redundant_rules(policy)
        assert [r.priority for r in redundant] == [2]


class TestDownward:
    def test_same_action_as_default_removed(self):
        policy = Policy("in", [
            Rule(TernaryMatch.from_string("1***"), Action.PERMIT, 1),
        ])
        redundant = find_redundant_rules(policy)
        assert [r.priority for r in redundant] == [1]

    def test_duplicate_drop_below_removed(self):
        policy = Policy("in", [
            Rule(TernaryMatch.from_string("10**"), Action.DROP, 2),
            Rule(TernaryMatch.from_string("1***"), Action.DROP, 1),
        ])
        # Rule 2 is upward-redundant *given* rule 1 stays: its whole
        # region would be dropped by rule 1 anyway.
        redundant = find_redundant_rules(policy)
        assert [r.priority for r in redundant] == [2]

    def test_chain_collapse(self):
        """Removing one redundant rule exposes another."""
        policy = Policy("in", [
            Rule(TernaryMatch.from_string("1***"), Action.DROP, 3),
            Rule(TernaryMatch.from_string("10**"), Action.DROP, 2),
            Rule(TernaryMatch.from_string("100*"), Action.DROP, 1),
        ])
        reduced, report = remove_redundant_rules(policy)
        assert len(reduced) == 1
        assert reduced.rules[0].priority == 3
        assert report.removed_count == 2


class TestSemanticsPreservation:
    @settings(max_examples=60, deadline=None)
    @given(random_policies())
    def test_removal_preserves_drop_region(self, policy):
        reduced, report = remove_redundant_rules(policy, verify=True)
        assert policy.semantically_equal(reduced)
        assert len(reduced) + report.removed_count == len(policy)

    @settings(max_examples=60, deadline=None)
    @given(random_policies())
    def test_reduced_policy_is_fixed_point(self, policy):
        reduced, _ = remove_redundant_rules(policy)
        again, report = remove_redundant_rules(reduced)
        assert report.removed_count == 0
        assert len(again) == len(reduced)
