"""Tests for policy structural analysis."""

from __future__ import annotations

import pytest

from repro.policy.analysis import analyze_policy, analyze_policy_set
from repro.policy.classbench import generate_policy_set
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch


def rule(pattern: str, action: Action, priority: int) -> Rule:
    return Rule(TernaryMatch.from_string(pattern), action, priority)


class TestPolicyStats:
    def test_counts(self):
        policy = Policy("in", [
            rule("1***", Action.PERMIT, 4),
            rule("1*0*", Action.DROP, 3),
            rule("10**", Action.DROP, 2),   # shadowed? no: 1*0* doesn't cover
            rule("0***", Action.PERMIT, 1),
        ])
        stats = analyze_policy(policy)
        assert stats.num_rules == 4
        assert stats.num_drops == 2
        assert stats.num_permits == 2
        assert stats.drop_fraction == pytest.approx(0.5)
        # drop 3 depends on permit 4; drop 2 depends on permit 4.
        assert stats.dependency_edges == 2
        assert stats.max_closure == 2

    def test_shadow_detection(self):
        policy = Policy("in", [
            rule("1***", Action.PERMIT, 2),
            rule("10**", Action.DROP, 1),   # fully inside the permit
        ])
        stats = analyze_policy(policy)
        assert stats.shadowed_rules == 1

    def test_benign_overlaps(self):
        policy = Policy("in", [
            rule("1***", Action.DROP, 2),
            rule("1*0*", Action.DROP, 1),
        ])
        stats = analyze_policy(policy)
        assert stats.benign_overlaps == 1
        assert stats.dependency_edges == 0

    def test_empty_policy(self):
        stats = analyze_policy(Policy("in"))
        assert stats.num_rules == 0
        assert stats.drop_fraction == 0.0
        assert stats.dependency_density == 0.0

    def test_dependency_density(self):
        policy = Policy("in", [
            rule("1***", Action.PERMIT, 3),
            rule("*1**", Action.PERMIT, 2),
            rule("11**", Action.DROP, 1),
        ])
        stats = analyze_policy(policy)
        assert stats.dependency_density == pytest.approx(2.0)

    def test_agrees_with_depgraph(self):
        """Edge count must equal the dependency graph's on generated
        policies."""
        from repro.core.depgraph import build_dependency_graph

        policies = generate_policy_set(["a", "b"], rules_per_policy=25, seed=5)
        for policy in policies:
            stats = analyze_policy(policy)
            graph = build_dependency_graph(policy)
            assert stats.dependency_edges == graph.num_edges()


class TestPolicySetStats:
    def test_mergeable_detection(self):
        policies = generate_policy_set(
            ["a", "b", "c"], rules_per_policy=10, seed=3, blacklist_rules=4
        )
        stats = analyze_policy_set(policies)
        assert stats.num_policies == 3
        assert stats.total_rules == 42
        assert stats.mergeable_classes >= 4    # at least the blacklist
        assert stats.mergeable_members >= 12   # 4 rules x 3 policies
        assert 0 < stats.mergeable_fraction <= 1

    def test_no_sharing(self):
        policies = PolicySet([
            Policy("a", [rule("1***", Action.DROP, 1)]),
            Policy("b", [rule("0***", Action.DROP, 1)]),
        ])
        stats = analyze_policy_set(policies)
        assert stats.mergeable_classes == 0
        assert stats.mergeable_fraction == 0.0

    def test_per_policy_breakdown(self):
        policies = generate_policy_set(["a", "b"], rules_per_policy=8, seed=1)
        stats = analyze_policy_set(policies)
        assert {s.ingress for s in stats.per_policy} == {"a", "b"}
