"""Unit and property-based tests for the ternary cube algebra."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.policy.ternary import TernaryMatch, concat_matches

WIDTH = 8


def cubes(width: int = WIDTH):
    """Hypothesis strategy for canonical cubes of a given width."""
    return st.builds(
        lambda mask, raw: TernaryMatch(width, mask, raw & mask),
        st.integers(0, (1 << width) - 1),
        st.integers(0, (1 << width) - 1),
    )


def headers(width: int = WIDTH):
    return st.integers(0, (1 << width) - 1)


class TestConstruction:
    def test_from_string_roundtrip(self):
        for pattern in ("01*1", "****", "0000", "1111", "1*0*"):
            assert TernaryMatch.from_string(pattern).to_string() == pattern

    def test_from_string_msb_first(self):
        cube = TernaryMatch.from_string("10**")
        assert cube.matches(0b1000)
        assert cube.matches(0b1011)
        assert not cube.matches(0b0000)
        assert not cube.matches(0b1100)

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            TernaryMatch.from_string("01x")

    def test_value_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            TernaryMatch(4, 0b0011, 0b0100)

    def test_mask_outside_width_rejected(self):
        with pytest.raises(ValueError):
            TernaryMatch(4, 0b10000, 0)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            TernaryMatch(-1, 0, 0)

    def test_wildcard_matches_everything(self):
        cube = TernaryMatch.wildcard(4)
        assert all(cube.matches(h) for h in range(16))
        assert cube.is_full()

    def test_exact_is_singleton(self):
        cube = TernaryMatch.exact(4, 0b1010)
        assert cube.is_singleton()
        assert cube.cardinality() == 1
        assert [h for h in range(16) if cube.matches(h)] == [0b1010]

    def test_exact_rejects_wide_header(self):
        with pytest.raises(ValueError):
            TernaryMatch.exact(4, 0b10000)

    def test_from_prefix(self):
        cube = TernaryMatch.from_prefix(8, 0b10100000, 3)
        assert cube.to_string() == "101*****"
        assert TernaryMatch.from_prefix(8, 0xFF, 0).is_full()

    def test_from_prefix_bad_length(self):
        with pytest.raises(ValueError):
            TernaryMatch.from_prefix(8, 0, 9)

    def test_cardinality(self):
        assert TernaryMatch.from_string("0**1").cardinality() == 4
        assert TernaryMatch.wildcard(5).cardinality() == 32


class TestSetAlgebra:
    def test_disjoint_on_conflicting_care_bit(self):
        a = TernaryMatch.from_string("1***")
        b = TernaryMatch.from_string("0***")
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_intersection_is_conjunction(self):
        a = TernaryMatch.from_string("1**0")
        b = TernaryMatch.from_string("1*1*")
        inter = a.intersection(b)
        assert inter is not None
        assert inter.to_string() == "1*10"

    def test_subset_reflexive_and_antisymmetric(self):
        a = TernaryMatch.from_string("1*10")
        b = TernaryMatch.from_string("1***")
        assert a.is_subset(a)
        assert a.is_subset(b)
        assert not b.is_subset(a)

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            TernaryMatch.wildcard(4).intersects(TernaryMatch.wildcard(5))

    @given(cubes(), cubes())
    def test_intersects_agrees_with_enumeration(self, a, b):
        expected = bool(set(a.enumerate()) & set(b.enumerate()))
        assert a.intersects(b) == expected

    @given(cubes(), cubes())
    def test_intersection_agrees_with_enumeration(self, a, b):
        inter = a.intersection(b)
        expected = set(a.enumerate()) & set(b.enumerate())
        if inter is None:
            assert not expected
        else:
            assert set(inter.enumerate()) == expected

    @given(cubes(), cubes())
    def test_subset_agrees_with_enumeration(self, a, b):
        assert a.is_subset(b) == (set(a.enumerate()) <= set(b.enumerate()))

    @given(cubes(), cubes())
    def test_difference_exact_and_disjoint(self, a, b):
        pieces = a.difference(b)
        expected = set(a.enumerate()) - set(b.enumerate())
        covered = set()
        for piece in pieces:
            piece_headers = set(piece.enumerate())
            assert not (piece_headers & covered), "difference pieces overlap"
            covered |= piece_headers
        assert covered == expected

    @given(cubes(), headers())
    def test_matches_agrees_with_enumeration(self, cube, header):
        assert cube.matches(header) == (header in set(cube.enumerate()))

    @given(cubes())
    def test_sample_lands_inside(self, cube):
        rng = random.Random(0)
        for _ in range(8):
            assert cube.matches(cube.sample(rng))

    @given(cubes())
    def test_enumerate_count_matches_cardinality(self, cube):
        assert len(list(cube.enumerate())) == cube.cardinality()


class TestConcat:
    def test_concat_widths_and_semantics(self):
        hi = TernaryMatch.from_string("10")
        lo = TernaryMatch.from_string("*1")
        cube = concat_matches([hi, lo])
        assert cube.width == 4
        assert cube.to_string() == "10*1"

    def test_concat_empty(self):
        cube = concat_matches([])
        assert cube.width == 0
        assert cube.matches(0)
