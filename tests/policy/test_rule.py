"""Tests for rules, actions, and the 5-tuple builder."""

from __future__ import annotations

import pytest

from repro.policy.rule import Action, FiveTuple, Rule, FIVE_TUPLE_WIDTH
from repro.policy.ternary import TernaryMatch


class TestAction:
    def test_invert(self):
        assert ~Action.PERMIT is Action.DROP
        assert ~Action.DROP is Action.PERMIT

    def test_str(self):
        assert str(Action.DROP) == "drop"


class TestRule:
    def test_flags(self):
        drop = Rule(TernaryMatch.wildcard(4), Action.DROP, 1)
        permit = Rule(TernaryMatch.wildcard(4), Action.PERMIT, 2)
        assert drop.is_drop and not drop.is_permit
        assert permit.is_permit and not permit.is_drop

    def test_overlaps(self):
        a = Rule(TernaryMatch.from_string("1**0"), Action.DROP, 1)
        b = Rule(TernaryMatch.from_string("1*1*"), Action.PERMIT, 2)
        c = Rule(TernaryMatch.from_string("0***"), Action.PERMIT, 3)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_shadows_requires_priority_and_containment(self):
        broad_high = Rule(TernaryMatch.from_string("1***"), Action.PERMIT, 5)
        narrow_low = Rule(TernaryMatch.from_string("10**"), Action.DROP, 1)
        assert broad_high.shadows(narrow_low)
        assert not narrow_low.shadows(broad_high)
        # Same priority never shadows.
        same = Rule(TernaryMatch.from_string("10**"), Action.DROP, 5)
        assert not broad_high.shadows(same)

    def test_same_behavior_ignores_priority_and_name(self):
        a = Rule(TernaryMatch.from_string("1***"), Action.DROP, 1, "a")
        b = Rule(TernaryMatch.from_string("1***"), Action.DROP, 9, "b")
        c = Rule(TernaryMatch.from_string("1***"), Action.PERMIT, 1)
        assert a.same_behavior(b)
        assert not a.same_behavior(c)

    def test_with_priority(self):
        rule = Rule(TernaryMatch.wildcard(4), Action.DROP, 1, "x")
        bumped = rule.with_priority(7)
        assert bumped.priority == 7
        assert bumped.match == rule.match
        assert bumped.name == "x"


class TestFiveTuple:
    def test_default_is_full_wildcard(self):
        match = FiveTuple().to_match()
        assert match.width == FIVE_TUPLE_WIDTH
        assert match.is_full()

    def test_field_placement(self):
        """src_ip occupies the most significant 32 bits."""
        src = TernaryMatch.exact(32, 0x0A000001)
        match = FiveTuple(src_ip=src).to_match()
        assert match.width == FIVE_TUPLE_WIDTH
        header = 0x0A000001 << (FIVE_TUPLE_WIDTH - 32)
        assert match.matches(header)
        assert not match.matches(0)

    def test_protocol_is_least_significant(self):
        proto = TernaryMatch.exact(8, 6)
        match = FiveTuple(protocol=proto).to_match()
        assert match.matches(6)
        assert not match.matches(17)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            FiveTuple(src_ip=TernaryMatch.wildcard(16)).to_match()
