"""Tests for the firewall anomaly taxonomy."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.policy.anomalies import (
    Anomaly,
    AnomalyKind,
    anomaly_summary,
    find_anomalies,
)
from repro.policy.policy import Policy
from repro.policy.redundancy import find_redundant_rules
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch

WIDTH = 5


def rule(pattern: str, action: Action, priority: int) -> Rule:
    return Rule(TernaryMatch.from_string(pattern), action, priority)


class TestClassification:
    def test_shadowing(self):
        policy = Policy("in", [
            rule("1****", Action.PERMIT, 2),
            rule("10***", Action.DROP, 1),
        ])
        anomalies = find_anomalies(policy)
        assert [a.kind for a in anomalies] == [AnomalyKind.SHADOWING]
        assert anomalies[0].higher_priority == 2
        assert anomalies[0].lower_priority == 1

    def test_redundancy(self):
        policy = Policy("in", [
            rule("1****", Action.DROP, 2),
            rule("10***", Action.DROP, 1),
        ])
        assert [a.kind for a in find_anomalies(policy)] == [AnomalyKind.REDUNDANCY]

    def test_generalization(self):
        policy = Policy("in", [
            rule("10***", Action.PERMIT, 2),
            rule("1****", Action.DROP, 1),
        ])
        assert [a.kind for a in find_anomalies(policy)] == [
            AnomalyKind.GENERALIZATION
        ]

    def test_correlation(self):
        policy = Policy("in", [
            rule("1***0", Action.PERMIT, 2),
            rule("1*1**", Action.DROP, 1),
        ])
        assert [a.kind for a in find_anomalies(policy)] == [
            AnomalyKind.CORRELATION
        ]

    def test_identical_matches(self):
        policy = Policy("in", [
            rule("1****", Action.PERMIT, 2),
            rule("1****", Action.DROP, 1),
        ])
        assert [a.kind for a in find_anomalies(policy)] == [AnomalyKind.SHADOWING]

    def test_disjoint_rules_clean(self):
        policy = Policy("in", [
            rule("1****", Action.PERMIT, 2),
            rule("0****", Action.DROP, 1),
        ])
        assert find_anomalies(policy) == []

    def test_same_action_overlap_clean(self):
        policy = Policy("in", [
            rule("1***0", Action.DROP, 2),
            rule("1*1**", Action.DROP, 1),
        ])
        assert find_anomalies(policy) == []

    def test_shadow_reported_once(self):
        """A doubly-covered rule yields one finding, not a cascade."""
        policy = Policy("in", [
            rule("1****", Action.PERMIT, 3),
            rule("1****", Action.PERMIT, 2),
            rule("10***", Action.DROP, 1),
        ])
        shadowings = [
            a for a in find_anomalies(policy)
            if a.kind is AnomalyKind.SHADOWING
        ]
        assert len(shadowings) == 1

    def test_describe(self):
        policy = Policy("in", [
            rule("1****", Action.PERMIT, 2),
            rule("10***", Action.DROP, 1),
        ])
        text = find_anomalies(policy)[0].describe(policy)
        assert "shadowing" in text and "t=1" in text


class TestSummaryAndConsistency:
    def test_summary_counts(self):
        policy = Policy("in", [
            rule("1****", Action.PERMIT, 3),
            rule("10***", Action.DROP, 2),     # shadowed
            rule("****1", Action.DROP, 1),     # proper overlap: correlated
        ])
        summary = anomaly_summary(policy)
        assert summary[AnomalyKind.SHADOWING] == 1
        assert summary[AnomalyKind.CORRELATION] >= 1
        assert summary[AnomalyKind.GENERALIZATION] == 0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 31), st.integers(0, 31), st.booleans()),
        max_size=6,
    ))
    def test_single_cover_findings_imply_unmatchable(self, specs):
        """Any rule flagged as shadowed/redundant really is covered by a
        single higher rule and hence never first-match."""
        rules = [
            Rule(TernaryMatch(WIDTH, mask, value & mask),
                 Action.DROP if drop else Action.PERMIT, priority)
            for priority, (mask, value, drop) in enumerate(specs, start=1)
        ]
        policy = Policy("in", rules)
        for anomaly in find_anomalies(policy):
            if anomaly.kind in (AnomalyKind.SHADOWING, AnomalyKind.REDUNDANCY):
                lower = policy.rule_by_priority(anomaly.lower_priority)
                higher = policy.rule_by_priority(anomaly.higher_priority)
                assert lower.match.is_subset(higher.match)
                for header in lower.match.enumerate():
                    assert not policy.first_match_is(lower, header)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 31), st.integers(0, 31), st.booleans()),
        max_size=6,
    ))
    def test_redundancy_findings_are_removable(self, specs):
        """REDUNDANCY-flagged rules are a subset of what the exact
        redundancy remover deletes."""
        rules = [
            Rule(TernaryMatch(WIDTH, mask, value & mask),
                 Action.DROP if drop else Action.PERMIT, priority)
            for priority, (mask, value, drop) in enumerate(specs, start=1)
        ]
        policy = Policy("in", rules)
        removable = {r.priority for r in find_redundant_rules(policy)}
        for anomaly in find_anomalies(policy):
            if anomaly.kind is AnomalyKind.REDUNDANCY:
                assert anomaly.lower_priority in removable
