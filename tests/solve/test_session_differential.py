"""Differential equivalence harness for warm solver sessions.

THE correctness spine of warm-start serving: for each seed, one random
delta stream (reroutes, policy modifications, remove+reinstall cycles)
is replayed twice from the same base placement --

* **warm**: an :class:`~repro.core.incremental.IncrementalDeployer`
  with an attached :class:`~repro.solve.session.SolverSession`, so
  deltas hit the patched persistent model with incumbent seeding;
* **cold**: an identical deployer with no session, re-encoding every
  sub-model from scratch (the oracle -- the path PR 5 shipped).

At *every step* the two answers must agree on feasibility, and
whenever both sides solved the ILP the objective value (installed
rules for the sub-problem) must be identical -- the warm patched model
is the *same* mathematical program, so optima cannot differ even
though the argmin may.  Both deployers then commit the *same*
placement so their states never diverge, and the combined live
placement is exactly verified.

A warm-path failure must never silently degrade into a cold rebuild:
``fallbacks`` is asserted zero, so any exception inside the patching
machinery fails the harness instead of hiding behind its own safety
net.

Environment knobs (CI's quick profile):

* ``REPRO_WARM_QUICK=1``  -- trim to a fast subset of seeds;
* ``REPRO_WARM_SEEDS=N``  -- explicit seed count override.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.incremental import IncrementalDeployer
from repro.core.instance import PlacementInstance
from repro.core.placement import RulePlacer
from repro.core.verify import verify_placement
from repro.net.generators import leaf_spine, random_graph, ring
from repro.net.routing import ShortestPathRouter
from repro.policy.classbench import PolicyGeneratorConfig, generate_policy_set
from repro.policy.policy import Policy
from repro.solve.session import SolverSession

_QUICK = os.environ.get("REPRO_WARM_QUICK") == "1"
_NUM_SEEDS = int(os.environ.get("REPRO_WARM_SEEDS",
                                "20" if _QUICK else "100"))
_SEEDS = range(_NUM_SEEDS)
_STEPS = 6 if _QUICK else 8


def build_scenario(seed: int) -> PlacementInstance:
    """A random small instance whose sub-ILPs solve in milliseconds."""
    rng = random.Random(77_000 + seed)
    capacity = rng.choice([4, 6, 10])
    kind = rng.choice(["leaf_spine", "ring", "random"])
    if kind == "leaf_spine":
        topo = leaf_spine(rng.randint(2, 3), 2, capacity=capacity)
    elif kind == "ring":
        topo = ring(rng.randint(4, 5), capacity=capacity)
    else:
        topo = random_graph(rng.randint(5, 7), degree=3,
                            capacity=capacity, seed=seed)
    ports = [p.name for p in topo.entry_ports]
    ingresses = rng.sample(ports, rng.randint(2, min(3, len(ports))))
    router = ShortestPathRouter(topo, seed=seed)
    routing = router.random_routing(
        rng.randint(len(ingresses), 2 * len(ingresses)), ingresses=ingresses
    )
    config = PolicyGeneratorConfig(
        num_rules=rng.randint(3, 7),
        drop_fraction=rng.uniform(0.3, 0.6),
        nested_fraction=rng.uniform(0.2, 0.5),
    )
    policies = generate_policy_set(
        ingresses, rules_per_policy=config.num_rules, seed=seed,
        config=config,
    )
    return PlacementInstance(topo, routing, policies)


def _check_step(ctx, warm_result, cold_result):
    assert (warm_result.status.has_solution
            == cold_result.status.has_solution), (
        f"{ctx}: feasibility diverged "
        f"(warm={warm_result.status}, cold={cold_result.status})"
    )
    if (warm_result.is_feasible and warm_result.method == "ilp"
            and cold_result.method == "ilp"):
        # Same program, so same optimum; the argmin may differ.
        assert warm_result.installed_rules == cold_result.installed_rules, (
            f"{ctx}: objective diverged "
            f"(warm={warm_result.installed_rules}, "
            f"cold={cold_result.installed_rules})"
        )


def replay_stream(seed: int, backend: str = "highs",
                  steps: int = _STEPS):
    """Replay one seeded delta stream warm-vs-cold; returns telemetry.

    Returns None when the base instance is infeasible (no stream to
    replay -- the seed contributes nothing either way).
    """
    rng = random.Random(seed)
    instance = build_scenario(seed)
    base = RulePlacer().place(instance)
    if not base.is_feasible:
        return None
    session = SolverSession(backend=backend)
    warm = IncrementalDeployer(base)
    warm.attach_session(session)
    cold = IncrementalDeployer(base)
    router = ShortestPathRouter(instance.topology, seed=seed + 1)

    for step in range(steps):
        ingresses = list(warm._state)
        if not ingresses:
            break
        ingress = rng.choice(ingresses)
        policy, paths, _ = warm._state[ingress]
        try_greedy = rng.random() < 0.4
        op = rng.choice(["reroute", "modify", "reroute", "remove_install"])
        ctx = f"seed={seed} step={step} op={op} ingress={ingress!r}"

        if op == "reroute":
            routing = router.random_routing(rng.randint(1, 3),
                                            ingresses=[ingress])
            new_paths = routing.paths(ingress)
            if not new_paths:
                continue
            warm_r = warm.preview_reroute(ingress, new_paths,
                                          try_greedy=try_greedy)
            cold_r = cold.preview_reroute(ingress, new_paths,
                                          try_greedy=try_greedy)
            _check_step(ctx, warm_r, cold_r)
            if warm_r.is_feasible:
                warm.apply_reroute(ingress, new_paths, warm_r.placed)
                cold.apply_reroute(ingress, new_paths, warm_r.placed)
        elif op == "modify":
            rules = policy.sorted_rules()
            if len(rules) <= 1:
                continue
            dropped = rng.choice(rules)
            new_policy = Policy(ingress,
                                [r for r in rules if r is not dropped])
            warm_r = warm.preview_modify(new_policy, try_greedy=try_greedy)
            cold_r = cold.preview_modify(new_policy, try_greedy=try_greedy)
            _check_step(ctx, warm_r, cold_r)
            if warm_r.is_feasible:
                warm.apply_modify(new_policy, warm_r.placed)
                cold.apply_modify(new_policy, warm_r.placed)
        else:  # remove + reinstall
            warm.remove_policy(ingress)
            cold.remove_policy(ingress)
            warm_r = warm.preview_install(policy, paths,
                                          try_greedy=try_greedy)
            cold_r = cold.preview_install(policy, paths,
                                          try_greedy=try_greedy)
            _check_step(ctx, warm_r, cold_r)
            if warm_r.is_feasible:
                warm.commit_install(policy, paths, warm_r.placed)
                cold.commit_install(policy, paths, warm_r.placed)

        # Both deployers committed the same placement; the live state
        # must be exactly verifiable after every step.
        report = verify_placement(warm.as_placement())
        assert report.ok, f"{ctx}: {report.errors[:2]}"

    telemetry = session.telemetry()
    # The warm path is not allowed to hide behind its own cold-rebuild
    # safety net: any patching exception is a harness failure.
    assert telemetry["fallbacks"] == 0, (
        f"seed={seed}: warm path fell back to cold rebuild "
        f"{telemetry['fallbacks']} times"
    )
    return telemetry


@pytest.mark.parametrize("seed", _SEEDS)
def test_warm_equals_cold_stream(seed):
    replay_stream(seed)


class TestSessionBehavior:
    """Targeted session semantics beyond raw stream equivalence."""

    def test_warm_machinery_is_actually_exercised(self):
        """Across a handful of streams the session must report warm
        hits and cold builds -- a harness that never reaches the warm
        path proves nothing."""
        totals = {"warm_hits": 0, "cold_builds": 0, "template_builds": 0}
        for seed in range(10):
            telemetry = replay_stream(seed)
            if telemetry is None:
                continue
            for key in totals:
                totals[key] += telemetry[key]
        assert totals["cold_builds"] > 0
        assert totals["warm_hits"] > 0, totals
        assert totals["template_builds"] > 0, totals

    @pytest.mark.parametrize("seed", range(0, 12, 3))
    def test_bnb_backend_streams(self, seed):
        """The incumbent-seeded own B&B agrees with the cold oracle."""
        replay_stream(seed, backend="bnb", steps=4)

    def test_incumbent_seeding_on_path_flap(self):
        """A->B->A rerouting reuses A's previous optimum as incumbent."""
        for seed in range(20):
            rng = random.Random(seed)
            instance = build_scenario(seed)
            base = RulePlacer().place(instance)
            if not base.is_feasible:
                continue
            session = SolverSession()
            warm = IncrementalDeployer(base)
            warm.attach_session(session)
            router = ShortestPathRouter(instance.topology, seed=seed + 1)
            ingress = next(iter(warm._state))
            _policy, paths, _ = warm._state[ingress]
            alt = router.random_routing(2, ingresses=[ingress])
            alt_paths = alt.paths(ingress)
            if not alt_paths:
                continue
            flips = 0
            for flip in range(4):
                target = alt_paths if flip % 2 == 0 else paths
                result = warm.preview_reroute(ingress, target,
                                              try_greedy=False)
                if not result.is_feasible:
                    break
                warm.apply_reroute(ingress, target, result.placed)
                flips += 1
            if flips == 4 and session.stats.incumbent_seeds > 0:
                return  # seeding observed; done
        pytest.fail("no seed produced a 4-flip stream with incumbent "
                    "seeding")

    def test_epoch_bump_invalidates_but_stays_equivalent(self):
        """bump_epoch drops warm state; answers stay equal to cold."""
        for seed in range(20):
            rng = random.Random(seed)
            instance = build_scenario(seed)
            base = RulePlacer().place(instance)
            if not base.is_feasible:
                continue
            session = SolverSession()
            warm = IncrementalDeployer(base)
            warm.attach_session(session)
            cold = IncrementalDeployer(base)
            router = ShortestPathRouter(instance.topology, seed=seed + 1)
            ingress = next(iter(warm._state))
            _policy, paths, _ = warm._state[ingress]
            routing = router.random_routing(2, ingresses=[ingress])
            new_paths = routing.paths(ingress)
            if not new_paths:
                continue
            first_w = warm.preview_reroute(ingress, new_paths,
                                           try_greedy=False)
            first_c = cold.preview_reroute(ingress, new_paths,
                                           try_greedy=False)
            _check_step(f"seed={seed} pre-bump", first_w, first_c)
            session.bump_epoch()
            second_w = warm.preview_reroute(ingress, paths,
                                            try_greedy=False)
            second_c = cold.preview_reroute(ingress, paths,
                                            try_greedy=False)
            _check_step(f"seed={seed} post-bump", second_w, second_c)
            assert session.stats.epoch_invalidations >= 1
            return
        pytest.skip("no feasible scenario in the first 20 seeds")

    def test_detach_restores_cold_path(self):
        for seed in range(20):
            instance = build_scenario(seed)
            base = RulePlacer().place(instance)
            if not base.is_feasible:
                continue
            deployer = IncrementalDeployer(base)
            session = SolverSession()
            deployer.attach_session(session)
            assert deployer.session is session
            deployer.detach_session()
            assert deployer.session is None
            ingress = next(iter(deployer._state))
            _policy, paths, _ = deployer._state[ingress]
            result = deployer.preview_reroute(ingress, paths,
                                              try_greedy=False)
            assert result.solver_stats.get("session") is None
            return
        pytest.skip("no feasible scenario in the first 20 seeds")
