"""Portfolio solver: winner selection, cancellation, deadlines, crash
survival, and determinism under a fake clock.

Fake engines are plain :class:`EngineSpec` objects whose ``run``
callables return payload dicts directly; a shared :class:`FakeClock`
advances only when an engine "runs", so every wall-clock observable is
deterministic.
"""

from __future__ import annotations

import time

import pytest

from repro.core.placement import PlacerConfig, RulePlacer
from repro.experiments.generators import ExperimentConfig, build_instance
from repro.milp.model import SolveStatus
from repro.solve.portfolio import (
    EngineSpec,
    EngineTask,
    PortfolioSolver,
    resolve_backend,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def payload(status: SolveStatus, objective=None, placed=None):
    return {
        "status": status.value,
        "objective": objective,
        "placed": placed or {},
        "merged": {},
        "stats": {},
    }


def engine(name, status, objective=None, cost=1.0, clock=None, placed=None):
    """A fake engine that takes ``cost`` fake-seconds and returns a
    fixed payload."""

    def run(task: EngineTask):
        if clock is not None:
            clock.advance(cost)
        return payload(status, objective, placed)

    return EngineSpec(name, run)


def crashing_engine(name, clock=None, cost=0.5):
    def run(task: EngineTask):
        if clock is not None:
            clock.advance(cost)
        raise RuntimeError("injected crash")

    return EngineSpec(name, run)


@pytest.fixture
def instance():
    return build_instance(ExperimentConfig(
        k=4, num_paths=8, rules_per_policy=5, capacity=40,
        num_ingresses=3, seed=7,
    ))


# ---------------------------------------------------------------------------
# Winner selection
# ---------------------------------------------------------------------------


class TestWinnerSelection:
    def test_first_conclusive_engine_wins(self, instance):
        clock = FakeClock()
        solver = PortfolioSolver(
            engines=[
                engine("slowpoke", SolveStatus.FEASIBLE, 12.0, clock=clock),
                engine("prover", SolveStatus.OPTIMAL, 10.0, clock=clock,
                       placed={("p", 1): ("s1",)}),
                engine("never-ran", SolveStatus.OPTIMAL, 10.0, clock=clock),
            ],
            executor="inline", clock=clock,
        )
        outcome = solver.solve(instance)
        assert outcome.status is SolveStatus.OPTIMAL
        assert outcome.winner == "prover"
        assert outcome.objective == 10.0
        assert outcome.placed == {("p", 1): ("s1",)}
        # Engines after the winner are cancelled, not run.
        assert outcome.report_for("never-ran").outcome == "cancelled"
        assert outcome.report_for("slowpoke").outcome == "feasible"

    def test_proven_infeasibility_is_conclusive(self, instance):
        clock = FakeClock()
        solver = PortfolioSolver(
            engines=[engine("refuter", SolveStatus.INFEASIBLE, clock=clock)],
            executor="inline", clock=clock,
        )
        outcome = solver.solve(instance)
        assert outcome.status is SolveStatus.INFEASIBLE
        assert outcome.winner == "refuter"
        assert not outcome.has_solution

    def test_best_incumbent_wins_without_proof(self, instance):
        clock = FakeClock()
        solver = PortfolioSolver(
            engines=[
                engine("worse", SolveStatus.FEASIBLE, 15.0, clock=clock),
                engine("better", SolveStatus.FEASIBLE, 11.0, clock=clock),
            ],
            executor="inline", clock=clock,
        )
        outcome = solver.solve(instance)
        assert outcome.winner == "better"
        assert outcome.objective == 11.0
        assert outcome.status is SolveStatus.FEASIBLE

    def test_incumbent_tie_breaks_by_engine_order(self, instance):
        clock = FakeClock()
        solver = PortfolioSolver(
            engines=[
                engine("second", SolveStatus.FEASIBLE, 11.0, clock=clock),
                engine("first", SolveStatus.FEASIBLE, 11.0, clock=clock),
            ],
            executor="inline", clock=clock,
        )
        assert solver.solve(instance).winner == "second"

    def test_unknown_engine_name_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            PortfolioSolver(engines=["cplex"])

    def test_duplicate_engine_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PortfolioSolver(engines=["highs", "highs"])

    def test_resolve_backend_names(self):
        assert resolve_backend("highs").name == "scipy-highs"
        assert resolve_backend("bnb").name == "bnb"
        with pytest.raises(ValueError):
            resolve_backend("gurobi")


# ---------------------------------------------------------------------------
# Deadline semantics
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_deadline_expiry_returns_best_incumbent(self, instance):
        """All engines exhaust the budget; the portfolio must surface
        the best incumbent with an honest TIME_LIMIT status."""
        clock = FakeClock()
        solver = PortfolioSolver(
            engines=[
                engine("a", SolveStatus.TIME_LIMIT, 14.0, cost=5.0, clock=clock),
                engine("b", SolveStatus.TIME_LIMIT, 12.0, cost=5.0, clock=clock),
            ],
            deadline=10.0, executor="inline", clock=clock,
        )
        outcome = solver.solve(instance)
        assert outcome.status is SolveStatus.TIME_LIMIT
        assert outcome.deadline_hit
        assert outcome.winner == "b"
        assert outcome.objective == 12.0

    def test_deadline_expiry_without_incumbent(self, instance):
        clock = FakeClock()
        solver = PortfolioSolver(
            engines=[engine("a", SolveStatus.TIME_LIMIT, None, cost=20.0,
                            clock=clock)],
            deadline=10.0, executor="inline", clock=clock,
        )
        outcome = solver.solve(instance)
        assert outcome.status is SolveStatus.TIME_LIMIT
        assert outcome.winner is None
        assert outcome.objective is None

    def test_engines_after_deadline_never_start(self, instance):
        clock = FakeClock()
        solver = PortfolioSolver(
            engines=[
                engine("eats-budget", SolveStatus.TIME_LIMIT, 13.0,
                       cost=10.0, clock=clock),
                engine("starved", SolveStatus.OPTIMAL, 9.0, clock=clock),
            ],
            deadline=10.0, executor="inline", clock=clock,
        )
        outcome = solver.solve(instance)
        assert outcome.report_for("starved").outcome == "timeout"
        assert outcome.winner == "eats-budget"

    def test_remaining_budget_passed_to_engine(self, instance):
        clock = FakeClock()
        seen = {}

        def nosy(task: EngineTask):
            seen["limit"] = task.time_limit
            clock.advance(4.0)
            return payload(SolveStatus.TIME_LIMIT, 10.0)

        solver = PortfolioSolver(
            engines=[
                engine("first", SolveStatus.TIME_LIMIT, 11.0, cost=6.0,
                       clock=clock),
                EngineSpec("second", nosy),
            ],
            deadline=10.0, executor="inline", clock=clock,
        )
        solver.solve(instance)
        assert seen["limit"] == pytest.approx(4.0)


# ---------------------------------------------------------------------------
# Crash survival
# ---------------------------------------------------------------------------


class TestCrashSurvival:
    def test_crashing_engine_does_not_kill_the_race(self, instance):
        clock = FakeClock()
        solver = PortfolioSolver(
            engines=[
                crashing_engine("boom", clock=clock),
                engine("survivor", SolveStatus.OPTIMAL, 10.0, clock=clock),
            ],
            executor="inline", clock=clock,
        )
        outcome = solver.solve(instance)
        assert outcome.status is SolveStatus.OPTIMAL
        assert outcome.winner == "survivor"
        report = outcome.report_for("boom")
        assert report.outcome == "crashed"
        assert "injected crash" in report.error

    def test_all_crashed_reports_error(self, instance):
        clock = FakeClock()
        solver = PortfolioSolver(
            engines=[crashing_engine("b1", clock=clock),
                     crashing_engine("b2", clock=clock)],
            executor="inline", clock=clock,
        )
        outcome = solver.solve(instance)
        assert outcome.status is SolveStatus.ERROR
        assert outcome.winner is None

    def test_crashed_process_detected(self, instance):
        """A worker that dies without reporting (hard exit) must be
        reaped via its exit code, not hang the race."""
        import os

        def hard_exit(task: EngineTask):
            os._exit(17)

        solver = PortfolioSolver(
            engines=[
                EngineSpec("segfaulty", hard_exit),
                "highs",
            ],
            deadline=30.0, executor="process",
        )
        outcome = solver.solve(instance)
        assert outcome.status is SolveStatus.OPTIMAL
        assert outcome.winner == "highs"
        report = outcome.report_for("segfaulty")
        assert report.outcome == "crashed"
        assert "exit code 17" in report.error


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def build(self):
        clock = FakeClock()
        return clock, PortfolioSolver(
            engines=[
                engine("a", SolveStatus.FEASIBLE, 12.0, cost=1.0, clock=clock),
                crashing_engine("b", clock=clock),
                engine("c", SolveStatus.OPTIMAL, 10.0, cost=2.0, clock=clock),
            ],
            deadline=100.0, executor="inline", clock=clock,
        )

    def test_repeated_races_identical(self, instance):
        outcomes = []
        for _ in range(3):
            clock, solver = self.build()
            outcomes.append(solver.solve(instance))
        first = outcomes[0]
        for other in outcomes[1:]:
            assert other.winner == first.winner == "c"
            assert other.status is first.status
            assert other.wall_seconds == first.wall_seconds
            assert [(r.name, r.outcome, r.wall_seconds) for r in other.reports] \
                == [(r.name, r.outcome, r.wall_seconds) for r in first.reports]

    def test_telemetry_schema(self, instance):
        _clock, solver = self.build()
        telemetry = solver.solve(instance).telemetry()
        assert telemetry["winner"] == "c"
        assert telemetry["deadline"] == 100.0
        assert telemetry["deadline_hit"] is False
        assert set(telemetry["engines"]) == {"a", "b", "c"}
        assert telemetry["engines"]["b"]["outcome"] == "crashed"
        # Telemetry must be JSON-serializable (it ships in placements).
        import json

        json.dumps(telemetry)


# ---------------------------------------------------------------------------
# Process executor: real engines, real cancellation
# ---------------------------------------------------------------------------


def _sleepy_engine(task: EngineTask):
    time.sleep(60.0)
    return payload(SolveStatus.OPTIMAL, 0.0)


class TestProcessExecutor:
    def test_losers_are_cancelled_promptly(self, instance):
        """A winner must terminate a 60s sleeper well before it wakes."""
        solver = PortfolioSolver(
            engines=["highs", EngineSpec("sleeper", _sleepy_engine)],
            deadline=55.0, executor="process",
        )
        started = time.monotonic()
        outcome = solver.solve(instance)
        elapsed = time.monotonic() - started
        assert outcome.winner == "highs"
        assert outcome.status is SolveStatus.OPTIMAL
        assert elapsed < 20.0, f"losers not cancelled: took {elapsed:.1f}s"
        assert outcome.report_for("sleeper").outcome == "cancelled"

    def test_real_engines_agree_with_single_backend(self, instance):
        reference = RulePlacer().place(instance)
        solver = PortfolioSolver(deadline=60.0, executor="process")
        outcome = solver.solve(instance)
        assert outcome.status is SolveStatus.OPTIMAL
        assert outcome.objective == pytest.approx(reference.objective_value)

    def test_deadline_kills_sleeper_without_result(self, instance):
        solver = PortfolioSolver(
            engines=[EngineSpec("sleeper", _sleepy_engine)],
            deadline=0.5, executor="process", grace_seconds=0.2,
        )
        started = time.monotonic()
        outcome = solver.solve(instance)
        elapsed = time.monotonic() - started
        assert elapsed < 10.0
        assert outcome.status is SolveStatus.TIME_LIMIT
        assert outcome.deadline_hit
        assert outcome.report_for("sleeper").outcome == "timeout"

    def test_hostile_payload_still_reaps_children(self, instance):
        """An exception while handling a worker message must not leak
        the other forked engines: the teardown runs in a ``finally``."""
        import multiprocessing

        def hostile(task: EngineTask):
            return {"status": "not-a-real-status"}

        solver = PortfolioSolver(
            engines=[EngineSpec("hostile", hostile),
                     EngineSpec("sleeper", _sleepy_engine)],
            deadline=30.0, executor="process",
        )
        with pytest.raises(ValueError):
            solver.solve(instance)
        # The 60s sleeper must have been terminated on the error path.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if not multiprocessing.active_children():
                break
            time.sleep(0.05)
        assert not multiprocessing.active_children(), (
            "forked engine leaked past the race teardown"
        )


# ---------------------------------------------------------------------------
# RulePlacer integration
# ---------------------------------------------------------------------------


class TestPlacerIntegration:
    def test_backend_portfolio_string(self, instance):
        reference = RulePlacer().place(instance)
        placement = RulePlacer(PlacerConfig(
            backend="portfolio", deadline=60.0, executor="inline",
        )).place(instance)
        assert placement.status is SolveStatus.OPTIMAL
        assert placement.objective_value == pytest.approx(
            reference.objective_value)
        assert placement.winner in ("highs", "bnb", "satopt")
        telemetry = placement.solver_stats["portfolio"]
        assert telemetry["winner"] == placement.winner
        assert placement.total_installed() == reference.total_installed()

    def test_named_backend_strings(self, instance):
        for name in ("highs", "bnb"):
            placement = RulePlacer(PlacerConfig(backend=name)).place(instance)
            assert placement.status is SolveStatus.OPTIMAL

    def test_merging_through_portfolio(self, instance):
        plain = RulePlacer(PlacerConfig(enable_merging=True)).place(instance)
        placement = RulePlacer(PlacerConfig(
            backend="portfolio", enable_merging=True,
            deadline=60.0, executor="inline",
        )).place(instance)
        assert placement.objective_value == pytest.approx(plain.objective_value)

    def test_non_rule_objective_skips_satopt(self, instance):
        from repro.core.objectives import UpstreamDrops

        placement = RulePlacer(PlacerConfig(
            backend="portfolio", objective=UpstreamDrops(),
            deadline=60.0, executor="inline",
        )).place(instance)
        telemetry = placement.solver_stats["portfolio"]
        assert telemetry["engines"]["satopt"]["outcome"] == "skipped"
        assert placement.status is SolveStatus.OPTIMAL

    def test_crash_injected_engine_never_fails_the_solve(self, instance):
        placement = RulePlacer(PlacerConfig(
            backend="portfolio", deadline=60.0, executor="inline",
            engines=(crashing_engine("hostile"), "highs"),
        )).place(instance)
        assert placement.status is SolveStatus.OPTIMAL
        assert placement.winner == "highs"
