"""Component decomposition: split correctness and exactness.

The decomposition's promise is strong -- the stitched answer *is* the
monolithic optimum -- so these tests lean on differentials: every
decomposed solve is compared against the monolithic model on the same
instance, across a seed matrix (trimmed by ``REPRO_FUZZ_QUICK`` /
sized by ``REPRO_FUZZ_SEEDS``, like the cross-engine fuzz campaigns).
"""

from __future__ import annotations

import os

import pytest

from repro.core.depgraph import build_dependency_graph
from repro.core.instance import PlacementInstance
from repro.core.objectives import (
    Combined,
    SwitchCount,
    TotalRules,
    UpstreamDrops,
    WeightedSwitches,
)
from repro.core.placement import PlacerConfig, RulePlacer
from repro.core.slicing import build_slices
from repro.core.verify import verify_placement
from repro.milp.model import SolveStatus
from repro.net.routing import Path, Routing
from repro.net.topology import Topology
from repro.policy.classbench import generate_policy_set
from repro.solve.components import (
    objective_is_separable,
    place_components,
    split_components,
)

_QUICK = os.environ.get("REPRO_FUZZ_QUICK") == "1"
_SEEDS = range(int(os.environ.get("REPRO_FUZZ_SEEDS", "4" if _QUICK else "8")))


def islands_instance(num_islands=3, rules=30, seed=0, capacity=50,
                     chain_len=3, bridge=False) -> PlacementInstance:
    """``num_islands`` disjoint switch chains, one routed policy each.

    With ``bridge=True`` the first two islands share their last switch,
    coupling them into one component.
    """
    topo = Topology()
    routing = Routing()
    ingresses = []
    for i in range(num_islands):
        chain = [f"i{i}s{j}" for j in range(chain_len)]
        if bridge and i == 1:
            chain[-1] = "i0s%d" % (chain_len - 1)
        for name in chain:
            if name not in topo:
                topo.add_switch(name, capacity)
        for a, b in zip(chain, chain[1:]):
            topo.add_link(a, b)
        port = f"in{i}"
        topo.add_entry_port(port, chain[0])
        routing.add_path(Path(port, chain[-1], tuple(chain)))
        ingresses.append(port)
    policies = generate_policy_set(ingresses, rules, seed=seed)
    return PlacementInstance(topo, routing, policies, topo.capacities())


def components_of(instance):
    depgraphs = {
        p.ingress: build_dependency_graph(p) for p in instance.policies
    }
    return split_components(instance, build_slices(instance, depgraphs))


class TestSplit:
    def test_disjoint_islands_split(self):
        instance = islands_instance(num_islands=4)
        components = components_of(instance)
        assert len(components) == 4
        assert [c.ingresses for c in components] == [
            ("in0",), ("in1",), ("in2",), ("in3",)
        ]
        # Switch sets partition: no switch in two components.
        seen = set()
        for component in components:
            assert not (component.switches & seen)
            seen |= component.switches

    def test_shared_switch_couples(self):
        instance = islands_instance(num_islands=3, bridge=True)
        components = components_of(instance)
        assert len(components) == 2
        assert ("in0", "in1") in [c.ingresses for c in components]

    def test_fattree_is_one_component(self):
        from repro.experiments.generators import ExperimentConfig, build_instance

        instance = build_instance(ExperimentConfig(
            seed=1, num_ingresses=4, rules_per_policy=15))
        # Fat-tree shortest paths share core switches, so everything
        # couples -- the decomposition must refuse, not mis-split.
        assert len(components_of(instance)) <= 2

    def test_rule_counts_cover_all_variables(self):
        instance = islands_instance(num_islands=3)
        depgraphs = {
            p.ingress: build_dependency_graph(p) for p in instance.policies
        }
        slices = build_slices(instance, depgraphs)
        components = split_components(instance, slices)
        assert sum(c.num_rules for c in components) == len(slices.domains)


class TestSeparability:
    @pytest.mark.parametrize("objective", [
        TotalRules(), UpstreamDrops(), SwitchCount(),
        WeightedSwitches(weights={}),
        Combined(((1.0, TotalRules()), (0.1, UpstreamDrops()))),
    ])
    def test_builtins_separable(self, objective):
        assert objective_is_separable(objective)

    def test_unknown_objective_not_separable(self):
        class Custom:
            pass

        assert not objective_is_separable(Custom())


class TestDifferential:
    @pytest.mark.parametrize("seed", _SEEDS)
    def test_component_objective_equals_monolithic(self, seed):
        instance = islands_instance(
            num_islands=2 + seed % 3, rules=25 + 5 * (seed % 4), seed=seed)
        mono = RulePlacer(PlacerConfig(parallel_components="off")).place(instance)
        split = RulePlacer(PlacerConfig(parallel_components="auto")).place(instance)
        assert split.status is mono.status, f"seed={seed}"
        assert split.objective_value == mono.objective_value, f"seed={seed}"
        assert not split.capacity_violations(), f"seed={seed}"
        report = verify_placement(split)
        assert report.ok, f"seed={seed}: {report}"

    @pytest.mark.parametrize("objective", [
        UpstreamDrops(), Combined(((1.0, TotalRules()), (0.05, UpstreamDrops()))),
    ])
    def test_other_objectives_agree(self, objective):
        instance = islands_instance(num_islands=3, rules=25, seed=42)
        mono = RulePlacer(PlacerConfig(
            objective=objective, parallel_components="off")).place(instance)
        split = RulePlacer(PlacerConfig(
            objective=objective, parallel_components="auto")).place(instance)
        assert split.objective_value == pytest.approx(mono.objective_value)

    def test_forced_parallel_matches_serial(self):
        instance = islands_instance(num_islands=3, rules=25, seed=9)
        serial = RulePlacer(PlacerConfig(
            parallel_components="auto", component_workers=1)).place(instance)
        parallel = RulePlacer(PlacerConfig(
            parallel_components="auto", component_workers=3)).place(instance)
        assert parallel.objective_value == serial.objective_value
        assert parallel.placed == serial.placed


class TestPlacement:
    def test_stitched_placement_covers_every_policy(self):
        instance = islands_instance(num_islands=3, rules=30, seed=2)
        placement = RulePlacer(PlacerConfig(parallel_components="auto")).place(instance)
        placed_ingresses = {key[0] for key in placement.placed}
        # Every island's drops must land somewhere.
        assert placed_ingresses == {"in0", "in1", "in2"}

    def test_infeasible_component_infeasible_overall(self):
        instance = islands_instance(num_islands=3, rules=30, seed=2, capacity=50)
        # Starve one island only.
        for j in range(3):
            instance.capacities[f"i1s{j}"] = 0
        placement = RulePlacer(PlacerConfig(parallel_components="auto")).place(instance)
        mono = RulePlacer(PlacerConfig(parallel_components="off")).place(instance)
        assert placement.status is SolveStatus.INFEASIBLE
        assert mono.status is SolveStatus.INFEASIBLE

    def test_telemetry_fields(self):
        instance = islands_instance(num_islands=3, rules=25, seed=4)
        placement = RulePlacer(PlacerConfig(parallel_components="auto")).place(instance)
        compile_stats = placement.solver_stats["compile"]
        assert compile_stats["components"] == 3
        assert compile_stats["depgraph_ms"] >= 0.0
        assert compile_stats["encode_ms"] >= 0.0
        assert compile_stats["parallel_speedup"] > 0.0
        comp = placement.solver_stats["components"]
        assert comp["count"] == 3
        assert sorted(comp["sizes"], reverse=True) == sorted(
            comp["sizes"], reverse=True)
        assert comp["mode"] in ("serial", "parallel")

    def test_monolithic_telemetry_fields(self):
        instance = islands_instance(num_islands=1, rules=25, seed=4)
        placement = RulePlacer(PlacerConfig(parallel_components="auto")).place(instance)
        compile_stats = placement.solver_stats["compile"]
        assert compile_stats["components"] == 1
        assert compile_stats["parallel_speedup"] == 1.0
        assert "bulk" in compile_stats


class TestFallbacks:
    def test_merging_stays_monolithic(self):
        instance = islands_instance(num_islands=3, rules=20, seed=6)
        placement = RulePlacer(PlacerConfig(
            enable_merging=True, parallel_components="auto")).place(instance)
        assert placement.solver_stats["compile"]["components"] == 1

    def test_pins_stay_monolithic(self):
        instance = islands_instance(num_islands=3, rules=20, seed=6)
        placer = RulePlacer(PlacerConfig(parallel_components="auto"))
        baseline = placer.place(instance)
        key, switches = next(iter(baseline.placed.items()))
        switch = next(iter(switches))
        pinned = placer.place(instance, fixed={(key, switch): 1})
        assert pinned.solver_stats["compile"]["components"] == 1
        assert switch in pinned.placed[key]

    def test_off_switch_disables(self):
        instance = islands_instance(num_islands=3, rules=20, seed=6)
        placement = RulePlacer(PlacerConfig(parallel_components="off")).place(instance)
        assert placement.solver_stats["compile"]["components"] == 1

    def test_explicit_place_components_none_on_error(self):
        instance = islands_instance(num_islands=2, rules=15, seed=1)
        components = components_of(instance)
        bad_config = PlacerConfig(backend="does-not-exist")
        assert place_components(instance, bad_config, components) is None
