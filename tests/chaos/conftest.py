"""Chaos-suite hardening: the recovery tests SIGKILL real forked
daemons mid-commit; faulthandler makes any fatal signal in the
surviving process dump all thread stacks instead of dying silently."""

import faulthandler

faulthandler.enable()
