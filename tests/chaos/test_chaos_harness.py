"""The chaos suite: seeded fault-schedule storms against deployed
placements.

Environment knobs (mirroring the fuzz suite):

* ``REPRO_CHAOS_QUICK=1`` -- shrink the seed matrix for fast local runs;
* ``REPRO_CHAOS_SEEDS=N`` -- explicit seed-matrix size.

Default is the full 200-schedule matrix the acceptance criteria call
for; each run must converge to the intended placement, hold the
fail-closed invariant at every delivery instant, and be bit-reproducible
from its seed.
"""

from __future__ import annotations

import os

import pytest

from repro.chaos import (
    ChaosConfig,
    ChaosHarness,
    FaultKind,
    generate_schedule,
    run_chaos,
)
from repro.core.instance import PlacementInstance
from repro.core.placement import Placement, PlacerConfig, RulePlacer
from repro.milp.model import SolveStatus
from repro.net.routing import Path, Routing
from repro.net.topology import Topology
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch

_QUICK = os.environ.get("REPRO_CHAOS_QUICK") == "1"
_SEEDS = range(int(os.environ.get("REPRO_CHAOS_SEEDS", "40" if _QUICK else "200")))


def _rule(pattern, action, priority, name=""):
    return Rule(TernaryMatch.from_string(pattern), action, priority, name)


@pytest.fixture(scope="module")
def instance() -> PlacementInstance:
    topo = Topology()
    for name in ("s1", "s2", "s3", "s4", "s5"):
        topo.add_switch(name, capacity=4)
    topo.add_link("s1", "s2")
    topo.add_link("s2", "s3")
    topo.add_link("s2", "s4")
    topo.add_link("s4", "s5")
    topo.add_entry_port("l1", "s1")
    topo.add_entry_port("l2", "s3")
    topo.add_entry_port("l3", "s5")
    routing = Routing([
        Path("l1", "l2", ("s1", "s2", "s3")),
        Path("l1", "l3", ("s1", "s2", "s4", "s5")),
    ])
    policy = Policy("l1", [
        _rule("1***", Action.PERMIT, 3, "r11"),
        _rule("1*0*", Action.DROP, 2, "r12"),
        _rule("0***", Action.DROP, 1, "r13"),
    ])
    return PlacementInstance(topo, routing, PolicySet([policy]))


@pytest.fixture(scope="module")
def placement(instance) -> Placement:
    placed = RulePlacer(
        PlacerConfig(backend="portfolio", executor="inline")
    ).place(instance)
    assert placed.is_feasible
    return placed


class TestSchedule:
    def test_deterministic(self):
        a = generate_schedule(["s1", "s2", "s3"], seed=5)
        b = generate_schedule(["s1", "s2", "s3"], seed=5)
        assert a == b
        assert a != generate_schedule(["s1", "s2", "s3"], seed=6)

    def test_every_partition_heals_by_horizon(self):
        for seed in range(50):
            schedule = generate_schedule(
                ["s1", "s2", "s3", "s4"], seed=seed, horizon=25,
                partition_prob=0.4,
            )
            open_partitions = set()
            for event in schedule.events:
                assert event.round <= schedule.horizon
                if event.kind is FaultKind.PARTITION:
                    open_partitions.add(event.switch)
                elif event.kind is FaultKind.HEAL:
                    if event.switch is None:
                        open_partitions.clear()
                    else:
                        open_partitions.discard(event.switch)
            assert open_partitions == set()

    def test_closes_with_heal_all_and_calm(self):
        schedule = generate_schedule(["s1"], seed=0, horizon=10)
        final = schedule.at(schedule.horizon)
        kinds = {e.kind for e in final}
        assert FaultKind.HEAL in kinds and FaultKind.CALM in kinds

    def test_storm_rates_bounded(self):
        for seed in range(30):
            schedule = generate_schedule(
                ["s1", "s2"], seed=seed, storm_prob=0.5,
            )
            for event in schedule.events:
                if event.kind is FaultKind.STORM:
                    rates = dict(event.rates)
                    for key in ("drop_rate", "duplicate_rate", "reorder_rate"):
                        assert 0.0 <= rates[key] <= 0.3

    def test_rejects_tiny_horizon(self):
        with pytest.raises(ValueError):
            generate_schedule(["s1"], seed=0, horizon=1)


class TestHarnessBasics:
    def test_rejects_infeasible_placement(self, instance):
        bad = Placement(instance=instance, status=SolveStatus.INFEASIBLE)
        with pytest.raises(ValueError):
            ChaosHarness(instance, bad)

    def test_report_shape(self, instance, placement):
        report = run_chaos(instance, placement, seed=0)
        assert report.seed == 0
        assert report.rounds == ChaosConfig().horizon
        assert report.digest and len(report.digest) == 64
        assert report.schedule_counts
        assert "retransmissions" in report.controller_stats

    def test_bit_reproducible(self, instance, placement):
        seeds = list(_SEEDS)[:: max(1, len(_SEEDS) // 10)]
        for seed in seeds:
            first = run_chaos(instance, placement, seed=seed)
            second = run_chaos(instance, placement, seed=seed)
            assert first.digest == second.digest, seed

    def test_distinct_seeds_distinct_storms(self, instance, placement):
        digests = {run_chaos(instance, placement, seed=s).digest
                   for s in range(8)}
        assert len(digests) == 8


class TestConvergenceMatrix:
    @pytest.mark.parametrize("seed", _SEEDS)
    def test_converges_and_fails_closed(self, instance, placement, seed):
        report = run_chaos(instance, placement, seed=seed)
        assert report.fail_closed_held, report.violations
        assert report.converged, (report.final_stage,
                                  report.controller_stats)

    @pytest.mark.parametrize("seed", list(_SEEDS)[: max(10, len(_SEEDS) // 5)])
    def test_converges_without_periodic_repair(self, instance, placement,
                                               seed):
        """The final reconciliation ladder alone must converge the
        network even when no repairs ran during the storm."""
        report = run_chaos(instance, placement, seed=seed, repair_interval=0)
        assert report.fail_closed_held, report.violations
        assert report.converged, report.final_stage


class TestNegativeControl:
    def test_fail_secure_is_load_bearing(self, instance, placement):
        """With fail-secure reboots disabled, a rebooted switch forwards
        everything: some schedule must catch the dataplane delivering a
        policy-dropped packet.  This proves the oracle has teeth."""
        violating = [
            seed for seed in range(30)
            if run_chaos(instance, placement, seed=seed,
                         fail_secure=False).violations
        ]
        assert violating, "oracle never fired -- it is not observing"

    def test_violations_carry_the_instant(self, instance, placement):
        seed = next(
            s for s in range(30)
            if run_chaos(instance, placement, seed=s,
                         fail_secure=False).violations
        )
        report = run_chaos(instance, placement, seed=seed, fail_secure=False)
        assert any("round" in v and "delivered" in v
                   for v in report.violations)
