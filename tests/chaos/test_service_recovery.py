"""Service-level chaos: the crash-recovery seed matrix and a real
kill-restart end-to-end.

Environment knobs (mirroring the dataplane chaos suite):

* ``REPRO_RECOVERY_QUICK=1`` -- shrink the seed matrix for fast local
  runs;
* ``REPRO_RECOVERY_SEEDS=N`` -- explicit seed-matrix size.

Default is the full 100-seed matrix the acceptance criteria call for;
every seeded crash storm must recover with zero invariant violations:
acked implies recovered (digest-identical), epochs never regress,
retries replay, and the storm run lands exactly where a crash-free run
of the same op stream lands.

The end-to-end class does it for real: a daemon subprocess under
client load, ``SIGKILL`` mid-stream, a replacement booted from the
same journal, and the client riding across the restart on reconnect +
idempotent retry.  A second test drives the ``SIGTERM`` graceful-drain
path of the CLI.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro import io as repro_io
from repro.chaos import ServiceChaosConfig, run_service_chaos
from repro.experiments.generators import ExperimentConfig, build_instance
from repro.net.routing import Routing, ShortestPathRouter
from repro.policy.classbench import generate_policy_set
from repro.service import ServiceClient, ServiceUnavailable
from repro.service.protocol import DeltaRequest, SolveRequest

_QUICK = os.environ.get("REPRO_RECOVERY_QUICK") == "1"
_SEEDS = range(int(os.environ.get("REPRO_RECOVERY_SEEDS",
                                  "20" if _QUICK else "100")))


class TestHarnessShape:
    def test_report_shape_and_activity(self, tmp_path):
        report = run_service_chaos(ServiceChaosConfig(seed=0),
                                   workdir=str(tmp_path))
        assert report.seed == 0
        assert report.crashes == report.recoveries == 3
        assert report.operations == 14
        assert report.acked > 0
        assert report.replayed_records > 0
        assert len(report.fingerprint()) == 64
        as_dict = report.as_dict()
        assert as_dict["ok"] is True
        assert as_dict["final_digest"] == as_dict["clean_digest"]

    def test_deterministic_per_seed(self):
        first = run_service_chaos(ServiceChaosConfig(seed=3))
        second = run_service_chaos(ServiceChaosConfig(seed=3))
        assert first.fingerprint() == second.fingerprint()
        assert first.final_digest == second.final_digest

    def test_distinct_seeds_distinct_storms(self):
        digests = {run_service_chaos(ServiceChaosConfig(seed=s)).fingerprint()
                   for s in range(4)}
        assert len(digests) == 4

    def test_compaction_is_exercised(self, tmp_path):
        """With snapshot_every small, the storm must cross snapshot
        boundaries -- recovery from snapshot+tail, not just raw log."""
        run_service_chaos(ServiceChaosConfig(seed=1, snapshot_every=4),
                          workdir=str(tmp_path))
        names = os.listdir(str(tmp_path))
        assert any(n.startswith("snapshot-") for n in names)


class TestRecoveryMatrix:
    @pytest.mark.parametrize("seed", _SEEDS)
    def test_zero_invariant_violations(self, seed):
        report = run_service_chaos(ServiceChaosConfig(seed=seed))
        assert report.ok, report.violations


# ---------------------------------------------------------------------------
# Real-process end-to-end
# ---------------------------------------------------------------------------


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _spawn_daemon(journal_dir: str, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__),
                                     "..", "..", "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", str(port), "--executor", "inline",
         "--journal-dir", journal_dir, "--durability", "flush",
         "--snapshot-every", "8", "--drain-timeout", "20"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )


@pytest.fixture(scope="module")
def instance():
    return build_instance(ExperimentConfig(
        k=4, num_paths=4, rules_per_policy=4, seed=2))


def _delta_stream(instance, count):
    ports = [p.name for p in instance.topology.entry_ports]
    used = set(instance.policies.ingresses)
    free = next(p for p in ports if p not in used)
    policy = generate_policy_set([free], rules_per_policy=3, seed=9)[free]
    router = ShortestPathRouter(instance.topology, seed=4)
    requests = [DeltaRequest(
        deployment="prod", op="install", ingress=free,
        policy=repro_io.policy_to_dict(policy),
        paths=repro_io.routing_to_dict(
            Routing([router.shortest_path(free, ports[0])])),
        request_id="e2e-install")]
    for index in range(count - 1):
        egress = ports[(index + 1) % len(ports)]
        if egress == free:
            egress = ports[(index + 2) % len(ports)]
        requests.append(DeltaRequest(
            deployment="prod", op="reroute", ingress=free,
            paths=repro_io.routing_to_dict(
                Routing([router.shortest_path(free, egress)])),
            request_id=f"e2e-rr-{index}"))
    return requests


class TestKillRestartEndToEnd:
    def test_sigkill_under_load_then_recover(self, instance, tmp_path):
        """Boot a daemon under client load, ``kill -9`` it mid-stream,
        boot a replacement from the same journal, and assert every
        acked commit is recovered digest-identical -- the acceptance
        scenario, with nothing simulated."""
        journal_dir = str(tmp_path / "wal")
        port = _free_port()
        daemon = _spawn_daemon(journal_dir, port)
        replacement = None
        client = ServiceClient(port=port, retries=8, backoff_base=0.1,
                               timeout=60.0)
        try:
            client.wait_ready(timeout=60.0)
            solved = client.call(
                SolveRequest(instance, deploy_as="prod",
                             request_id="e2e-solve"), timeout=120.0)
            assert solved.ok, solved.error
            acked = [("e2e-solve", solved.result["state_digest"])]

            requests = _delta_stream(instance, 8)
            kill_after = 3
            interrupted = None
            for index, request in enumerate(requests):
                if index == kill_after:
                    daemon.send_signal(signal.SIGKILL)
                    daemon.wait(timeout=10.0)
                    # The very next call lands on a dead daemon; spin
                    # up the replacement while the client is already
                    # backing off toward it.
                    replacement = _spawn_daemon(journal_dir, port)
                try:
                    response = client.call(request, timeout=60.0)
                except ServiceUnavailable as fail:  # pragma: no cover
                    interrupted = (request.request_id, fail)
                    break
                assert response.ok, (request.request_id, response.error)
                acked.append((request.request_id,
                              response.result["state_digest"]))
            assert interrupted is None, interrupted
            assert len(acked) == 1 + len(requests)

            # The replacement recovered from the journal: the daemon's
            # current state digest is the last acked digest, and every
            # acked commit is in the dedup table (replay, not reapply).
            health = client.health(deep=True, timeout=30.0)
            assert health.ok and health.result["healthy"]
            assert health.result["state_digests"]["prod"] == acked[-1][1]
            assert health.result["recovery"]["deployments"] == 1

            for request in requests[:kill_after]:
                replay = client.call(request, timeout=60.0)
                assert replay.ok and replay.served == "replay", \
                    request.request_id
            assert client.health(deep=True).result[
                "state_digests"]["prod"] == acked[-1][1]
        finally:
            client.close()
            for proc in (daemon, replacement):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                if proc is not None:
                    proc.wait(timeout=10.0)

    def test_sigterm_drains_and_exits_clean(self, instance, tmp_path):
        """SIGTERM must drain: ack in-flight work, sync the journal,
        exit 0 -- and a successor must recover the full state."""
        journal_dir = str(tmp_path / "wal")
        port = _free_port()
        daemon = _spawn_daemon(journal_dir, port)
        client = ServiceClient(port=port, retries=6, backoff_base=0.1,
                               timeout=60.0)
        try:
            client.wait_ready(timeout=60.0)
            solved = client.call(
                SolveRequest(instance, deploy_as="prod",
                             request_id="term-solve"), timeout=120.0)
            assert solved.ok
            digest = solved.result["state_digest"]

            daemon.send_signal(signal.SIGTERM)
            output, _ = daemon.communicate(timeout=60.0)
            assert daemon.returncode == 0, output
            assert "draining" in output

            successor = _spawn_daemon(journal_dir, port)
            try:
                client.wait_ready(timeout=60.0)
                health = client.health(deep=True, timeout=30.0)
                assert health.ok
                assert health.result["state_digests"]["prod"] == digest
            finally:
                successor.kill()
                successor.wait(timeout=10.0)
        finally:
            client.close()
            if daemon.poll() is None:  # pragma: no cover - hung drain
                daemon.kill()
                daemon.wait(timeout=10.0)
