"""Tests for paths, routings, and the shortest-path router."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.net.fattree import fattree
from repro.net.routing import Path, Routing, ShortestPathRouter
from repro.net.topology import Topology
from repro.policy.ternary import TernaryMatch


class TestPath:
    def test_validation(self):
        with pytest.raises(ValueError):
            Path("a", "b", ())
        with pytest.raises(ValueError):
            Path("a", "b", ("s1", "s2", "s1"))

    def test_hop_of(self):
        path = Path("a", "b", ("s1", "s2", "s3"))
        assert path.hop_of("s1") == 0
        assert path.hop_of("s3") == 2
        assert len(path) == 3

    def test_with_flow(self):
        path = Path("a", "b", ("s1",))
        flow = TernaryMatch.from_string("1*")
        assert path.with_flow(flow).flow == flow
        assert path.flow is None


class TestRouting:
    def test_grouping_and_lookup(self):
        routing = Routing([
            Path("a", "x", ("s1", "s2")),
            Path("a", "y", ("s1", "s3")),
            Path("b", "x", ("s4",)),
        ])
        assert set(routing.ingresses) == {"a", "b"}
        assert len(routing.paths("a")) == 2
        assert routing.num_paths() == 3
        assert len(routing.all_paths()) == 3

    def test_reachable_switches_deterministic_union(self):
        routing = Routing([
            Path("a", "x", ("s1", "s2")),
            Path("a", "y", ("s1", "s3")),
        ])
        assert routing.reachable_switches("a") == ("s1", "s2", "s3")
        assert routing.reachable_switches("nope") == ()

    def test_loc_minimum_hop(self):
        routing = Routing([
            Path("a", "x", ("s1", "s2", "s3")),
            Path("a", "y", ("s1", "s3")),
        ])
        assert routing.loc("s1", "a") == 0
        assert routing.loc("s3", "a") == 1  # min over the two paths
        with pytest.raises(KeyError):
            routing.loc("s9", "a")

    def test_remove_paths(self):
        routing = Routing([Path("a", "x", ("s1",))])
        removed = routing.remove_paths("a")
        assert len(removed) == 1
        assert routing.num_paths() == 0
        assert routing.remove_paths("a") == []

    def test_subset(self):
        routing = Routing([
            Path("a", "x", ("s1",)),
            Path("b", "x", ("s2",)),
        ])
        sub = routing.subset(["b"])
        assert sub.ingresses == ("b",)


class TestShortestPathRouter:
    @pytest.fixture
    def topo(self):
        return fattree(4, capacity=100)

    def test_paths_are_shortest(self, topo):
        router = ShortestPathRouter(topo, seed=0)
        ports = [p.name for p in topo.entry_ports]
        for src, dst in [(ports[0], ports[5]), (ports[2], ports[9])]:
            path = router.shortest_path(src, dst)
            expected = nx.shortest_path_length(
                topo.graph,
                topo.entry_port(src).switch,
                topo.entry_port(dst).switch,
            )
            assert len(path.switches) == expected + 1
            # consecutive switches are linked
            for a, b in zip(path.switches, path.switches[1:]):
                assert topo.graph.has_edge(a, b)

    def test_same_switch_pair(self, topo):
        """Two hosts on the same edge switch yield a single-switch path."""
        ports = [p.name for p in topo.entry_ports]
        same_edge = [p for p in ports if p.startswith("h0_0_")]
        router = ShortestPathRouter(topo, seed=0)
        path = router.shortest_path(same_edge[0], same_edge[1])
        assert len(path.switches) == 1

    def test_deterministic_given_seed(self, topo):
        ports = [p.name for p in topo.entry_ports]
        r1 = ShortestPathRouter(topo, seed=7).random_routing(16, ingresses=ports[:4])
        r2 = ShortestPathRouter(topo, seed=7).random_routing(16, ingresses=ports[:4])
        assert [p.switches for p in r1.all_paths()] == [p.switches for p in r2.all_paths()]

    def test_samples_multiple_equal_cost_paths(self, topo):
        """Cross-pod pairs in a fat-tree have many shortest paths; with
        enough samples the router should use more than one."""
        router = ShortestPathRouter(topo, seed=3)
        seen = set()
        for _ in range(30):
            seen.add(router.shortest_path("h0_0_0", "h1_0_0").switches)
        assert len(seen) > 1

    def test_random_routing_counts_and_spread(self, topo):
        ports = [p.name for p in topo.entry_ports]
        routing = ShortestPathRouter(topo, seed=1).random_routing(
            24, ingresses=ports[:6]
        )
        assert routing.num_paths() == 24
        # round-robin: each ingress gets 4 paths
        for ingress in ports[:6]:
            assert len(routing.paths(ingress)) == 4

    def test_no_path_raises(self):
        topo = Topology()
        topo.add_switch("a", 1)
        topo.add_switch("b", 1)
        topo.add_entry_port("pa", "a")
        topo.add_entry_port("pb", "b")
        router = ShortestPathRouter(topo)
        with pytest.raises(nx.NetworkXNoPath):
            router.shortest_path("pa", "pb")

    def test_need_two_ports(self):
        topo = Topology()
        topo.add_switch("a", 1)
        topo.add_entry_port("pa", "a")
        with pytest.raises(ValueError):
            ShortestPathRouter(topo).random_routing(1)
