"""Tests for Yen's k-shortest-paths against the networkx oracle."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.net.fattree import fattree
from repro.net.generators import leaf_spine, random_graph, ring
from repro.net.kpaths import KPathRouter, k_shortest_paths


class TestKShortestPaths:
    def test_k1_is_shortest(self):
        topo = fattree(4)
        paths = k_shortest_paths(topo, "edge0_0", "edge3_1", 1)
        assert len(paths) == 1
        expected = nx.shortest_path_length(topo.graph, "edge0_0", "edge3_1")
        assert len(paths[0]) == expected + 1

    def test_paths_sorted_by_length_and_simple(self):
        topo = fattree(4)
        paths = k_shortest_paths(topo, "edge0_0", "edge1_0", 6)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)
        for path in paths:
            assert len(set(path)) == len(path)  # loop-free
            for a, b in zip(path, path[1:]):
                assert topo.graph.has_edge(a, b)

    def test_paths_distinct(self):
        topo = leaf_spine(4, 3)
        paths = k_shortest_paths(topo, "leaf0", "leaf3", 5)
        assert len(paths) == len(set(paths))

    def test_ecmp_count_in_leaf_spine(self):
        """leaf->leaf has exactly `spines` shortest paths."""
        topo = leaf_spine(3, 4)
        paths = k_shortest_paths(topo, "leaf0", "leaf2", 10)
        shortest = [p for p in paths if len(p) == 3]
        assert len(shortest) == 4

    def test_exhausts_ring(self):
        """A ring has exactly two simple paths between any two nodes."""
        topo = ring(6)
        paths = k_shortest_paths(topo, "r0", "r3", 10)
        assert len(paths) == 2

    def test_disconnected_returns_empty(self):
        from repro.net.topology import Topology

        topo = Topology()
        topo.add_switch("a", 1)
        topo.add_switch("b", 1)
        assert k_shortest_paths(topo, "a", "b", 3) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_shortest_paths(fattree(4), "edge0_0", "edge0_1", 0)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx_oracle(self, seed):
        """Path *lengths* (the quantity Yen guarantees) match the
        reference generator; sets of paths may differ only in the
        tie-broken order within equal lengths."""
        topo = random_graph(9, degree=3, seed=seed)
        rng = random.Random(seed)
        nodes = list(topo.switch_names)
        src, dst = rng.sample(nodes, 2)
        k = 6
        ours = k_shortest_paths(topo, src, dst, k)
        reference = []
        for path in nx.shortest_simple_paths(topo.graph, src, dst):
            reference.append(tuple(path))
            if len(reference) == k:
                break
        assert [len(p) for p in ours] == [len(p) for p in reference]
        # And every returned path is genuinely simple + connected.
        for path in ours:
            assert len(set(path)) == len(path)


class TestKPathRouter:
    def test_routing_structure(self):
        topo = leaf_spine(3, 2, hosts_per_leaf=1)
        router = KPathRouter(topo, k=2)
        routing = router.routing([("h0_0", "h2_0"), ("h1_0", "h0_0")])
        assert len(routing.paths("h0_0")) == 2
        assert len(routing.paths("h1_0")) == 2

    def test_same_switch_pair(self):
        topo = leaf_spine(2, 2, hosts_per_leaf=2)
        router = KPathRouter(topo, k=3)
        paths = router.paths_between("h0_0", "h0_1")
        assert len(paths) == 1
        assert paths[0].switches == ("leaf0",)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KPathRouter(fattree(4), k=0)

    def test_placement_over_multipath(self):
        """The placer handles k-way multipath: each of the k paths gets
        covered (Eq. 2 per path)."""
        from repro.core.instance import PlacementInstance
        from repro.core.placement import RulePlacer
        from repro.core.verify import verify_placement
        from repro.policy.classbench import generate_policy_set

        topo = leaf_spine(3, 3, capacity=40, hosts_per_leaf=1)
        router = KPathRouter(topo, k=3)
        routing = router.routing([("h0_0", "h2_0")])
        policies = generate_policy_set(["h0_0"], rules_per_policy=8, seed=1)
        placement = RulePlacer().place(
            PlacementInstance(topo, routing, policies)
        )
        assert placement.is_feasible
        assert verify_placement(placement).ok
