"""Tests for failure injection and post-failure repair."""

from __future__ import annotations

import pytest

from repro.core.incremental import IncrementalDeployer
from repro.core.instance import PlacementInstance
from repro.core.placement import RulePlacer
from repro.core.verify import verify_placement
from repro.net.failures import (
    FailedLink,
    FailedSwitch,
    affected_ingresses,
    fail_link,
    fail_switch,
    restore,
    reroute_after_failure,
)
from repro.net.fattree import fattree
from repro.net.generators import line
from repro.net.routing import Path, Routing, ShortestPathRouter
from repro.policy.classbench import generate_policy_set


class TestFailurePrimitives:
    def test_fail_and_restore_link(self):
        topo = fattree(4, capacity=50)
        edges_before = topo.num_links()
        failure = fail_link(topo, "edge0_0", "agg0_0")
        assert topo.num_links() == edges_before - 1
        restore(topo, failure)
        assert topo.num_links() == edges_before

    def test_fail_unknown_link(self):
        topo = fattree(4)
        with pytest.raises(KeyError):
            fail_link(topo, "edge0_0", "edge3_1")

    def test_fail_switch_cuts_all_links(self):
        topo = fattree(4, capacity=50)
        degree = topo.degree("agg0_0")
        failure = fail_switch(topo, "agg0_0")
        assert topo.degree("agg0_0") == 0
        assert len(failure.links) == degree
        restore(topo, failure)
        assert topo.degree("agg0_0") == degree

    def test_fail_unknown_switch(self):
        with pytest.raises(KeyError):
            fail_switch(fattree(4), "nope")

    def test_restore_rejects_garbage(self):
        with pytest.raises(TypeError):
            restore(fattree(4), "not-a-failure")


class TestAffectedIngresses:
    def test_link_failure_detection(self):
        topo = line(3, capacity=50)
        routing = Routing([Path("left0", "right0", ("s0", "s1", "s2"))])
        failure = fail_link(topo, "s1", "s2")
        assert affected_ingresses(topo, routing, failure) == ["left0"]

    def test_unrelated_failure_ignored(self):
        topo = fattree(4, capacity=50)
        routing = Routing([Path("h0_0_0", "h0_0_1", ("edge0_0",))])
        failure = fail_link(topo, "edge3_1", "agg3_0")
        assert affected_ingresses(topo, routing, failure) == []

    def test_switch_failure_detection(self):
        topo = line(3, capacity=50)
        routing = Routing([Path("left0", "right0", ("s0", "s1", "s2"))])
        failure = fail_switch(topo, "s1")
        assert affected_ingresses(topo, routing, failure) == ["left0"]


class TestRepair:
    @pytest.fixture
    def deployed(self):
        topo = fattree(4, capacity=50)
        ports = [p.name for p in topo.entry_ports]
        ingresses = ports[:6]
        router = ShortestPathRouter(topo, seed=4)
        routing = router.random_routing(12, ingresses=ingresses)
        policies = generate_policy_set(ingresses, rules_per_policy=10, seed=4)
        instance = PlacementInstance(topo, routing, policies)
        base = RulePlacer().place(instance)
        assert base.is_feasible
        return topo, routing, IncrementalDeployer(base)

    def test_link_failure_repaired(self, deployed):
        topo, routing, deployer = deployed
        # Fail a link some path actually uses.
        victim = next(
            p for p in routing.all_paths() if len(p.switches) >= 2
        )
        failure = fail_link(topo, victim.switches[0], victim.switches[1])
        outcome = reroute_after_failure(deployer, topo, routing, failure)
        assert outcome.fully_repaired, (outcome.failed, outcome.disconnected)
        assert victim.ingress in outcome.rerouted
        combined = deployer.as_placement()
        assert verify_placement(combined).ok
        # The repaired routing avoids the dead link.
        for path in combined.instance.routing.all_paths():
            for a, b in zip(path.switches, path.switches[1:]):
                assert topo.graph.has_edge(a, b)

    def test_switch_failure_repaired(self, deployed):
        topo, routing, deployer = deployed
        # An aggregation switch on some path (fat-trees route around it).
        victim = next(
            s for p in routing.all_paths() for s in p.switches
            if topo.switch(s).layer == "aggregation"
        )
        failure = fail_switch(topo, victim)
        outcome = reroute_after_failure(deployer, topo, routing, failure)
        assert not outcome.disconnected
        combined = deployer.as_placement()
        assert verify_placement(combined).ok
        for path in combined.instance.routing.all_paths():
            assert victim not in path.switches

    def test_disconnection_reported(self):
        """On a line there is no alternative: the repair must report the
        ingress as disconnected, not fabricate a path."""
        topo = line(3, capacity=50)
        routing = Routing([Path("left0", "right0", ("s0", "s1", "s2"))])
        policies = generate_policy_set(["left0"], rules_per_policy=5, seed=1)
        instance = PlacementInstance(topo, routing, policies)
        base = RulePlacer().place(instance)
        deployer = IncrementalDeployer(base)
        failure = fail_link(topo, "s1", "s2")
        outcome = reroute_after_failure(deployer, topo, routing, failure)
        assert outcome.disconnected == ["left0"]
        assert not outcome.fully_repaired


class TestFailClosedOutcomes:
    """No surviving route must never raise or fabricate a path: the
    ingress lands in a fail-closed bucket and repair continues."""

    def _deploy(self, topo, routing, ingress):
        policies = generate_policy_set([ingress], rules_per_policy=5, seed=1)
        instance = PlacementInstance(topo, routing, policies)
        base = RulePlacer().place(instance)
        assert base.is_feasible
        return IncrementalDeployer(base)

    def test_same_switch_path_reports_disconnected(self):
        """Ingress and egress on one switch: when that switch dies, the
        'shortest path' through it must not count as a reroute."""
        from repro.net.topology import Topology

        topo = Topology()
        topo.add_switch("s0", capacity=50)
        topo.add_switch("s1", capacity=50)
        topo.add_link("s0", "s1")
        topo.add_entry_port("in0", "s0")
        topo.add_entry_port("out0", "s0")
        routing = Routing([Path("in0", "out0", ("s0",))])
        deployer = self._deploy(topo, routing, "in0")
        failure = fail_switch(topo, "s0")
        outcome = reroute_after_failure(deployer, topo, routing, failure)
        assert outcome.disconnected == ["in0"]
        assert outcome.rerouted == []
        assert "in0" in outcome.fail_closed
        assert not outcome.fully_repaired

    def test_vanished_endpoint_reports_disconnected(self):
        """A node removed from the graph outright (NodeNotFound in
        networkx) is a disconnection, not an exception."""
        topo = line(3, capacity=50)
        routing = Routing([Path("left0", "right0", ("s0", "s1", "s2"))])
        deployer = self._deploy(topo, routing, "left0")
        failure = fail_switch(topo, "s0")
        topo.graph.remove_node("s0")
        outcome = reroute_after_failure(deployer, topo, routing, failure)
        assert outcome.disconnected == ["left0"]

    def test_mixed_outcome_repairs_the_survivors(self):
        """One ingress loses its only route, another has an alternative:
        the survivor is still rerouted in the same repair run."""
        from repro.net.topology import Topology

        topo = Topology()
        for name in ("s0", "s1", "s2", "s3"):
            topo.add_switch(name, capacity=60)
        # s0-s1-s2 line plus a detour s0-s3-s2; a second ingress hangs
        # off s1 with no alternative once s1's links die.
        topo.add_link("s0", "s1")
        topo.add_link("s1", "s2")
        topo.add_link("s0", "s3")
        topo.add_link("s3", "s2")
        topo.add_entry_port("inA", "s0")
        topo.add_entry_port("inB", "s1")
        topo.add_entry_port("out", "s2")
        routing = Routing([
            Path("inA", "out", ("s0", "s1", "s2")),
            Path("inB", "out", ("s1", "s2")),
        ])
        policies = generate_policy_set(["inA", "inB"], rules_per_policy=5,
                                       seed=2)
        instance = PlacementInstance(topo, routing, policies)
        base = RulePlacer().place(instance)
        assert base.is_feasible
        deployer = IncrementalDeployer(base)
        failure = fail_switch(topo, "s1")
        outcome = reroute_after_failure(deployer, topo, routing, failure)
        assert outcome.rerouted == ["inA"]
        assert outcome.disconnected == ["inB"]
        assert outcome.fail_closed == ("inB",)
