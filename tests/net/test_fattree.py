"""Tests for the Al-Fares fat-tree generator."""

from __future__ import annotations

import pytest

from repro.net.fattree import (
    fattree,
    fattree_num_core,
    fattree_num_hosts,
    fattree_num_switches,
)


class TestFormulas:
    @pytest.mark.parametrize("k", [2, 4, 6, 8, 16])
    def test_counts(self, k):
        assert fattree_num_switches(k) == 5 * k * k // 4
        assert fattree_num_hosts(k) == k ** 3 // 4
        assert fattree_num_core(k) == (k // 2) ** 2


class TestConstruction:
    def test_invalid_arity(self):
        with pytest.raises(ValueError):
            fattree(3)
        with pytest.raises(ValueError):
            fattree(0)

    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_switch_count_matches_formula(self, k):
        topo = fattree(k)
        assert topo.num_switches() == fattree_num_switches(k)

    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_host_count_matches_formula(self, k):
        topo = fattree(k)
        assert len(topo.entry_ports) == fattree_num_hosts(k)

    @pytest.mark.parametrize("k", [4, 6])
    def test_connected(self, k):
        assert fattree(k).is_connected()

    def test_layers(self):
        topo = fattree(4)
        layers = {}
        for switch in topo.switches:
            layers[switch.layer] = layers.get(switch.layer, 0) + 1
        assert layers == {"core": 4, "aggregation": 8, "edge": 8}

    def test_switch_degrees(self):
        """Core switches connect to one agg per pod; agg/edge are k-port."""
        k = 4
        topo = fattree(k)
        for switch in topo.switches:
            if switch.layer == "core":
                assert topo.degree(switch.name) == k
            elif switch.layer == "aggregation":
                assert topo.degree(switch.name) == k  # k/2 edge + k/2 core
            else:  # edge: k/2 agg links (hosts are entry ports, not links)
                assert topo.degree(switch.name) == k // 2

    def test_entry_ports_attach_to_edge(self):
        topo = fattree(4)
        for port in topo.entry_ports:
            assert topo.switch(port.switch).layer == "edge"

    def test_hosts_per_edge_override(self):
        topo = fattree(4, hosts_per_edge=1)
        assert len(topo.entry_ports) == 8  # one per edge switch
        with pytest.raises(ValueError):
            fattree(4, hosts_per_edge=-1)

    def test_uniform_capacity_applied(self):
        topo = fattree(4, capacity=123)
        assert all(s.capacity == 123 for s in topo.switches)
