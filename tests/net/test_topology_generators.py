"""Tests for the non-fat-tree topology generators."""

from __future__ import annotations

import pytest

from repro.net.generators import leaf_spine, line, random_graph, ring, star
from repro.net.routing import ShortestPathRouter


class TestLine:
    def test_structure(self):
        topo = line(4, capacity=7)
        assert topo.num_switches() == 4
        assert topo.num_links() == 3
        assert topo.is_connected()
        assert {p.name for p in topo.entry_ports} == {"left0", "right0"}
        assert all(s.capacity == 7 for s in topo.switches)

    def test_multiple_hosts(self):
        topo = line(2, hosts_per_end=3)
        assert len(topo.entry_ports) == 6

    def test_single_switch(self):
        topo = line(1)
        assert topo.num_links() == 0
        assert topo.entry_port("left0").switch == topo.entry_port("right0").switch

    def test_validation(self):
        with pytest.raises(ValueError):
            line(0)


class TestRing:
    def test_structure(self):
        topo = ring(5)
        assert topo.num_switches() == 5
        assert topo.num_links() == 5
        assert all(topo.degree(s.name) == 2 for s in topo.switches)
        assert len(topo.entry_ports) == 5

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            ring(2)

    def test_routable(self):
        topo = ring(6)
        router = ShortestPathRouter(topo, seed=0)
        path = router.shortest_path("h0", "h3")
        assert len(path.switches) == 4  # half the ring


class TestStar:
    def test_structure(self):
        topo = star(4)
        assert topo.num_switches() == 5
        assert topo.degree("hub") == 4
        assert len(topo.entry_ports) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            star(0)

    def test_leaf_to_leaf_via_hub(self):
        topo = star(3)
        router = ShortestPathRouter(topo, seed=0)
        path = router.shortest_path("h0", "h2")
        assert path.switches == ("leaf0", "hub", "leaf2")


class TestLeafSpine:
    def test_structure(self):
        topo = leaf_spine(4, 2, hosts_per_leaf=3)
        assert topo.num_switches() == 6
        assert len(topo.entry_ports) == 12
        for l in range(4):
            assert topo.degree(f"leaf{l}") == 2
        for s in range(2):
            assert topo.degree(f"spine{s}") == 4

    def test_layers(self):
        topo = leaf_spine(2, 2)
        assert topo.switch("leaf0").layer == "leaf"
        assert topo.switch("spine1").layer == "spine"

    def test_equal_cost_paths(self):
        """Inter-leaf traffic has one shortest path per spine."""
        topo = leaf_spine(3, 4)
        router = ShortestPathRouter(topo, seed=1)
        middles = {
            router.shortest_path("h0_0", "h2_0").switches[1]
            for _ in range(40)
        }
        assert len(middles) > 1  # multiple spines exercised

    def test_validation(self):
        with pytest.raises(ValueError):
            leaf_spine(0, 1)


class TestRandomGraph:
    def test_connected_and_sized(self):
        topo = random_graph(12, degree=3, seed=5)
        assert topo.num_switches() == 12
        assert topo.is_connected()
        assert len(topo.entry_ports) == 12

    def test_deterministic(self):
        a = random_graph(10, degree=3, seed=7)
        b = random_graph(10, degree=3, seed=7)
        assert sorted(map(sorted, a.graph.edges)) == sorted(map(sorted, b.graph.edges))

    def test_host_override(self):
        topo = random_graph(6, degree=2, hosts=3, seed=1)
        assert len(topo.entry_ports) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            random_graph(1)
        with pytest.raises(ValueError):
            random_graph(4, degree=4)


class TestPlacementOnAlternativeTopologies:
    """The full engine must work beyond fat-trees."""

    @pytest.mark.parametrize("factory", [
        lambda: ring(6, capacity=30),
        lambda: star(4, capacity=30),
        lambda: leaf_spine(4, 2, capacity=30),
        lambda: random_graph(8, degree=3, capacity=30, seed=2),
    ], ids=["ring", "star", "leaf-spine", "random"])
    def test_place_and_verify(self, factory):
        from repro.core.instance import PlacementInstance
        from repro.core.placement import RulePlacer
        from repro.core.verify import verify_placement
        from repro.policy.classbench import generate_policy_set

        topo = factory()
        ports = [p.name for p in topo.entry_ports]
        router = ShortestPathRouter(topo, seed=3)
        routing = router.random_routing(6, ingresses=ports[:3])
        policies = generate_policy_set(ports[:3], rules_per_policy=8, seed=3)
        placement = RulePlacer().place(
            PlacementInstance(topo, routing, policies)
        )
        assert placement.is_feasible
        assert verify_placement(placement).ok
