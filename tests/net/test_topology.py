"""Tests for the topology substrate."""

from __future__ import annotations

import pytest

from repro.net.topology import Switch, Topology


class TestSwitch:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Switch("s", -1)


class TestConstruction:
    def test_add_switch_and_lookup(self):
        topo = Topology()
        topo.add_switch("s1", 100, layer="edge")
        assert topo.has_switch("s1")
        assert topo.switch("s1").capacity == 100
        assert topo.switch("s1").layer == "edge"
        assert "s1" in topo

    def test_duplicate_switch_rejected(self):
        topo = Topology()
        topo.add_switch("s1", 10)
        with pytest.raises(ValueError):
            topo.add_switch("s1", 20)

    def test_link_requires_known_switches(self):
        topo = Topology()
        topo.add_switch("s1", 10)
        with pytest.raises(KeyError):
            topo.add_link("s1", "s2")

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_switch("s1", 10)
        with pytest.raises(ValueError):
            topo.add_link("s1", "s1")

    def test_entry_port_validation(self):
        topo = Topology()
        topo.add_switch("s1", 10)
        topo.add_entry_port("l1", "s1")
        with pytest.raises(ValueError):
            topo.add_entry_port("l1", "s1")
        with pytest.raises(KeyError):
            topo.add_entry_port("l2", "nope")

    def test_counts_and_connectivity(self):
        topo = Topology()
        for name in ("a", "b", "c"):
            topo.add_switch(name, 10)
        topo.add_link("a", "b")
        assert topo.num_switches() == 3
        assert topo.num_links() == 1
        assert not topo.is_connected()
        topo.add_link("b", "c")
        assert topo.is_connected()

    def test_empty_topology_connected(self):
        assert Topology().is_connected()


class TestCapacities:
    def test_capacity_map_is_a_copy(self):
        topo = Topology()
        topo.add_switch("s1", 10)
        caps = topo.capacities()
        caps["s1"] = 999
        assert topo.capacity("s1") == 10

    def test_set_capacity(self):
        topo = Topology()
        topo.add_switch("s1", 10)
        topo.set_capacity("s1", 50)
        assert topo.capacity("s1") == 50
        with pytest.raises(ValueError):
            topo.set_capacity("s1", -1)

    def test_set_uniform_capacity(self):
        topo = Topology()
        topo.add_switch("s1", 10)
        topo.add_switch("s2", 20)
        topo.set_uniform_capacity(7)
        assert topo.capacity("s1") == topo.capacity("s2") == 7

    def test_neighbors_and_degree(self):
        topo = Topology()
        for name in ("a", "b", "c"):
            topo.add_switch(name, 10)
        topo.add_link("a", "b")
        topo.add_link("a", "c")
        assert topo.degree("a") == 2
        assert set(topo.neighbors("a")) == {"b", "c"}
