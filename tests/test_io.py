"""Round-trip tests for JSON serialization."""

from __future__ import annotations

import json

import pytest

from repro import io as repro_io
from repro.core.placement import PlacerConfig, RulePlacer
from repro.core.verify import verify_placement
from repro.experiments import ExperimentConfig, build_instance
from repro.milp.model import SolveStatus


@pytest.fixture(scope="module")
def instance():
    return build_instance(ExperimentConfig(
        k=4, num_paths=12, rules_per_policy=8, capacity=30,
        num_ingresses=4, seed=9, blacklist_rules=2, flow_slicing=True,
    ))


class TestInstanceRoundTrip:
    def test_topology(self, instance):
        data = repro_io.topology_to_dict(instance.topology)
        rebuilt = repro_io.topology_from_dict(data)
        assert set(rebuilt.switch_names) == set(instance.topology.switch_names)
        assert rebuilt.num_links() == instance.topology.num_links()
        assert {p.name for p in rebuilt.entry_ports} == \
               {p.name for p in instance.topology.entry_ports}
        assert rebuilt.capacities() == instance.topology.capacities()

    def test_policies(self, instance):
        data = repro_io.policies_to_dict(instance.policies)
        rebuilt = repro_io.policies_from_dict(data)
        assert set(rebuilt.ingresses) == set(instance.policies.ingresses)
        for policy in instance.policies:
            twin = rebuilt[policy.ingress]
            assert len(twin) == len(policy)
            for rule in policy.rules:
                copy = twin.rule_by_priority(rule.priority)
                assert copy.match == rule.match
                assert copy.action == rule.action
                assert copy.name == rule.name

    def test_routing_with_flows(self, instance):
        data = repro_io.routing_to_dict(instance.routing)
        rebuilt = repro_io.routing_from_dict(data)
        original = instance.routing.all_paths()
        restored = rebuilt.all_paths()
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert a.switches == b.switches
            assert a.flow == b.flow

    def test_full_instance_files(self, instance, tmp_path):
        path = tmp_path / "instance.json"
        repro_io.save_instance(instance, str(path))
        rebuilt = repro_io.load_instance(str(path))
        assert rebuilt.summary() == instance.summary()
        # Solving the rebuilt instance gives the same optimum.
        a = RulePlacer().place(instance)
        b = RulePlacer().place(rebuilt)
        assert a.objective_value == b.objective_value

    def test_schema_version_checked(self, instance):
        data = repro_io.instance_to_dict(instance)
        data["schema_version"] = 99
        with pytest.raises(ValueError):
            repro_io.instance_from_dict(data)


class TestPlacementRoundTrip:
    def test_plain(self, instance, tmp_path):
        placement = RulePlacer().place(instance)
        path = tmp_path / "placement.json"
        repro_io.save_placement(placement, str(path))
        rebuilt = repro_io.load_placement(str(path), instance)
        assert rebuilt.status is placement.status
        assert rebuilt.placed == placement.placed
        assert rebuilt.total_installed() == placement.total_installed()
        assert verify_placement(rebuilt).ok

    def test_merged_load_accounting_survives(self, instance, tmp_path):
        placement = RulePlacer(PlacerConfig(enable_merging=True)).place(instance)
        assert placement.merged, "fixture should produce active merges"
        path = tmp_path / "placement.json"
        repro_io.save_placement(placement, str(path))
        rebuilt = repro_io.load_placement(str(path), instance)
        assert rebuilt.merged == placement.merged
        # Merge-aware counting must survive (merge plan is rebuilt).
        assert rebuilt.total_installed() == placement.total_installed()
        assert rebuilt.switch_loads() == placement.switch_loads()

    def test_infeasible_round_trip(self, instance, tmp_path):
        from repro.core.placement import Placement

        placement = Placement(instance, SolveStatus.INFEASIBLE)
        path = tmp_path / "inf.json"
        repro_io.save_placement(placement, str(path))
        rebuilt = repro_io.load_placement(str(path), instance)
        assert rebuilt.status is SolveStatus.INFEASIBLE
        assert rebuilt.placed == {}

    def test_json_is_human_readable(self, instance, tmp_path):
        placement = RulePlacer().place(instance)
        path = tmp_path / "placement.json"
        repro_io.save_placement(placement, str(path))
        data = json.loads(path.read_text())
        assert data["status"] == "optimal"
        entry = data["placed"][0]
        assert {"ingress", "priority", "switches"} <= set(entry)
