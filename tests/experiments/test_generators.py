"""Tests for experiment instance generation."""

from __future__ import annotations

import pytest

from repro.experiments.generators import (
    ExperimentConfig,
    attach_flow_descriptors,
    build_instance,
)
from repro.net.fattree import fattree
from repro.net.routing import ShortestPathRouter


class TestBuildInstance:
    def test_deterministic(self):
        a = build_instance(ExperimentConfig(seed=11))
        b = build_instance(ExperimentConfig(seed=11))
        assert [p.switches for p in a.routing.all_paths()] == \
               [p.switches for p in b.routing.all_paths()]
        for pa, pb in zip(a.policies, b.policies):
            assert [(r.match, r.action) for r in pa.rules] == \
                   [(r.match, r.action) for r in pb.rules]

    def test_knobs_respected(self):
        config = ExperimentConfig(
            k=4, num_paths=24, rules_per_policy=7, capacity=33, num_ingresses=5
        )
        instance = build_instance(config)
        assert instance.routing.num_paths() == 24
        assert len(instance.policies) == 5
        assert all(len(p) == 7 for p in instance.policies)
        assert all(c == 33 for c in instance.capacities.values())
        assert instance.topology.num_switches() == 20

    def test_default_ingresses_one_per_edge(self):
        instance = build_instance(ExperimentConfig(k=4))
        assert len(instance.policies) == 8  # k=4: 8 edge switches

    def test_blacklist_rules_added(self):
        config = ExperimentConfig(rules_per_policy=10, blacklist_rules=3)
        instance = build_instance(config)
        assert all(len(p) == 13 for p in instance.policies)

    def test_flow_slicing_annotates_paths(self):
        instance = build_instance(ExperimentConfig(flow_slicing=True))
        assert all(p.flow is not None for p in instance.routing.all_paths())

    def test_describe(self):
        text = ExperimentConfig(k=6, num_paths=9, rules_per_policy=3,
                                capacity=44, seed=2).describe()
        assert text == "k=6 p=9 r=3 C=44 seed=2"


class TestFlowDescriptors:
    def test_same_egress_same_prefix(self):
        topo = fattree(4, capacity=50)
        ports = [p.name for p in topo.entry_ports]
        router = ShortestPathRouter(topo, seed=0)
        routing = router.random_routing(20, ingresses=ports[:2])
        sliced = attach_flow_descriptors(routing, seed=0)
        by_egress = {}
        for path in sliced.all_paths():
            by_egress.setdefault(path.egress, set()).add(path.flow)
        for flows in by_egress.values():
            assert len(flows) == 1

    def test_slicing_reduces_variables(self):
        dense = build_instance(ExperimentConfig(
            k=4, num_paths=32, rules_per_policy=20, seed=4
        ))
        sliced = build_instance(ExperimentConfig(
            k=4, num_paths=32, rules_per_policy=20, seed=4, flow_slicing=True
        ))
        from repro.core.ilp import build_encoding

        dense_vars = build_encoding(dense).num_placement_vars()
        sliced_vars = build_encoding(sliced).num_placement_vars()
        assert sliced_vars < dense_vars
