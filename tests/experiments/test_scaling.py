"""Tests for the analytic encoding-size model."""

from __future__ import annotations

import pytest

from repro.core.ilp import build_encoding
from repro.experiments import ExperimentConfig, build_instance
from repro.experiments.scaling import predict_encoding_size


@pytest.mark.parametrize("merging", [False, True], ids=["plain", "merged"])
@pytest.mark.parametrize("seed", [1, 2])
def test_prediction_matches_built_model(merging, seed):
    instance = build_instance(ExperimentConfig(
        k=4, num_paths=16, rules_per_policy=10, capacity=30,
        num_ingresses=6, seed=seed, blacklist_rules=2 if merging else 0,
    ))
    predicted = predict_encoding_size(instance, enable_merging=merging)
    encoding = build_encoding(instance, enable_merging=merging)
    assert predicted.variables == encoding.model.num_variables()
    assert predicted.constraints == encoding.model.num_constraints()


def test_prediction_with_slicing():
    instance = build_instance(ExperimentConfig(
        k=4, num_paths=16, rules_per_policy=10, capacity=30,
        num_ingresses=6, seed=3, flow_slicing=True,
    ))
    predicted = predict_encoding_size(instance)
    encoding = build_encoding(instance)
    assert predicted.variables == encoding.model.num_variables()
    assert predicted.constraints == encoding.model.num_constraints()


def test_paper_proportionality_claims():
    """Variables grow with rules; constraints grow with paths."""
    base = dict(k=4, capacity=150, num_ingresses=8, seed=5)
    small_r = predict_encoding_size(build_instance(
        ExperimentConfig(num_paths=16, rules_per_policy=10, **base)
    ))
    big_r = predict_encoding_size(build_instance(
        ExperimentConfig(num_paths=16, rules_per_policy=40, **base)
    ))
    assert big_r.variables > 2 * small_r.variables

    few_p = predict_encoding_size(build_instance(
        ExperimentConfig(num_paths=8, rules_per_policy=20, **base)
    ))
    many_p = predict_encoding_size(build_instance(
        ExperimentConfig(num_paths=64, rules_per_policy=20, **base)
    ))
    assert many_p.path_constraints > 4 * few_p.path_constraints


def test_summary_renders():
    instance = build_instance(ExperimentConfig(
        k=4, num_paths=8, rules_per_policy=6, num_ingresses=3, seed=1,
    ))
    text = predict_encoding_size(instance).summary()
    assert "variables" in text and "constraints" in text
