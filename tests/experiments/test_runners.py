"""Tests for the experiment runner and reporting layers."""

from __future__ import annotations

import pytest

from repro.experiments.generators import ExperimentConfig
from repro.experiments.reporting import (
    banner,
    figure_series,
    format_figure,
    format_table2_cell,
)
from repro.experiments.runners import Record, run_averaged, run_point, sweep
from repro.milp.model import SolveStatus


FAST = ExperimentConfig(k=4, num_paths=8, rules_per_policy=6, capacity=50,
                        num_ingresses=4)


class TestRunPoint:
    def test_record_fields(self):
        record = run_point(FAST, verify=True)
        assert record.status is SolveStatus.OPTIMAL
        assert record.feasible
        assert record.runtime_seconds > 0
        assert record.installed_rules is not None
        assert record.required_rules is not None
        assert record.overhead is not None
        assert record.num_variables > 0
        assert record.verified is True

    def test_infeasible_record(self):
        tight = ExperimentConfig(k=4, num_paths=8, rules_per_policy=12,
                                 capacity=0, num_ingresses=4)
        record = run_point(tight)
        assert not record.feasible
        assert record.installed_rules is None
        assert "infeasible" in record.row()

    def test_row_rendering(self):
        record = run_point(FAST)
        row = record.row()
        assert "optimal" in row
        assert "ms" in row


class TestSweeps:
    def test_run_averaged_uses_distinct_seeds(self):
        records = run_averaged(FAST, instances=3)
        assert len(records) == 3
        assert len({r.config.seed for r in records}) == 3

    def test_sweep_shapes(self):
        results = sweep(FAST, "rules_per_policy", [4, 6], instances=2)
        assert set(results) == {4, 6}
        assert all(len(records) == 2 for records in results.values())
        for value, records in results.items():
            assert all(r.config.rules_per_policy == value for r in records)


class TestReporting:
    def test_figure_series_aggregates(self):
        results = sweep(FAST, "rules_per_policy", [4, 6], instances=2)
        rows = figure_series(results)
        assert [row["x"] for row in rows] == [4, 6]
        for row in rows:
            assert row["min_ms"] <= row["mean_ms"] <= row["max_ms"]
            assert row["feasible"] == 2 and row["total"] == 2

    def test_format_figure_contains_rows(self):
        results = sweep(FAST, "rules_per_policy", [4], instances=1)
        text = format_figure("Demo", "#rules", results)
        assert "Demo" in text
        assert "#rules" in text
        assert "ms" in text

    def test_table2_cell(self):
        assert format_table2_cell(None, None) == "   -    Inf"
        cell = format_table2_cell(3500, 0.30)
        assert "3500" in cell and "30%" in cell

    def test_banner(self):
        assert "Hello" in banner("Hello")
