"""Protocol schema: content digests, the NDJSON codec, validation."""

from __future__ import annotations

import json

import pytest

from repro import io as repro_io
from repro.digest import canonical_digest
from repro.experiments.generators import ExperimentConfig, build_instance
from repro.service.protocol import (
    DeltaRequest,
    InvalidateRequest,
    MetricsRequest,
    PingRequest,
    ProtocolError,
    Response,
    ResponseStatus,
    SolveRequest,
    VerifyRequest,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)


@pytest.fixture(scope="module")
def instance():
    return build_instance(ExperimentConfig(
        k=4, num_paths=6, rules_per_policy=5, num_ingresses=2, seed=3,
    ))


class TestCanonicalDigest:
    def test_length_framing_is_injective(self):
        assert canonical_digest(["ab", "c"]) != canonical_digest(["a", "bc"])
        assert canonical_digest(["ab"]) != canonical_digest(["a", "b"])

    def test_order_matters(self):
        assert canonical_digest(["a", "b"]) != canonical_digest(["b", "a"])

    def test_deterministic_hex(self):
        first = canonical_digest(["x", "y"])
        assert first == canonical_digest(iter(["x", "y"]))
        assert len(first) == 64
        int(first, 16)  # valid hex


class TestInstanceDigest:
    def test_stable_across_rebuilds(self, instance):
        rebuilt = build_instance(ExperimentConfig(
            k=4, num_paths=6, rules_per_policy=5, num_ingresses=2, seed=3,
        ))
        assert instance.digest() == rebuilt.digest()

    def test_roundtrip_through_json_preserves_digest(self, instance):
        rebuilt = repro_io.instance_from_dict(
            json.loads(json.dumps(repro_io.instance_to_dict(instance)))
        )
        assert rebuilt.digest() == instance.digest()

    def test_sensitive_to_capacity(self, instance):
        other = build_instance(ExperimentConfig(
            k=4, num_paths=6, rules_per_policy=5, num_ingresses=2, seed=3,
            capacity=99,
        ))
        assert other.digest() != instance.digest()

    def test_sensitive_to_policies(self, instance):
        other = build_instance(ExperimentConfig(
            k=4, num_paths=6, rules_per_policy=6, num_ingresses=2, seed=3,
        ))
        assert other.digest() != instance.digest()


class TestCacheKey:
    def test_same_request_same_key(self, instance):
        assert (SolveRequest(instance).cache_key()
                == SolveRequest(instance).cache_key())

    def test_key_covers_solver_knobs(self, instance):
        base = SolveRequest(instance).cache_key()
        assert SolveRequest(instance, objective="upstream").cache_key() != base
        assert SolveRequest(instance, merging=True).cache_key() != base
        assert SolveRequest(instance, backend="portfolio").cache_key() != base

    def test_key_ignores_transport_fields(self, instance):
        # request_id, deadline, deploy_as do not change the answer.
        assert (SolveRequest(instance, request_id="a", deadline=5.0,
                             deploy_as="prod").cache_key()
                == SolveRequest(instance).cache_key())


class TestCodec:
    def test_solve_roundtrip(self, instance):
        request = SolveRequest(instance, objective="upstream", merging=True,
                               backend="portfolio", deadline=1.5,
                               deploy_as="prod", request_id="r1")
        decoded = decode_request(encode_request(request))
        assert isinstance(decoded, SolveRequest)
        assert decoded.objective == "upstream"
        assert decoded.merging is True
        assert decoded.backend == "portfolio"
        assert decoded.deadline == 1.5
        assert decoded.deploy_as == "prod"
        assert decoded.request_id == "r1"
        assert decoded.cache_key() == request.cache_key()

    def test_delta_roundtrip(self, instance):
        policy = repro_io.policy_to_dict(next(iter(instance.policies)))
        request = DeltaRequest(deployment="prod", op="modify",
                               policy=policy, request_id="d1")
        decoded = decode_request(encode_request(request))
        assert isinstance(decoded, DeltaRequest)
        assert decoded.op == "modify"
        assert decoded.policy == policy

    def test_control_plane_roundtrips(self):
        for request in (PingRequest(request_id="p"), MetricsRequest(),
                        InvalidateRequest(scope="topology")):
            decoded = decode_request(encode_request(request))
            assert type(decoded) is type(request)

    def test_verify_roundtrip(self, instance):
        request = VerifyRequest(instance, placement={"placed": []})
        decoded = decode_request(encode_request(request))
        assert isinstance(decoded, VerifyRequest)
        assert decoded.placement == {"placed": []}

    def test_response_roundtrip(self):
        response = Response(status=ResponseStatus.OK, kind="solve",
                            request_id="r1", result={"x": 1},
                            served="cache", cache_key="k", seconds=0.25)
        decoded = decode_response(encode_response(response))
        assert decoded == response
        assert decoded.ok

    def test_one_line_per_message(self, instance):
        assert "\n" not in encode_request(SolveRequest(instance))
        assert "\n" not in encode_response(Response(status="ok"))


class TestValidation:
    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request("{nope")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request("[1,2]")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request(json.dumps({"kind": "frobnicate"}))

    def test_solve_missing_instance_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request(json.dumps({"kind": "solve"}))

    def test_delta_op_validation(self):
        with pytest.raises(ProtocolError):
            DeltaRequest(deployment="d", op="teleport")
        with pytest.raises(ProtocolError):
            DeltaRequest(deployment="d", op="install", paths=[])  # no policy
        with pytest.raises(ProtocolError):
            DeltaRequest(deployment="d", op="reroute", paths=[])  # no ingress
        with pytest.raises(ProtocolError):
            DeltaRequest(deployment="d", op="remove")  # no ingress

    def test_invalidate_scope_validation(self):
        with pytest.raises(ProtocolError):
            InvalidateRequest(scope="everything")

    def test_response_missing_status_rejected(self):
        with pytest.raises(ProtocolError):
            decode_response(json.dumps({"kind": "solve"}))


class TestSessionRequest:
    def test_roundtrip(self):
        from repro.service.protocol import SessionRequest

        request = SessionRequest(deployment="prod", op="attach",
                                 backend="bnb", request_id="s1")
        decoded = decode_request(encode_request(request))
        assert isinstance(decoded, SessionRequest)
        assert decoded.deployment == "prod"
        assert decoded.op == "attach"
        assert decoded.backend == "bnb"
        assert decoded.request_id == "s1"

    def test_defaults(self):
        from repro.service.protocol import SessionRequest

        decoded = decode_request(json.dumps(
            {"kind": "session", "deployment": "prod"}))
        assert decoded.op == "status"
        assert decoded.backend == "highs"

    def test_validation(self):
        from repro.service.protocol import SessionRequest

        with pytest.raises(ProtocolError):
            SessionRequest(deployment="prod", op="explode")
        with pytest.raises(ProtocolError):
            SessionRequest(deployment="prod", backend="cplex")
        with pytest.raises(ProtocolError):
            decode_request(json.dumps({"kind": "session"}))
