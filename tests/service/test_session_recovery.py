"""Crash recovery for warm session workers.

The warm session is an optimization, never a correctness or
availability dependency: killing the worker process that holds a live
session must cost only the warm state.  The broker detects the death,
rebuilds the session cold from the authoritative deployer (which lives
in the broker, not the worker), and the next delta answers correctly
-- matching a cold-path oracle replaying the same stream.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro import io as repro_io
from repro.experiments.generators import ExperimentConfig, build_instance
from repro.net.routing import Routing, ShortestPathRouter
from repro.policy.classbench import generate_policy_set
from repro.service import PlacementService, ServiceConfig
from repro.service.protocol import (
    DeltaRequest,
    ResponseStatus,
    SessionRequest,
    SolveRequest,
)


@pytest.fixture(scope="module")
def instance():
    return build_instance(ExperimentConfig(
        k=4, num_paths=6, rules_per_policy=5, seed=2,
    ))


def _free_ingress(instance):
    ports = [p.name for p in instance.topology.entry_ports]
    used = set(instance.policies.ingresses)
    return next(p for p in ports if p not in used), ports


def _delta_requests(instance, seed=50):
    """An install plus two reroute deltas on a free ingress."""
    free, ports = _free_ingress(instance)
    policy = generate_policy_set([free], rules_per_policy=4,
                                 seed=seed)[free]
    router = ShortestPathRouter(instance.topology, seed=4)
    paths_a = repro_io.routing_to_dict(
        Routing([router.shortest_path(free, ports[0])]))
    paths_b = repro_io.routing_to_dict(
        Routing([router.shortest_path(free, ports[1])]))
    return [
        DeltaRequest(deployment="prod", op="install", ingress=free,
                     policy=repro_io.policy_to_dict(policy),
                     paths=paths_a),
        DeltaRequest(deployment="prod", op="reroute", ingress=free,
                     paths=paths_b),
        DeltaRequest(deployment="prod", op="reroute", ingress=free,
                     paths=paths_a),
    ]


def _check_against_oracle(response, oracle_response):
    assert response.ok == oracle_response.ok
    if response.ok and oracle_response.ok:
        warm, cold = response.result, oracle_response.result
        if warm["method"] == "ilp" and cold["method"] == "ilp":
            assert warm["installed_rules"] == cold["installed_rules"]


def _session_proc(service, deployment="prod"):
    worker = service.broker._deployments[deployment].session
    assert worker is not None and worker.executor == "process"
    return worker._proc


@pytest.fixture
def forked_service(instance):
    with PlacementService(ServiceConfig(executor="process")) as svc:
        if svc.pool.executor != "process":  # pragma: no cover
            pytest.skip("fork unavailable on this platform")
        solved = svc.handle(SolveRequest(instance, deploy_as="prod"),
                            timeout=120.0)
        assert solved.ok
        yield svc


@pytest.fixture
def oracle(instance):
    """Cold-path inline service replaying the same stream (no session)."""
    with PlacementService(ServiceConfig(executor="inline")) as svc:
        solved = svc.handle(SolveRequest(instance, deploy_as="prod"),
                            timeout=120.0)
        assert solved.ok
        yield svc


class TestSessionCrashRecovery:
    def test_sigkill_mid_session_rebuilds_cold(self, forked_service,
                                               oracle, instance):
        """SIGKILL the worker holding the live session; the broker
        rebuilds it cold and every subsequent delta matches the
        cold-path oracle."""
        svc = forked_service
        attached = svc.handle(SessionRequest(deployment="prod",
                                             op="attach"), timeout=30.0)
        assert attached.ok and attached.result["attached"]
        deltas = _delta_requests(instance)

        first = svc.handle(deltas[0], timeout=120.0)
        assert first.ok and first.served == "session"
        _check_against_oracle(first, oracle.handle(deltas[0],
                                                   timeout=120.0))

        # Kill the live session worker the hard way.
        proc = _session_proc(svc)
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=5.0)
        assert not proc.is_alive()

        # The next delta finds the corpse, rebuilds the session cold
        # from the authoritative deployer, and still answers.
        second = svc.handle(deltas[1], timeout=120.0)
        assert second.ok, second.error
        _check_against_oracle(second, oracle.handle(deltas[1],
                                                    timeout=120.0))
        rebuilds = svc.metrics.counter("session_rebuilds_total").value
        assert rebuilds >= 1

        # The rebuilt session keeps serving warm afterwards.
        third = svc.handle(deltas[2], timeout=120.0)
        assert third.ok and third.served == "session"
        _check_against_oracle(third, oracle.handle(deltas[2],
                                                   timeout=120.0))

        status = svc.handle(SessionRequest(deployment="prod", op="status"),
                            timeout=30.0)
        assert status.ok and status.result["attached"]

    def test_crash_during_preview_falls_back_to_pool(self, forked_service,
                                                     oracle, instance,
                                                     monkeypatch):
        """A delta_task that nukes the child mid-preview: the retry
        through a fresh (equally poisoned) session also dies, and the
        broker falls through to the per-request pool -- the request
        still gets a correct cold answer."""
        svc = forked_service
        import repro.service.workers as workers_mod

        def _crash_delta_task(deployer, request, time_limit=None):
            os._exit(43)

        # Patch BEFORE attach: the fork snapshots the poisoned module,
        # so the session child crashes on its first preview.  The
        # broker's own pool path binds the original function and is
        # unaffected.
        monkeypatch.setattr(workers_mod, "delta_task", _crash_delta_task)
        attached = svc.handle(SessionRequest(deployment="prod",
                                             op="attach"), timeout=30.0)
        assert attached.ok
        deltas = _delta_requests(instance, seed=51)

        first = svc.handle(deltas[0], timeout=120.0)
        assert first.ok, first.error
        assert first.served == "solved"  # pool path, not the session
        _check_against_oracle(first, oracle.handle(deltas[0],
                                                   timeout=120.0))
        assert svc.metrics.counter("session_rebuilds_total").value >= 2
        assert svc.metrics.counter("worker_crashes_total").value >= 1

        # Heal the module; the poisoned forks are gone, the latest
        # rebuild (made after the undo) serves warm again.
        monkeypatch.undo()
        second = svc.handle(deltas[1], timeout=120.0)
        assert second.ok, second.error
        assert second.served == "session"
        _check_against_oracle(second, oracle.handle(deltas[1],
                                                    timeout=120.0))

    def test_detach_after_crash_is_clean(self, forked_service, instance):
        svc = forked_service
        attached = svc.handle(SessionRequest(deployment="prod",
                                             op="attach"), timeout=30.0)
        assert attached.ok
        proc = _session_proc(svc)
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=5.0)

        status = svc.handle(SessionRequest(deployment="prod", op="status"),
                            timeout=30.0)
        assert status.ok and status.result["attached"] is False

        detached = svc.handle(SessionRequest(deployment="prod",
                                             op="detach"), timeout=30.0)
        assert detached.ok

    def test_unknown_deployment_session_op(self, forked_service):
        response = forked_service.handle(
            SessionRequest(deployment="nope", op="attach"), timeout=30.0)
        assert response.status == ResponseStatus.BAD_REQUEST
