"""Worker pool: isolation outcomes, timeouts, slot bounding."""

from __future__ import annotations

import os
import time

import pytest

from repro.service.workers import WorkerCrash, WorkerError, WorkerPool


def _ok_task(value):
    return {"value": value}


def _raising_task():
    raise RuntimeError("task went sideways")


def _exiting_task():
    os._exit(43)


def _sleeping_task(seconds):
    time.sleep(seconds)
    return {"slept": seconds}


class TestInlineExecutor:
    def test_payload_returned(self):
        pool = WorkerPool(executor="inline")
        assert pool.run(_ok_task, 7) == {"value": 7}

    def test_exception_maps_to_worker_error(self):
        pool = WorkerPool(executor="inline")
        with pytest.raises(WorkerError, match="task went sideways"):
            pool.run(_raising_task)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(executor="quantum")
        with pytest.raises(ValueError):
            WorkerPool(max_workers=0)


class TestProcessExecutor:
    def test_payload_returned(self):
        pool = WorkerPool(executor="process")
        assert pool.run(_ok_task, 7) == {"value": 7}

    def test_exception_maps_to_worker_error_with_traceback(self):
        pool = WorkerPool(executor="process")
        with pytest.raises(WorkerError, match="task went sideways"):
            pool.run(_raising_task)

    def test_hard_death_maps_to_worker_crash(self):
        """os._exit simulates a segfault/OOM kill: the worker dies
        without posting, and only this request fails."""
        pool = WorkerPool(executor="process")
        # Depending on timing the parent sees either the closed pipe or
        # the exit code first; both are the same hard-crash outcome.
        with pytest.raises(WorkerCrash):
            pool.run(_exiting_task)
        # The pool is not poisoned: the next request works.
        assert pool.run(_ok_task, 1) == {"value": 1}
        assert pool.live_workers == 0

    def test_timeout_terminates_straggler(self):
        pool = WorkerPool(executor="process")
        started = time.monotonic()
        with pytest.raises(TimeoutError):
            pool.run(_sleeping_task, 60.0, timeout=0.3)
        assert time.monotonic() - started < 10.0
        assert pool.live_workers == 0

    def test_slots_bound_live_workers(self):
        """max_workers is a hard bound on concurrently live workers."""
        import threading

        pool = WorkerPool(executor="process", max_workers=2)
        peaks = []

        def client():
            pool.run(_sleeping_task, 0.3)
            peaks.append(pool.live_workers)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.15)
        assert pool.live_workers <= 2
        for t in threads:
            t.join()
        assert pool.live_workers == 0
