"""The supervision ladder: revive, back off, quarantine, forgive.

Driven through a fake broker and an injected clock, so the full
backoff/quarantine policy is exercised in milliseconds of wall time
and with exact control over which sessions are alive at each tick.
"""

from __future__ import annotations

from repro.service.metrics import MetricsRegistry
from repro.service.supervisor import Supervisor, SupervisorConfig

import pytest


class FakeBroker:
    """Just enough broker for the supervisor: a health map plus
    call recording."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.health: dict = {}
        self.revived: list = []
        self.quarantined: list = []
        self.revive_result = True

    def add(self, name: str, alive: bool = True, desired: bool = True,
            quarantined: bool = False) -> None:
        self.health[name] = {"desired": desired, "attached": alive,
                             "alive": alive, "quarantined": quarantined,
                             "backend": "process", "pid": None}

    def session_health(self) -> dict:
        return {name: dict(info) for name, info in self.health.items()}

    def revive_session(self, name: str) -> bool:
        self.revived.append(name)
        if self.revive_result:
            self.health[name]["alive"] = True
            self.health[name]["attached"] = True
        return self.revive_result

    def quarantine(self, name: str) -> None:
        self.quarantined.append(name)
        self.health[name]["quarantined"] = True
        self.health[name]["alive"] = False


class Clock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def broker():
    return FakeBroker()


@pytest.fixture
def clock():
    return Clock()


def _supervisor(broker, clock, **kwargs) -> Supervisor:
    kwargs.setdefault("jitter", 0.0)  # exact delays in assertions
    return Supervisor(broker, SupervisorConfig(**kwargs), clock=clock)


class TestRevival:
    def test_healthy_sessions_left_alone(self, broker, clock):
        broker.add("prod", alive=True)
        sup = _supervisor(broker, clock)
        assert sup.tick() == {"prod": "healthy"}
        assert broker.revived == []

    def test_dead_desired_session_is_revived(self, broker, clock):
        broker.add("prod", alive=False)
        sup = _supervisor(broker, clock)
        assert sup.tick() == {"prod": "revived"}
        assert broker.revived == ["prod"]
        assert sup.history("prod")["consecutive"] == 1

    def test_undesired_and_quarantined_skipped(self, broker, clock):
        broker.add("off", alive=False, desired=False)
        broker.add("bad", alive=False, quarantined=True)
        sup = _supervisor(broker, clock)
        assert sup.tick() == {"off": "skipped", "bad": "skipped"}
        assert broker.revived == []

    def test_revival_increments_metric(self, broker, clock):
        broker.add("prod", alive=False)
        sup = _supervisor(broker, clock)
        sup.tick()
        value = broker.metrics.counter("supervisor_revivals_total").value
        assert value == 1


class TestBackoff:
    def test_consecutive_deaths_back_off_exponentially(self, broker, clock):
        broker.add("prod", alive=False)
        sup = _supervisor(broker, clock, backoff_base=1.0, backoff_cap=60.0,
                          crash_threshold=100)
        sup.tick()  # first revival, schedules next_attempt = now + 1.0
        assert sup.history("prod")["next_attempt"] == clock.now + 1.0

        broker.health["prod"]["alive"] = False  # dies again immediately
        assert sup.tick() == {"prod": "backoff"}  # still inside the delay
        clock.now += 1.1
        assert sup.tick() == {"prod": "revived"}
        # Second consecutive restart doubles the delay.
        assert sup.history("prod")["next_attempt"] == pytest.approx(
            clock.now + 2.0)

    def test_backoff_caps(self, broker, clock):
        broker.add("prod", alive=False)
        sup = _supervisor(broker, clock, backoff_base=1.0, backoff_cap=4.0,
                          crash_threshold=100, crash_window=1e9)
        for _ in range(6):
            clock.now += 1000.0
            assert sup.tick() == {"prod": "revived"}
            broker.health["prod"]["alive"] = False
        assert sup.history("prod")["next_attempt"] <= clock.now + 4.0

    def test_sustained_health_forgives_history(self, broker, clock):
        broker.add("prod", alive=False)
        sup = _supervisor(broker, clock, crash_window=10.0)
        sup.tick()
        assert sup.history("prod")["consecutive"] == 1
        # Alive and past the crash window: history resets.
        clock.now += 11.0
        assert sup.tick() == {"prod": "healthy"}
        assert sup.history("prod")["consecutive"] == 0

    def test_jitter_is_deterministic_and_bounded(self, broker, clock):
        broker.add("prod", alive=False)
        sup = _supervisor(broker, clock, jitter=0.25)
        factors = {sup._jitter_factor("prod", attempt)
                   for attempt in range(1, 6)}
        assert all(0.75 <= f <= 1.25 for f in factors)
        assert len(factors) > 1  # varies by attempt
        again = _supervisor(broker, clock, jitter=0.25)
        assert again._jitter_factor("prod", 1) == sup._jitter_factor(
            "prod", 1)


class TestQuarantine:
    def test_crash_loop_is_quarantined(self, broker, clock):
        broker.add("prod", alive=False)
        sup = _supervisor(broker, clock, backoff_base=0.001,
                          backoff_cap=0.001, crash_threshold=3,
                          crash_window=1e9)
        actions = []
        for _ in range(5):
            actions.append(sup.tick()["prod"])
            broker.health["prod"]["alive"] = False
            clock.now += 1.0
        assert actions[:3] == ["revived", "revived", "revived"]
        assert "quarantined" in actions
        assert broker.quarantined == ["prod"]
        counter = broker.metrics.counter("supervisor_quarantines_total")
        assert counter.value == 1

    def test_slow_crashes_outside_window_never_quarantine(self, broker,
                                                          clock):
        broker.add("prod", alive=False)
        sup = _supervisor(broker, clock, backoff_base=0.001,
                          backoff_cap=0.001, crash_threshold=3,
                          crash_window=5.0)
        for _ in range(10):
            assert sup.tick()["prod"] == "revived"
            broker.health["prod"]["alive"] = False
            clock.now += 6.0  # each crash falls out of the window
        assert broker.quarantined == []

    def test_quarantined_stays_skipped(self, broker, clock):
        broker.add("prod", alive=False)
        sup = _supervisor(broker, clock, backoff_base=0.001,
                          backoff_cap=0.001, crash_threshold=1,
                          crash_window=1e9)
        sup.tick()
        broker.health["prod"]["alive"] = False
        clock.now += 1.0
        assert sup.tick() == {"prod": "quarantined"}
        clock.now += 100.0
        assert sup.tick() == {"prod": "skipped"}
        assert broker.revived == ["prod"]  # no further forks


class TestHousekeeping:
    def test_vanished_deployment_forgotten(self, broker, clock):
        broker.add("prod", alive=False)
        sup = _supervisor(broker, clock)
        sup.tick()
        assert sup.history("prod")["consecutive"] == 1
        del broker.health["prod"]
        sup.tick()
        assert sup.history("prod")["consecutive"] == 0

    def test_start_stop_idempotent(self, broker, clock):
        sup = _supervisor(broker, clock, poll_interval=0.01)
        sup.start()
        sup.start()
        sup.stop()
        sup.stop()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(poll_interval=0)
        with pytest.raises(ValueError):
            SupervisorConfig(backoff_base=0)
        with pytest.raises(ValueError):
            SupervisorConfig(backoff_base=2.0, backoff_cap=1.0)
        with pytest.raises(ValueError):
            SupervisorConfig(jitter=1.5)
        with pytest.raises(ValueError):
            SupervisorConfig(crash_threshold=0)
        with pytest.raises(ValueError):
            SupervisorConfig(crash_window=0)
