"""Service-suite hardening: these tests fork workers and run real
daemons; a wedged child or a deadlocked teardown otherwise dies
silently under pytest's timeout.  With faulthandler armed, any fatal
signal (SIGSEGV, SIGABRT, stuck-process SIGTERM) dumps every thread's
stack to stderr before the process dies."""

import faulthandler

faulthandler.enable()
