"""Result cache: LRU bounds, TTL, epoch invalidation, counters."""

from __future__ import annotations

import pytest

from repro.service.cache import ResultCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBasics:
    def test_get_put_roundtrip(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", {"answer": 42})
        assert cache.get("k") == {"answer": 42}
        assert "k" in cache
        assert len(cache) == 1

    def test_put_replaces(self):
        cache = ResultCache()
        cache.put("k", {"v": 1})
        cache.put("k", {"v": 2})
        assert cache.get("k") == {"v": 2}
        assert len(cache) == 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)
        with pytest.raises(ValueError):
            ResultCache(ttl=0)


class TestLRU:
    def test_entry_bound_evicts_least_recent(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.get("a")            # refresh a: b is now LRU
        cache.put("c", {"v": 3})
        assert cache.get("a") is not None
        assert cache.get("b") is None
        assert cache.get("c") is not None
        assert cache.stats().evictions == 1

    def test_byte_bound_evicts(self):
        cache = ResultCache(max_entries=100, sizer=lambda _p: 10,
                            max_bytes=25)
        cache.put("a", {})
        cache.put("b", {})
        cache.put("c", {})        # 30 bytes > 25: "a" goes
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert cache.stats().bytes == 20

    def test_oversized_payload_never_sticks(self):
        cache = ResultCache(sizer=lambda _p: 100, max_bytes=50)
        cache.put("big", {})
        assert cache.get("big") is None
        assert len(cache) == 0

    def test_contains_does_not_touch_lru_or_counters(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {})
        cache.put("b", {})
        assert "a" in cache       # must NOT refresh "a"
        cache.put("c", {})        # evicts "a" (still LRU)
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 1


class TestTTL:
    def test_expired_entry_is_a_miss(self):
        clock = FakeClock()
        cache = ResultCache(ttl=10.0, clock=clock)
        cache.put("k", {"v": 1})
        clock.advance(9.9)
        assert cache.get("k") == {"v": 1}
        clock.advance(0.2)
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.entries == 0

    def test_purge_stale_sweeps_expired(self):
        clock = FakeClock()
        cache = ResultCache(ttl=5.0, clock=clock)
        cache.put("a", {})
        clock.advance(6.0)
        cache.put("b", {})
        assert cache.purge_stale() == 1
        assert "b" in cache


class TestEpochs:
    def test_bump_epoch_invalidates_older_entries(self):
        cache = ResultCache()
        cache.put("k", {"v": 1})
        cache.bump_epoch("topology")
        assert cache.get("k") is None
        assert cache.stats().invalidations == 1
        # Entries stored after the bump are served normally.
        cache.put("k", {"v": 2})
        assert cache.get("k") == {"v": 2}

    def test_scopes_are_independent(self):
        cache = ResultCache()
        assert cache.epochs() == {"topology": 0, "policy": 0}
        cache.bump_epoch("policy")
        assert cache.epochs() == {"topology": 0, "policy": 1}
        cache.bump_epoch("all")
        assert cache.epochs() == {"topology": 1, "policy": 2}

    def test_unknown_scope_rejected(self):
        with pytest.raises(ValueError):
            ResultCache().bump_epoch("vibes")

    def test_purge_stale_sweeps_old_epochs(self):
        cache = ResultCache()
        cache.put("a", {})
        cache.put("b", {})
        cache.bump_epoch()
        cache.put("c", {})
        assert cache.purge_stale() == 2
        assert len(cache) == 1


class TestStats:
    def test_hit_rate(self):
        cache = ResultCache()
        cache.put("k", {})
        cache.get("k")
        cache.get("k")
        cache.get("missing")
        stats = cache.stats()
        assert stats.hits == 2 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert stats.as_dict()["hit_rate"] == pytest.approx(2 / 3)

    def test_explicit_invalidate_and_clear(self):
        cache = ResultCache()
        cache.put("a", {})
        cache.put("b", {})
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().invalidations == 2
        assert cache.stats().bytes == 0
