"""The resilient client and the server's graceful drain.

Two promises under test, and their interaction:

* the client rides out connection loss and daemon restarts by
  reconnecting and retrying with the same ``request_id`` -- a commit
  acked after a retry is the *original* commit, replayed, never a
  double-apply;
* ``ServiceServer.shutdown(drain=True)`` acks every admitted commit
  before the process exits, and every one of those acks is durable:
  no acked-but-lost commits across the restart.
"""

from __future__ import annotations

import threading

import pytest

from repro import io as repro_io
from repro.experiments.generators import ExperimentConfig, build_instance
from repro.net.routing import Routing, ShortestPathRouter
from repro.policy.classbench import generate_policy_set
from repro.service import (
    PlacementService,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    ServiceUnavailable,
)
from repro.service.protocol import (
    DeltaRequest,
    PingRequest,
    SessionRequest,
    SolveRequest,
)


@pytest.fixture(scope="module")
def instance():
    return build_instance(ExperimentConfig(
        k=4, num_paths=6, rules_per_policy=5, seed=2,
    ))


def _install_request(instance, seed=70, request_id=None):
    ports = [p.name for p in instance.topology.entry_ports]
    used = set(instance.policies.ingresses)
    free = next(p for p in ports if p not in used)
    policy = generate_policy_set([free], rules_per_policy=4,
                                 seed=seed)[free]
    router = ShortestPathRouter(instance.topology, seed=4)
    paths = repro_io.routing_to_dict(
        Routing([router.shortest_path(free, ports[0])]))
    return DeltaRequest(deployment="prod", op="install", ingress=free,
                        policy=repro_io.policy_to_dict(policy),
                        paths=paths, request_id=request_id), free


def _reroutes(instance, free, count, start=0):
    ports = [p.name for p in instance.topology.entry_ports]
    router = ShortestPathRouter(instance.topology, seed=4)
    requests = []
    for index in range(count):
        egress = ports[(start + index) % len(ports)]
        if egress == free:
            egress = ports[(start + index + 1) % len(ports)]
        paths = repro_io.routing_to_dict(
            Routing([router.shortest_path(free, egress)]))
        requests.append(DeltaRequest(
            deployment="prod", op="reroute", ingress=free, paths=paths,
            request_id=f"rr-{start + index}"))
    return requests


@pytest.fixture
def served(instance, tmp_path):
    """A journaled daemon on TCP with ``prod`` deployed."""
    service = PlacementService(ServiceConfig(
        executor="inline", journal_dir=str(tmp_path / "wal"),
        durability="flush", supervise=False))
    solved = service.handle(SolveRequest(instance, deploy_as="prod"),
                            timeout=120.0)
    assert solved.ok
    server = ServiceServer(service)
    server.start()
    yield server, service, str(tmp_path / "wal")
    server.shutdown(drain=False)


class TestClientBasics:
    def test_ping_health_ready(self, served):
        server, _service, _ = served
        with ServiceClient(port=server.port) as client:
            assert client.ping().ok
            health = client.health(deep=True)
            assert health.ok and health.result["healthy"]
            assert "prod" in health.result["state_digests"]
            ready = client.ready()
            assert ready.ok and ready.result["ready"]

    def test_stamps_request_id_once(self, served):
        server, _service, _ = served
        with ServiceClient(port=server.port) as client:
            request = PingRequest()
            assert request.request_id is None
            client.call(request)
            first_id = request.request_id
            assert first_id and first_id.startswith("cli-")
            client.call(request)
            assert request.request_id == first_id

    def test_unreachable_raises_service_unavailable(self):
        client = ServiceClient(port=1, retries=1, backoff_base=0.01,
                               connect_timeout=0.2)
        with pytest.raises(ServiceUnavailable):
            client.ping()

    def test_wait_ready_times_out_cleanly(self):
        client = ServiceClient(port=1, retries=0, backoff_base=0.01,
                               connect_timeout=0.1)
        with pytest.raises(ServiceUnavailable):
            client.wait_ready(timeout=0.5, interval=0.05)


class TestReconnectAndReplay:
    def test_retry_same_request_id_is_replay_not_reapply(self, served,
                                                         instance):
        server, service, _ = served
        with ServiceClient(port=server.port) as client:
            request, _free = _install_request(instance, request_id="once")
            first = client.call(request, timeout=60.0)
            assert first.ok and first.served != "replay"
            installed = first.result["total_installed"]
            again = client.call(request, timeout=60.0)
            assert again.ok and again.served == "replay"
            assert service.broker.deployment_digest("prod") \
                == first.result["state_digest"]
            assert again.result.get("total_installed",
                                    installed) == installed

    def test_client_survives_daemon_restart(self, served, instance):
        """Kill the daemon between two requests; the client reconnects
        to its replacement (same port, same journal) and the retried
        commit replays instead of double-applying."""
        server, service, journal_dir = served
        port = server.port
        client = ServiceClient(port=port, retries=8, backoff_base=0.05)
        request, _free = _install_request(instance, request_id="ride-out")
        first = client.call(request, timeout=60.0)
        assert first.ok

        server.shutdown(drain=True)  # daemon gone; acked state durable

        revived = PlacementService(ServiceConfig(
            executor="inline", journal_dir=journal_dir,
            durability="flush", supervise=False))
        assert revived.last_recovery["deployments"] == 1
        replacement = ServiceServer(revived, port=port)
        replacement.start()
        try:
            again = client.call(request, timeout=60.0)
            assert again.ok and again.served == "replay"
            assert client.reconnects >= 0  # telemetry exists
            assert revived.broker.deployment_digest("prod") \
                == first.result["state_digest"]
        finally:
            client.close()
            replacement.shutdown(drain=False)


class TestDrain:
    def test_drain_refuses_new_work(self, served):
        server, service, _ = served
        service.broker._draining = True
        try:
            with ServiceClient(port=server.port) as client:
                ready = client.ready()
                assert ready.ok and not ready.result["ready"]
                assert ready.result["draining"]
        finally:
            service.broker._draining = False

    def test_no_acked_but_lost_commits_across_drain(self, served,
                                                    instance):
        """The regression the journal exists for: fire commits from
        client threads, drain the server mid-stream, then restart from
        the journal -- every commit a client saw acked must be present
        (dedup summary + digest) in the recovered daemon."""
        server, service, journal_dir = served
        install, free = _install_request(instance, request_id="drain-0")
        with ServiceClient(port=server.port) as client:
            assert client.call(install, timeout=60.0).ok
        requests = _reroutes(instance, free, 8)
        acked = []
        acked_lock = threading.Lock()

        def fire(request):
            try:
                with ServiceClient(port=server.port, retries=0) as cli:
                    response = cli.call(request, timeout=60.0)
            except (ServiceUnavailable, OSError):
                return  # refused/cut: fail-closed is allowed
            if response.ok:
                with acked_lock:
                    acked.append((request.request_id,
                                  response.result["state_digest"]))

        threads = [threading.Thread(target=fire, args=(request,))
                   for request in requests]
        for thread in threads[:4]:
            thread.start()
        drainer = threading.Thread(
            target=lambda: server.shutdown(drain=True, drain_timeout=30.0))
        drainer.start()
        for thread in threads[4:]:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        drainer.join(timeout=60.0)
        assert not drainer.is_alive()
        assert acked, "drain shed every request; nothing exercised"

        revived = PlacementService(ServiceConfig(
            executor="inline", journal_dir=journal_dir,
            durability="flush", supervise=False))
        try:
            for request_id, _digest in acked:
                summary = revived.broker.applied_summary(request_id)
                assert summary is not None, \
                    f"acked commit {request_id} lost across drain"
            # The final acked digest is the recovered digest: deltas on
            # one deployment serialize, so the last ack wins.
            final_digests = {d for _rid, d in acked}
            assert revived.broker.deployment_digest("prod") \
                in final_digests
        finally:
            revived.close()
