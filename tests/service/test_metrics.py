"""Metrics instruments: counters, gauges, histograms, exports."""

from __future__ import annotations

import json
import threading

import pytest

from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_monotone(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_thread_safety(self):
        counter = Counter("c")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4


class TestHistogram:
    def test_quantiles_nearest_rank(self):
        hist = Histogram("h")
        for value in range(1, 101):   # 1..100
            hist.observe(float(value))
        assert hist.quantile(0.5) == pytest.approx(50.0, abs=1.0)
        assert hist.quantile(0.95) == pytest.approx(95.0, abs=1.0)
        assert hist.quantile(0.99) == pytest.approx(99.0, abs=1.0)
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 100.0

    def test_empty_quantile_is_none(self):
        assert Histogram("h").quantile(0.5) is None
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_window_bounds_memory_but_not_count(self):
        hist = Histogram("h", window=10)
        for value in range(100):
            hist.observe(float(value))
        assert hist.count == 100
        assert hist.sum == pytest.approx(sum(range(100)))
        # Quantiles reflect only the recent window (90..99).
        assert hist.quantile(0.0) == 90.0

    def test_summary_shape(self):
        hist = Histogram("h")
        hist.observe(2.0)
        hist.observe(4.0)
        summary = hist.summary()
        assert summary["count"] == 2
        assert summary["mean"] == pytest.approx(3.0)
        assert {"p50", "p95", "p99"} <= set(summary)


class TestRegistry:
    def test_factories_are_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_cross_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_is_json_able(self):
        registry = MetricsRegistry()
        registry.counter("reqs").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("lat").observe(0.25)
        snapshot = registry.snapshot()
        json.dumps(snapshot)
        assert snapshot["counters"]["reqs"] == 3
        assert snapshot["gauges"]["depth"] == 2
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", "requests served").inc(7)
        registry.gauge("queue_depth").set(3)
        hist = registry.histogram("latency_seconds", "request latency")
        hist.observe(0.5)
        text = registry.render_prometheus()
        assert "# TYPE reqs_total counter" in text
        assert "# HELP reqs_total requests served" in text
        assert "reqs_total 7" in text
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 3" in text
        assert "# TYPE latency_seconds summary" in text
        assert 'latency_seconds{quantile="0.95"} 0.5' in text
        assert "latency_seconds_count 1" in text
        assert text.endswith("\n")
