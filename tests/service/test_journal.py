"""Edge cases of the write-ahead journal.

The replay rule under test: accept the longest valid chained prefix,
tolerate damage only when it is confined to the tail (a torn write),
and fail closed on anything that smells like mid-log corruption --
a record that fails its chain hash with parseable records after it.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.service.journal import (
    GENESIS,
    Journal,
    JournalCorruption,
    JournalRecord,
    record_chain,
)


def _open(tmp_path, **kwargs) -> Journal:
    kwargs.setdefault("durability", "flush")
    journal = Journal(str(tmp_path), **kwargs)
    journal.recover()
    return journal


def _commit_n(journal: Journal, n: int, start: int = 0) -> None:
    for index in range(start, start + n):
        journal.commit("op", {"index": index})


class TestRoundtrip:
    def test_empty_directory_recovers_empty(self, tmp_path):
        with _open(tmp_path) as journal:
            assert journal.seq == 0

    def test_commit_then_recover_replays_in_order(self, tmp_path):
        with _open(tmp_path) as journal:
            _commit_n(journal, 5)
            assert journal.seq == 5
        fresh = Journal(str(tmp_path), durability="flush")
        state = fresh.recover()
        fresh.close()
        assert [r.data["index"] for r in state.records] == [0, 1, 2, 3, 4]
        assert state.seq == 5
        assert state.truncated_tail_bytes == 0

    def test_chain_links_from_genesis(self, tmp_path):
        with _open(tmp_path) as journal:
            journal.commit("op", {"x": 1})
        fresh = Journal(str(tmp_path), durability="flush")
        state = fresh.recover()
        fresh.close()
        (record,) = state.records
        assert record.chain == record_chain(GENESIS, 1, "op", {"x": 1})

    def test_appends_continue_the_chain_after_recovery(self, tmp_path):
        with _open(tmp_path) as journal:
            _commit_n(journal, 3)
        with _open(tmp_path) as journal:
            journal.commit("op", {"index": 3})
            assert journal.seq == 4
        fresh = Journal(str(tmp_path), durability="flush")
        state = fresh.recover()
        fresh.close()
        assert [r.seq for r in state.records] == [1, 2, 3, 4]

    def test_apply_runs_exactly_once_per_commit(self, tmp_path):
        applied = []
        with _open(tmp_path) as journal:
            journal.commit("op", {"x": 1}, apply=lambda: applied.append(1))
        assert applied == [1]


class TestTornTail:
    def test_torn_final_record_is_truncated_not_fatal(self, tmp_path):
        with _open(tmp_path) as journal:
            _commit_n(journal, 4)
            tail = journal.tail_path()
        with open(tail, "ab") as handle:
            handle.write(b'{"v":1,"seq":5,"kind":"op","da')  # torn write
        fresh = Journal(str(tmp_path), durability="flush")
        state = fresh.recover()
        assert [r.seq for r in state.records] == [1, 2, 3, 4]
        assert state.truncated_tail_bytes > 0
        # The journal is positioned to append seq 5 cleanly.
        assert fresh.commit("op", {"index": 4}) == 5
        fresh.close()

    def test_garbage_tail_is_truncated(self, tmp_path):
        with _open(tmp_path) as journal:
            _commit_n(journal, 3)
            tail = journal.tail_path()
        with open(tail, "ab") as handle:
            handle.write(os.urandom(17))
        fresh = Journal(str(tmp_path), durability="flush")
        state = fresh.recover()
        fresh.close()
        assert state.seq == 3

    def test_recovery_after_truncation_is_stable(self, tmp_path):
        """Recovering a once-truncated journal again finds a clean log."""
        with _open(tmp_path) as journal:
            _commit_n(journal, 3)
            tail = journal.tail_path()
        with open(tail, "ab") as handle:
            handle.write(b"not json")
        first = Journal(str(tmp_path), durability="flush")
        state_a = first.recover()
        first.close()
        second = Journal(str(tmp_path), durability="flush")
        state_b = second.recover()
        second.close()
        assert state_a.truncated_tail_bytes > 0
        assert state_b.truncated_tail_bytes == 0
        assert state_a.seq == state_b.seq == 3


class TestCorruption:
    def test_chain_hash_mismatch_fails_closed(self, tmp_path):
        with _open(tmp_path) as journal:
            _commit_n(journal, 4)
            tail = journal.tail_path()
        with open(tail, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        # Flip a data bit mid-log; the record still parses, its chain
        # hash no longer matches, and valid records follow it.
        doctored = json.loads(lines[1])
        doctored["data"]["index"] = 999
        lines[1] = json.dumps(doctored, separators=(",", ":"),
                              sort_keys=True)
        with open(tail, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        fresh = Journal(str(tmp_path), durability="flush")
        with pytest.raises(JournalCorruption):
            fresh.recover()

    def test_mid_log_garbage_fails_closed(self, tmp_path):
        with _open(tmp_path) as journal:
            _commit_n(journal, 4)
            tail = journal.tail_path()
        with open(tail, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        lines[1] = "XXXX garbage XXXX"
        with open(tail, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        fresh = Journal(str(tmp_path), durability="flush")
        with pytest.raises(JournalCorruption):
            fresh.recover()

    def test_sequence_gap_fails_closed(self, tmp_path):
        with _open(tmp_path) as journal:
            _commit_n(journal, 4)
            tail = journal.tail_path()
        with open(tail, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        del lines[1]  # drop seq 2 entirely
        with open(tail, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        fresh = Journal(str(tmp_path), durability="flush")
        with pytest.raises(JournalCorruption):
            fresh.recover()


class TestDuplicates:
    def test_duplicated_final_frame_is_skipped(self, tmp_path):
        """A doubled last line (retried write) replays idempotently."""
        with _open(tmp_path) as journal:
            _commit_n(journal, 3)
            tail = journal.tail_path()
        with open(tail, "rb") as handle:
            last = handle.read().splitlines(keepends=True)[-1]
        with open(tail, "ab") as handle:
            handle.write(last)
        fresh = Journal(str(tmp_path), durability="flush")
        state = fresh.recover()
        fresh.close()
        assert [r.seq for r in state.records] == [1, 2, 3]
        assert state.duplicate_records == 1


class TestSnapshots:
    @staticmethod
    def _state_fn(journal: Journal, applied: list):
        def fn():
            return {"applied": list(applied)}
        return fn

    def test_snapshot_plus_tail_equals_full_replay(self, tmp_path):
        """Recovery from snapshot+tail reconstructs exactly the state a
        full-log replay would: snapshot covers records 1..s, the tail
        holds s+1..n, nothing overlaps or goes missing."""
        applied: list = []
        with _open(tmp_path, snapshot_every=4) as journal:
            for index in range(10):
                journal.commit("op", {"index": index},
                               apply=lambda i=index: applied.append(i))
                journal.maybe_snapshot(self._state_fn(journal, applied))
        fresh = Journal(str(tmp_path), durability="flush")
        state = fresh.recover()
        fresh.close()
        assert state.snapshot is not None
        recovered = list(state.snapshot["applied"])
        for record in state.records:
            recovered.append(record.data["index"])
        assert recovered == list(range(10))
        assert state.seq == 10

    def test_snapshot_compacts_old_segments(self, tmp_path):
        applied: list = []
        with _open(tmp_path, snapshot_every=2) as journal:
            for index in range(12):
                journal.commit("op", {"index": index},
                               apply=lambda i=index: applied.append(i))
                journal.maybe_snapshot(self._state_fn(journal, applied))
            names = sorted(os.listdir(str(tmp_path)))
        segments = [n for n in names if n.startswith("wal-")]
        snapshots = [n for n in names if n.startswith("snapshot-")]
        # GC keeps the live segment, one older generation, and at most
        # two snapshots -- not one file per snapshot interval.
        assert len(snapshots) <= 2
        assert len(segments) <= 3

    def test_corrupt_newest_snapshot_falls_back(self, tmp_path):
        """A damaged newest snapshot is skipped; the kept older
        generation plus segments still recovers the full history."""
        applied: list = []
        with _open(tmp_path, snapshot_every=3) as journal:
            for index in range(9):
                journal.commit("op", {"index": index},
                               apply=lambda i=index: applied.append(i))
                journal.maybe_snapshot(self._state_fn(journal, applied))
        snapshots = sorted(n for n in os.listdir(str(tmp_path))
                           if n.startswith("snapshot-"))
        assert snapshots
        with open(os.path.join(str(tmp_path), snapshots[-1]), "w") as handle:
            handle.write("{ not json")
        fresh = Journal(str(tmp_path), durability="flush")
        state = fresh.recover()
        fresh.close()
        assert state.skipped_snapshots == 1
        recovered = list((state.snapshot or {}).get("applied", []))
        recovered.extend(r.data["index"] for r in state.records)
        assert recovered == list(range(9))


class TestDurabilityModes:
    @pytest.mark.parametrize("durability", ["fsync", "flush", "none"])
    def test_all_modes_roundtrip(self, tmp_path, durability):
        directory = tmp_path / durability
        journal = Journal(str(directory), durability=durability)
        journal.recover()
        _commit_n(journal, 3)
        journal.close()
        fresh = Journal(str(directory), durability=durability)
        state = fresh.recover()
        fresh.close()
        assert state.seq == 3

    def test_lag_reports_synced_watermark(self, tmp_path):
        with _open(tmp_path) as journal:
            _commit_n(journal, 2)
            lag = journal.lag()
        assert lag["seq"] == 2
        assert lag["lag_records"] == 0  # flush mode acks synchronously
        assert lag["records_since_snapshot"] == 2

    def test_reject_unknown_durability(self, tmp_path):
        with pytest.raises(ValueError):
            Journal(str(tmp_path), durability="hope")

    def test_commit_before_recover_rejected(self, tmp_path):
        journal = Journal(str(tmp_path), durability="flush")
        with pytest.raises(RuntimeError):
            journal.commit("op", {})
        journal.close()

    def test_record_line_shape(self):
        record = JournalRecord(7, "op", {"a": 1}, "abc")
        payload = json.loads(record.to_line())
        assert payload == {"v": 1, "seq": 7, "kind": "op",
                           "data": {"a": 1}, "chain": "abc"}
