"""Broker serving policy: caching, coalescing, shedding, priorities,
deadlines, and worker-failure mapping -- exercised against a stub pool
whose blocking and failures are fully controlled by the test."""

from __future__ import annotations

import threading
import time

import pytest

from repro.experiments.generators import ExperimentConfig, build_instance
from repro.service.broker import Broker
from repro.service.cache import ResultCache
from repro.service.metrics import MetricsRegistry
from repro.service.protocol import (
    DeltaRequest,
    ResponseStatus,
    SolveRequest,
    VerifyRequest,
)
from repro.service.workers import WorkerCrash, WorkerError


class StubPool:
    """A WorkerPool stand-in: blockable gate, scriptable failures."""

    executor = "stub"

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.gate.set()
        self.calls = []
        self.fail_with = None
        self.started = threading.Semaphore(0)

    def run(self, task, *args, timeout=None):
        self.calls.append(task.__name__)
        self.started.release()
        assert self.gate.wait(10.0), "test gate never opened"
        if self.fail_with is not None:
            raise self.fail_with
        if task.__name__ == "solve_task":
            return {"placement": {"status": "optimal", "placed": []},
                    "feasible": True, "objective": 1.0,
                    "installed_rules": 3, "summary": "stub"}
        if task.__name__ == "verify_task":
            return {"ok": True, "errors": [],
                    "paths_checked": 0, "switches_checked": 0}
        raise AssertionError(f"unexpected task {task.__name__}")


@pytest.fixture(scope="module")
def instance():
    return build_instance(ExperimentConfig(
        k=4, num_paths=4, rules_per_policy=4, num_ingresses=2, seed=1,
    ))


@pytest.fixture
def make_broker():
    created = []

    def factory(**kwargs):
        pool = StubPool()
        broker = Broker(pool, cache=ResultCache(),
                        metrics=MetricsRegistry(), **kwargs)
        created.append((broker, pool))
        return broker, pool

    yield factory
    for broker, pool in created:
        pool.gate.set()
        broker.close()


def _verify(instance, request_id=None, deadline=None):
    return VerifyRequest(instance, placement={"placed": []},
                         request_id=request_id, deadline=deadline)


class TestCaching:
    def test_second_identical_solve_served_from_cache(self, make_broker,
                                                      instance):
        broker, pool = make_broker()
        first = broker.submit(SolveRequest(instance)).result(10.0)
        assert first.ok and first.served == "solved"
        second = broker.submit(SolveRequest(instance)).result(10.0)
        assert second.ok and second.served == "cache"
        assert second.result == first.result
        assert pool.calls.count("solve_task") == 1
        assert broker.metrics.counter("solves_started_total").value == 1
        assert broker.cache.stats().hits == 1

    def test_epoch_bump_forces_resolve(self, make_broker, instance):
        broker, pool = make_broker()
        broker.submit(SolveRequest(instance)).result(10.0)
        broker.cache.bump_epoch("topology")
        again = broker.submit(SolveRequest(instance)).result(10.0)
        assert again.served == "solved"
        assert pool.calls.count("solve_task") == 2


class TestCoalescing:
    def test_identical_inflight_requests_share_one_solve(self, make_broker,
                                                         instance):
        broker, pool = make_broker(dispatchers=1)
        pool.gate.clear()
        leader = broker.submit(SolveRequest(instance, request_id="lead"))
        assert pool.started.acquire(timeout=10.0)   # solving, not queued
        joiner = broker.submit(SolveRequest(instance, request_id="join"))
        assert not joiner.done
        assert broker.metrics.counter("coalesced_total").value == 1
        pool.gate.set()
        lead_response = leader.result(10.0)
        join_response = joiner.result(10.0)
        assert lead_response.served == "solved"
        assert join_response.served == "coalesced"
        assert join_response.result == lead_response.result
        assert pool.calls.count("solve_task") == 1

    def test_different_digests_do_not_coalesce(self, make_broker, instance):
        broker, pool = make_broker()
        a = broker.submit(SolveRequest(instance)).result(10.0)
        b = broker.submit(SolveRequest(instance,
                                       objective="upstream")).result(10.0)
        assert a.served == "solved" and b.served == "solved"
        assert pool.calls.count("solve_task") == 2


class TestAdmission:
    def test_queue_bound_sheds_overloaded_without_blocking(self, make_broker,
                                                           instance):
        broker, pool = make_broker(dispatchers=1, max_queue=1)
        pool.gate.clear()
        executing = broker.submit(_verify(instance, "executing"))
        assert pool.started.acquire(timeout=10.0)   # occupies the dispatcher
        queued = broker.submit(_verify(instance, "queued"))
        started = time.monotonic()
        shed = broker.submit(_verify(instance, "shed"))
        elapsed = time.monotonic() - started
        assert elapsed < 1.0, "submit must never block"
        assert shed.done
        response = shed.result(0.0)
        assert response.status == ResponseStatus.OVERLOADED
        assert broker.metrics.counter("shed_total").value == 1
        # The shed request did not wedge anything: the rest complete.
        pool.gate.set()
        assert executing.result(10.0).ok
        assert queued.result(10.0).ok

    def test_submit_after_close_is_answered_error(self, make_broker,
                                                  instance):
        broker, _pool = make_broker()
        broker.close()
        response = broker.submit(_verify(instance)).result(0.0)
        assert response.status == ResponseStatus.ERROR
        assert "shutting down" in response.error

    def test_close_resolves_queued_requests(self, make_broker, instance):
        broker, pool = make_broker(dispatchers=1)
        pool.gate.clear()
        executing = broker.submit(_verify(instance))
        assert pool.started.acquire(timeout=10.0)
        queued = broker.submit(_verify(instance))
        pool.gate.set()           # let the dispatcher drain for close()
        broker.close()
        assert queued.done
        assert queued.result(0.0).status in (ResponseStatus.OK,
                                             ResponseStatus.ERROR)
        assert executing.result(10.0).ok


class TestPriorities:
    def test_deltas_and_verifies_preempt_queued_solves(self, make_broker,
                                                       instance):
        broker, pool = make_broker(dispatchers=1)
        pool.gate.clear()
        blocker = broker.submit(SolveRequest(instance, request_id="blk"))
        assert pool.started.acquire(timeout=10.0)
        solve = broker.submit(SolveRequest(instance, objective="upstream",
                                           request_id="solve"))
        verify = broker.submit(_verify(instance, "verify"))
        pool.gate.set()
        for ticket in (blocker, solve, verify):
            ticket.result(10.0)
        # The verify (priority 0) jumped the queued solve (priority 1).
        assert pool.calls == ["solve_task", "verify_task", "solve_task"]


class TestDeadlines:
    def test_expired_in_queue_answered_without_executing(self, make_broker,
                                                         instance):
        broker, pool = make_broker(dispatchers=1)
        pool.gate.clear()
        blocker = broker.submit(_verify(instance, "blocker"))
        assert pool.started.acquire(timeout=10.0)
        doomed = broker.submit(_verify(instance, "doomed", deadline=0.05))
        time.sleep(0.15)
        pool.gate.set()
        response = doomed.result(10.0)
        assert response.status == ResponseStatus.DEADLINE_EXCEEDED
        assert broker.metrics.counter("deadline_expired_total").value == 1
        assert pool.calls.count("verify_task") == 1   # never executed
        assert blocker.result(10.0).ok


class TestFailureMapping:
    def test_worker_crash_fails_only_its_request(self, make_broker,
                                                 instance):
        broker, pool = make_broker()
        pool.fail_with = WorkerCrash("worker died with exit code 9")
        crashed = broker.submit(_verify(instance)).result(10.0)
        assert crashed.status == ResponseStatus.WORKER_CRASHED
        assert broker.metrics.counter("worker_crashes_total").value == 1
        pool.fail_with = None
        healthy = broker.submit(_verify(instance)).result(10.0)
        assert healthy.ok

    def test_worker_error_maps_to_error(self, make_broker, instance):
        broker, pool = make_broker()
        pool.fail_with = WorkerError("Traceback ...")
        response = broker.submit(_verify(instance)).result(10.0)
        assert response.status == ResponseStatus.ERROR

    def test_worker_timeout_maps_to_deadline_exceeded(self, make_broker,
                                                      instance):
        broker, pool = make_broker()
        pool.fail_with = TimeoutError("worker exceeded 1.0s; terminated")
        response = broker.submit(_verify(instance)).result(10.0)
        assert response.status == ResponseStatus.DEADLINE_EXCEEDED


class TestDeltas:
    def test_unknown_deployment_is_bad_request(self, make_broker, instance):
        broker, pool = make_broker()
        response = broker.submit(DeltaRequest(
            deployment="nope", op="remove", ingress="h0",
        )).result(10.0)
        assert response.status == ResponseStatus.BAD_REQUEST
        assert "nope" in response.error
        assert pool.calls == []   # rejected before any worker ran
