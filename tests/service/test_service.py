"""End-to-end daemon tests: the assembled service, both transports,
the full solve -> deploy -> delta -> verify lifecycle, and crash
isolation with real forked workers."""

from __future__ import annotations

import json
import os
import socket

import pytest

from repro import __version__
from repro import io as repro_io
from repro.experiments.generators import ExperimentConfig, build_instance
from repro.net.routing import Routing, ShortestPathRouter
from repro.policy.classbench import generate_policy_set
from repro.service import (
    PlacementService,
    ServiceConfig,
    ServiceServer,
)
from repro.service.protocol import (
    DeltaRequest,
    InvalidateRequest,
    MetricsRequest,
    PingRequest,
    ResponseStatus,
    SolveRequest,
    VerifyRequest,
    decode_response,
    encode_request,
)


@pytest.fixture(scope="module")
def instance():
    return build_instance(ExperimentConfig(
        k=4, num_paths=6, rules_per_policy=5, seed=2,
    ))


@pytest.fixture
def service():
    with PlacementService(ServiceConfig(executor="inline")) as svc:
        yield svc


class TestControlPlane:
    def test_ping_answers_inline(self, service):
        response = service.handle(PingRequest(request_id="p1"), timeout=5.0)
        assert response.ok
        assert response.result["pong"] is True
        assert response.result["version"] == __version__
        assert response.request_id == "p1"

    def test_metrics_request(self, service, instance):
        service.handle(SolveRequest(instance), timeout=60.0)
        response = service.handle(MetricsRequest(), timeout=5.0)
        assert response.ok
        metrics = response.result["metrics"]
        assert metrics["counters"]["requests_solve_total"] == 1
        assert "cache" in metrics
        assert "# TYPE requests_solve_total counter" in \
            response.result["prometheus"]

    def test_invalidate_bumps_epochs_and_sweeps(self, service, instance):
        service.handle(SolveRequest(instance), timeout=60.0)
        assert len(service.cache) == 1
        response = service.handle(InvalidateRequest(scope="all"), timeout=5.0)
        assert response.ok
        assert response.result["swept_entries"] == 1
        assert len(service.cache) == 0
        # The next identical solve is a fresh miss, not a stale hit.
        again = service.handle(SolveRequest(instance), timeout=60.0)
        assert again.served == "solved"


class TestLifecycle:
    def test_solve_deploy_delta_verify(self, service, instance):
        solved = service.handle(
            SolveRequest(instance, deploy_as="prod"), timeout=60.0)
        assert solved.ok
        assert solved.result["deployed_as"] == "prod"
        assert service.broker.deployments() == ["prod"]

        # Install a new policy on a free ingress via the delta path.
        topo = instance.topology
        ports = [p.name for p in topo.entry_ports]
        used = set(instance.policies.ingresses)
        free = next(p for p in ports if p not in used)
        policy = generate_policy_set([free], rules_per_policy=4, seed=50)[free]
        router = ShortestPathRouter(topo, seed=4)
        paths = repro_io.routing_to_dict(
            Routing([router.shortest_path(free, ports[0])]))
        installed = service.handle(DeltaRequest(
            deployment="prod", op="install", ingress=free,
            policy=repro_io.policy_to_dict(policy), paths=paths,
        ), timeout=60.0)
        assert installed.ok
        assert installed.result["method"] in ("greedy", "ilp")

        # The live deployment verifies end to end.
        deployer = service.broker.deployment_deployer("prod")
        combined = deployer.as_placement()
        verified = service.handle(VerifyRequest(
            combined.instance, repro_io.placement_to_dict(combined),
        ), timeout=60.0)
        assert verified.ok
        assert verified.result["ok"] is True

        # And the policy can be removed again (pure bookkeeping).
        removed = service.handle(DeltaRequest(
            deployment="prod", op="remove", ingress=free,
        ), timeout=60.0)
        assert removed.ok
        assert removed.result["freed_slots"] > 0

    def test_cache_hit_on_repeat(self, service, instance):
        cold = service.handle(SolveRequest(instance), timeout=60.0)
        warm = service.handle(SolveRequest(instance), timeout=60.0)
        assert cold.served == "solved"
        assert warm.served == "cache"
        assert warm.result == cold.result


class TestWire:
    def test_handle_line_roundtrip(self, service, instance):
        answer = service.handle_line(encode_request(PingRequest(
            request_id="w1")))
        response = decode_response(answer)
        assert response.ok and response.request_id == "w1"

    def test_handle_line_bad_json_is_bad_request(self, service):
        response = decode_response(service.handle_line("{nope"))
        assert response.status == ResponseStatus.BAD_REQUEST

    def test_handle_line_unknown_kind_keeps_request_id(self, service):
        line = json.dumps({"kind": "frobnicate", "request_id": "x9"})
        response = decode_response(service.handle_line(line))
        assert response.status == ResponseStatus.BAD_REQUEST
        assert response.request_id == "x9"

    def test_tcp_server_roundtrip(self, instance):
        with PlacementService(ServiceConfig(executor="inline")) as svc:
            server = ServiceServer(svc, port=0)
            server.start()
            try:
                with socket.create_connection(
                        ("127.0.0.1", server.port), timeout=10.0) as conn:
                    reader = conn.makefile("r", encoding="utf-8")
                    for request in (PingRequest(request_id="a"),
                                    SolveRequest(instance, request_id="b"),
                                    SolveRequest(instance, request_id="c")):
                        conn.sendall(
                            (encode_request(request) + "\n").encode())
                    ping = decode_response(reader.readline())
                    cold = decode_response(reader.readline())
                    warm = decode_response(reader.readline())
            finally:
                server.shutdown()
        assert ping.ok and ping.request_id == "a"
        assert cold.ok and cold.served == "solved"
        assert warm.ok and warm.served == "cache"


def _crash_solve_task(request, time_limit=None):
    os._exit(31)


class TestCrashIsolation:
    def test_crashed_worker_fails_only_its_request(self, instance,
                                                   monkeypatch):
        """The ISSUE's acceptance scenario with real forked workers: a
        deliberately crashed solve answers WORKER_CRASHED for itself,
        and the daemon keeps serving the next request."""
        with PlacementService(ServiceConfig(executor="process")) as svc:
            if svc.pool.executor != "process":  # pragma: no cover
                pytest.skip("fork unavailable on this platform")
            import repro.service.broker as broker_mod

            monkeypatch.setattr(broker_mod, "solve_task", _crash_solve_task)
            crashed = svc.handle(SolveRequest(instance), timeout=60.0)
            assert crashed.status == ResponseStatus.WORKER_CRASHED
            monkeypatch.undo()
            healthy = svc.handle(SolveRequest(instance), timeout=120.0)
            assert healthy.ok
            assert healthy.served == "solved"
            assert svc.metrics.counter("worker_crashes_total").value == 1
