"""The asyncio NDJSON front-end and prompt server shutdown.

The front-end's contract: wire-compatible with the threaded server
(same protocol, same BAD_REQUEST behavior on malformed lines), able to
hold many *idle* connections cheaply, and loop-native shutdown that
completes promptly whether or not a client ever connected.  The last
property is also re-tested for the threaded server, whose accept loop
now wakes through a self-pipe instead of polling.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.experiments.generators import ExperimentConfig, build_instance
from repro.service import (
    AsyncFrontend,
    PlacementService,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
)
from repro.service.protocol import PingRequest, SolveRequest


@pytest.fixture(scope="module")
def instance():
    return build_instance(ExperimentConfig(
        k=4, num_paths=6, rules_per_policy=5, seed=11,
    ))


@pytest.fixture
def service():
    svc = PlacementService(ServiceConfig(
        executor="inline", dispatchers=2, max_workers=2,
        supervise=False,
    ))
    yield svc
    svc.close()


@pytest.fixture
def frontend(service):
    fe = AsyncFrontend(service)
    fe.start()
    yield fe
    fe.shutdown()


def _raw_roundtrip(address, payload: bytes) -> dict:
    with socket.create_connection(address, timeout=10.0) as conn:
        conn.sendall(payload)
        line = conn.makefile("r", encoding="utf-8").readline()
    return json.loads(line)


class TestProtocolCompatibility:
    def test_ping_solve_cache(self, frontend, instance):
        host, port = frontend.address
        with ServiceClient(host=host, port=port, retries=1) as client:
            assert client.ping().result["pong"] is True
            first = client.call(SolveRequest(instance=instance))
            assert first.ok and first.served == "solved"
            again = client.call(SolveRequest(instance=instance))
            assert again.ok and again.served == "cache"

    def test_malformed_line_keeps_connection(self, frontend):
        host, port = frontend.address
        with socket.create_connection((host, port), timeout=10.0) as conn:
            reader = conn.makefile("r", encoding="utf-8")
            conn.sendall(b"this is not json\n")
            bad = json.loads(reader.readline())
            assert bad["status"] == "bad_request"
            # Same connection still serves the next, valid request.
            conn.sendall(b'{"kind":"ping"}\n')
            good = json.loads(reader.readline())
            assert good["status"] == "ok"

    def test_bad_request_echoes_request_id(self, frontend):
        answer = _raw_roundtrip(
            frontend.address,
            b'{"kind":"nope","request_id":"rq-7"}\n')
        assert answer["status"] == "bad_request"
        assert answer["request_id"] == "rq-7"

    def test_blank_lines_skipped(self, frontend):
        answer = _raw_roundtrip(frontend.address,
                                b"\n\n{\"kind\":\"ping\"}\n")
        assert answer["status"] == "ok"

    def test_oversized_line_refused(self, service):
        fe = AsyncFrontend(service, max_line_bytes=4096)
        fe.start()
        try:
            giant = b'{"kind":"ping","pad":"' + b"x" * 10000 + b'"}\n'
            answer = _raw_roundtrip(fe.address, giant)
            assert answer["status"] == "bad_request"
            assert "exceeds" in answer["error"]
        finally:
            fe.shutdown()


class TestConcurrency:
    def test_many_idle_connections_stay_cheap(self, frontend):
        """Park 150 idle connections; an active client must still get
        prompt answers (the event loop doesn't burn a thread each)."""
        host, port = frontend.address
        idle = [socket.create_connection((host, port), timeout=10.0)
                for _ in range(150)]
        try:
            deadline_probe = ServiceClient(host=host, port=port, retries=1)
            with deadline_probe:
                latencies = []
                for _ in range(20):
                    begun = time.perf_counter()
                    assert deadline_probe.ping().ok
                    latencies.append(time.perf_counter() - begun)
            assert sorted(latencies)[len(latencies) // 2] < 0.5
            assert frontend.backend.metrics.gauge(
                "frontend_connections").value >= 150
        finally:
            for conn in idle:
                conn.close()

    def test_concurrent_clients(self, frontend, instance):
        host, port = frontend.address
        failures = []

        def worker() -> None:
            try:
                with ServiceClient(host=host, port=port,
                                   retries=1) as client:
                    for _ in range(5):
                        assert client.ping().ok
                    response = client.call(SolveRequest(instance=instance))
                    assert response.ok
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


class TestShutdown:
    def test_prompt_shutdown_with_zero_traffic(self, service):
        fe = AsyncFrontend(service)
        fe.start()
        begun = time.perf_counter()
        fe.shutdown()
        assert time.perf_counter() - begun < 2.0

    def test_shutdown_is_idempotent(self, service):
        fe = AsyncFrontend(service)
        fe.start()
        fe.shutdown()
        fe.shutdown()  # second call is a no-op, not an error

    def test_inflight_request_answered_during_drain(self, service,
                                                    instance):
        fe = AsyncFrontend(service)
        fe.start()
        host, port = fe.address
        responses = []

        def slow_call() -> None:
            with ServiceClient(host=host, port=port, retries=0) as client:
                responses.append(client.call(SolveRequest(
                    instance=instance)))

        thread = threading.Thread(target=slow_call)
        thread.start()
        time.sleep(0.1)  # let the request reach the broker
        fe.shutdown(drain=True, drain_timeout=30.0)
        thread.join(timeout=30.0)
        assert responses and responses[0].ok

    def test_threaded_server_prompt_shutdown_regression(self, service):
        """The threaded accept loop historically waited out its poll
        interval (or needed a connect-to-self nudge) when shut down
        with no clients; the self-pipe wakeup must make it prompt."""
        server = ServiceServer(service)
        server.start()
        time.sleep(0.05)  # let serve_forever enter its select loop
        begun = time.perf_counter()
        server.shutdown(drain=True)
        assert time.perf_counter() - begun < 2.0

    def test_threaded_server_shutdown_before_serve(self):
        """A shutdown that wins the race with serve_forever must stick:
        the serve loop may not start serving afterwards."""
        svc = PlacementService(ServiceConfig(
            executor="inline", dispatchers=1, max_workers=1,
            supervise=False))
        server = ServiceServer(svc)
        server.shutdown(drain=False)  # before start()
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        thread.join(timeout=2.0)
        assert not thread.is_alive()


class TestBackendMetrics:
    def test_frontend_counters(self, frontend):
        host, port = frontend.address
        with ServiceClient(host=host, port=port, retries=1) as client:
            client.ping()
            client.ping()
        _raw_roundtrip((host, port), b"garbage\n")
        metrics = frontend.backend.metrics
        assert metrics.counter("frontend_requests_total").value >= 3
        assert metrics.counter("frontend_bad_lines_total").value >= 1
