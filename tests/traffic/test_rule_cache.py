"""Tests for the caching dependency closure, the structural oracle,
and the promotion/eviction controller."""

from __future__ import annotations

import pytest

from repro.core.depgraph import caching_closures
from repro.core.incremental import IncrementalDeployer
from repro.core.instance import PlacementInstance
from repro.core.placement import RulePlacer
from repro.net.routing import Path, Routing
from repro.net.topology import Topology
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch
from repro.traffic import (CacheConfig, LocalChurnDriver,
                           RuleCacheController, cacheable_units,
                           closure_violations)


def rule(pattern: str, action: Action, priority: int) -> Rule:
    return Rule(TernaryMatch.from_string(pattern), action, priority)


def chain_policy() -> Policy:
    """The alternating DROP/PERMIT chain the transitive rule exists
    for: D5 carves into P4, which carves into D3."""
    return Policy("in", [
        rule("110*", Action.DROP, 5),
        rule("11**", Action.PERMIT, 4),
        rule("1***", Action.DROP, 3),
    ])


class TestCachingClosures:
    def test_transitive_alternating_chain(self):
        closures = caching_closures(chain_policy())
        assert closures[5] == ()
        assert closures[4] == (5,)
        # Eq. 1 would stop at P4; the caching closure must also carry
        # D5, or a cached D3+P4 pair answers FORWARD in D5's region.
        assert closures[3] == (5, 4)

    def test_disjoint_rules_have_empty_closures(self):
        policy = Policy("in", [
            rule("0***", Action.PERMIT, 2),
            rule("1***", Action.DROP, 1),
        ])
        closures = caching_closures(policy)
        assert closures == {2: (), 1: ()}

    def test_same_action_overlap_is_not_a_dependency(self):
        policy = Policy("in", [
            rule("1***", Action.DROP, 2),
            rule("11**", Action.DROP, 1),
        ])
        assert caching_closures(policy)[1] == ()

    def test_deep_chain(self):
        # D7 > P6 > D5 > P4, each nested in the previous.
        policy = Policy("in", [
            rule("1110", Action.DROP, 7),
            rule("111*", Action.PERMIT, 6),
            rule("11**", Action.DROP, 5),
            rule("1***", Action.PERMIT, 4),
        ])
        closures = caching_closures(policy)
        assert closures[4] == (7, 6, 5)
        assert closures[5] == (7, 6)
        assert closures[6] == (7,)


class TestCacheableUnits:
    def test_units_are_drop_anchored_and_closed(self):
        units = cacheable_units(chain_policy())
        assert set(units) == {5, 3}
        assert units[5] == frozenset({5})
        assert units[3] == frozenset({3, 4, 5})

    def test_pure_permits_are_never_units(self):
        policy = Policy("in", [rule("1***", Action.PERMIT, 1)])
        assert cacheable_units(policy) == {}

    def test_union_of_units_is_ancestor_closed(self):
        policy = chain_policy()
        units = cacheable_units(policy)
        closures = caching_closures(policy)
        for members in units.values():
            for priority in members:
                assert set(closures[priority]) <= members


class TestClosureOracle:
    def _paths(self):
        return [Path("in", "out", ("s1", "s2"))]

    def test_clean_deployment_passes(self):
        policy = chain_policy()
        placed = {("in", 3): frozenset({"s1"}),
                  ("in", 4): frozenset({"s1"}),
                  ("in", 5): frozenset({"s1"})}
        assert closure_violations(policy, frozenset({3, 4, 5}), placed,
                                  self._paths()) == []

    def test_missing_transitive_ancestor_fires(self):
        policy = chain_policy()
        placed = {("in", 3): frozenset({"s1"}),
                  ("in", 4): frozenset({"s1"})}
        violations = closure_violations(policy, frozenset({3, 4}),
                                        placed, self._paths())
        assert any("without ancestors [5]" in v for v in violations)

    def test_drop_missing_from_a_path_fires(self):
        policy = chain_policy()
        cached = frozenset({5})
        violations = closure_violations(
            policy, cached, {("in", 5): frozenset({"s1"})},
            [Path("in", "out", ("s1",)),
             Path("in", "out2", ("s3", "s4"))])
        assert any("not installed on path s3->s4" in v
                   for v in violations)

    def test_flow_sliced_path_skips_disjoint_drops(self):
        policy = chain_policy()
        cached = frozenset({5})
        disjoint = Path("in", "out", ("s9",),
                        TernaryMatch.from_string("0***"))
        assert closure_violations(
            policy, cached, {("in", 5): frozenset({"s1"})},
            [Path("in", "out", ("s1",)), disjoint]) == []

    def test_shield_not_colocated_fires(self):
        policy = chain_policy()
        cached = frozenset({3, 4, 5})
        placed = {("in", 3): frozenset({"s1"}),
                  ("in", 4): frozenset({"s2"}),   # shield elsewhere
                  ("in", 5): frozenset({"s1"})}
        violations = closure_violations(policy, cached, placed,
                                        self._paths())
        assert any("drop 3 on s1 without shield 4" in v
                   for v in violations)


def line_world(capacity: int = 10):
    """One ingress, one two-switch path, empty base deployment."""
    topo = Topology()
    topo.add_switch("s1", capacity)
    topo.add_switch("s2", capacity)
    topo.add_link("s1", "s2")
    topo.add_entry_port("in", "s1")
    topo.add_entry_port("out", "s2")
    base = RulePlacer().place(
        PlacementInstance(topo, Routing(), PolicySet()))
    path = Path("in", "out", ("s1", "s2"))
    return IncrementalDeployer(base), path


class TestController:
    def _controller(self, policy, path, **overrides):
        defaults = dict(budget=4, control_interval=1, half_life=4.0)
        defaults.update(overrides)
        return RuleCacheController([policy], {"in": [path]},
                                   CacheConfig(**defaults))

    def test_nothing_cached_without_traffic(self):
        deployer, path = line_world()
        controller = self._controller(chain_policy(), path)
        stats = controller.tick(LocalChurnDriver(deployer))
        assert stats is not None
        assert controller.cached_set("in") == frozenset()
        assert not deployer.has_policy("in")

    def test_hot_unit_is_promoted_with_its_closure(self):
        deployer, path = line_world()
        policy = chain_policy()
        controller = self._controller(policy, path)
        driver = LocalChurnDriver(deployer)
        for _ in range(3):
            controller.observe("in", 3)
        controller.tick(driver)
        # Promoting D3 drags P4 and D5 along atomically.
        assert controller.cached_set("in") == frozenset({3, 4, 5})
        assert deployer.has_policy("in")
        assert controller.verify(driver) == []

    def test_budget_excludes_oversized_units(self):
        deployer, path = line_world()
        policy = chain_policy()
        controller = self._controller(policy, path, budget=2)
        driver = LocalChurnDriver(deployer)
        for _ in range(5):
            controller.observe("in", 3)   # wants the 3-rule unit
        controller.observe("in", 5)       # the 1-rule unit
        controller.tick(driver)
        # The closure of D3 needs 3 slots > budget 2; only D5 fits.
        assert controller.cached_set("in") == frozenset({5})
        assert controller.verify(driver) == []

    def test_eviction_when_popularity_moves(self):
        deployer, path = line_world()
        policy = Policy("in", [
            rule("00**", Action.DROP, 2),
            rule("11**", Action.DROP, 1),
        ])
        controller = self._controller(policy, path, budget=1,
                                      half_life=1.0, hysteresis=1.0)
        driver = LocalChurnDriver(deployer)
        for _ in range(4):
            controller.observe("in", 2)
        controller.tick(driver)
        assert controller.cached_set("in") == frozenset({2})
        # Popularity flips; fast decay forgets rule 2.
        for _ in range(6):
            for _ in range(8):
                controller.observe("in", 1)
            controller.tick(driver)
        assert controller.cached_set("in") == frozenset({1})
        stats = controller.rounds
        assert sum(r.evictions for r in stats) >= 1
        assert controller.verify(driver) == []

    def test_hysteresis_holds_incumbent_on_ties(self):
        deployer, path = line_world()
        policy = Policy("in", [
            rule("00**", Action.DROP, 2),
            rule("11**", Action.DROP, 1),
        ])
        controller = self._controller(policy, path, budget=1,
                                      half_life=2.0, hysteresis=2.0)
        driver = LocalChurnDriver(deployer)
        for _ in range(4):
            controller.observe("in", 2)
        controller.tick(driver)
        assert controller.cached_set("in") == frozenset({2})
        # Equal ongoing traffic: the incumbent's bonus prevents thrash.
        for _ in range(4):
            controller.observe("in", 1)
            controller.observe("in", 2)
            controller.tick(driver)
        assert controller.cached_set("in") == frozenset({2})

    def test_trim_on_physical_infeasibility(self):
        # Budget 4 but the only path switch holds 1 entry: previews for
        # the full selection fail; the controller trims down to what
        # physically fits instead of wedging.
        topo = Topology()
        topo.add_switch("s1", 1)
        topo.add_entry_port("in", "s1")
        topo.add_entry_port("out", "s1")
        base = RulePlacer().place(
            PlacementInstance(topo, Routing(), PolicySet()))
        deployer = IncrementalDeployer(base)
        path = Path("in", "out", ("s1",))
        policy = Policy("in", [
            rule("00**", Action.DROP, 2),
            rule("11**", Action.DROP, 1),
        ])
        controller = self._controller(policy, path, budget=4)
        driver = LocalChurnDriver(deployer)
        for _ in range(3):
            controller.observe("in", 2)
            controller.observe("in", 1)
        stats = controller.tick(driver)
        assert stats.trims >= 1
        assert len(controller.cached_set("in")) == 1
        assert controller.verify(driver) == []

    def test_static_freezes_at_warmup(self):
        deployer, path = line_world()
        policy = Policy("in", [
            rule("00**", Action.DROP, 2),
            rule("11**", Action.DROP, 1),
        ])
        controller = self._controller(policy, path, budget=1,
                                      strategy="static", warmup_ticks=2,
                                      hysteresis=1.0)
        driver = LocalChurnDriver(deployer)
        for _ in range(4):
            controller.observe("in", 2)
        controller.tick(driver)
        controller.tick(driver)
        assert controller.cached_set("in") == frozenset({2})
        # Post-freeze popularity reversal: static must NOT adapt.
        for _ in range(8):
            for _ in range(8):
                controller.observe("in", 1)
            controller.tick(driver)
        assert controller.cached_set("in") == frozenset({2})

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            CacheConfig(strategy="belady")
