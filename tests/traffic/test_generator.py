"""Tests for the seeded synthetic traffic generator."""

from __future__ import annotations

import pytest

from repro.net.routing import Path, Routing
from repro.policy.policy import Policy
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch
from repro.traffic import TrafficConfig, TrafficGenerator


def rule(pattern: str, action: Action, priority: int) -> Rule:
    return Rule(TernaryMatch.from_string(pattern), action, priority)


def small_world(num_ingresses: int = 2):
    policies = []
    routing = Routing()
    for index in range(num_ingresses):
        ingress = f"in{index}"
        policies.append(Policy(ingress, [
            rule("1*******", Action.PERMIT, 4),
            rule("11******", Action.DROP, 3),
            rule("0*******", Action.DROP, 2),
        ]))
        routing.add_path(Path(ingress, "out", (f"e{index}", "agg", "core")))
        routing.add_path(Path(ingress, "out2", (f"e{index}", "agg2", "core")))
    return policies, routing


class TestDeterminism:
    def test_same_seed_same_stream(self):
        for _ in range(2):
            policies, routing = small_world()
            config = TrafficConfig(seed=7, packets_per_tick=40,
                                   mean_flow_lifetime=4, drift_period=8,
                                   flash_start=2, flash_length=3)
            gen = TrafficGenerator(policies, routing, config)
            stream = [(p.ingress, p.header, p.flow_id, p.path.switches)
                      for _ in range(6) for p in gen.tick()]
            if _ == 0:
                first = stream
        assert stream == first

    def test_different_seeds_differ(self):
        policies, routing = small_world()
        streams = []
        for seed in (0, 1):
            gen = TrafficGenerator(policies, routing,
                                   TrafficConfig(seed=seed))
            streams.append([p.header for p in gen.tick()])
        assert streams[0] != streams[1]


class TestShape:
    def test_zipf_concentrates_on_head_flows(self):
        policies, routing = small_world(1)
        gen = TrafficGenerator(policies, routing, TrafficConfig(
            seed=0, flows_per_ingress=32, packets_per_tick=400,
            zipf_skew=1.3, rule_bias=1.0))
        counts: dict = {}
        for _ in range(10):
            for pkt in gen.tick():
                counts[pkt.flow_id] = counts.get(pkt.flow_id, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        top4 = sum(ranked[:4])
        # Under s=1.3 over 32 slots the head 4 ranks carry well over
        # a third of the mass; uniform traffic would give them 1/8.
        assert top4 / sum(ranked) > 0.35

    def test_flash_crowd_reverses_popularity(self):
        policies, routing = small_world(1)
        config = TrafficConfig(seed=3, flows_per_ingress=16,
                               packets_per_tick=300, zipf_skew=1.2,
                               flash_start=5, flash_length=5,
                               flash_flows=2, flash_boost=60.0)
        gen = TrafficGenerator(policies, routing, config)

        def tail_share(ticks):
            tail = 0
            total = 0
            for _ in range(ticks):
                flash = gen.flash_active()
                for pkt in gen.tick():
                    total += 1
                    # Tail slots hold the two highest slot indices; the
                    # slot is not exposed, so use flow ids: initial
                    # flows are created slot-ordered and never expire
                    # in this config.
                    if pkt.flow_id >= config.flows_per_ingress - 2:
                        tail += 1
            return tail / total

        before = tail_share(5)     # ticks 0-4: no flash
        during = tail_share(5)     # ticks 5-9: flash burns
        assert during > before * 3
        assert during > 0.5

    def test_flash_active_window(self):
        policies, routing = small_world(1)
        gen = TrafficGenerator(policies, routing, TrafficConfig(
            seed=0, flash_start=2, flash_length=2))
        assert not gen.flash_active(0)
        assert gen.flash_active(2)
        assert gen.flash_active(3)
        assert not gen.flash_active(4)
        assert not TrafficGenerator(
            policies, routing, TrafficConfig(seed=0)).flash_active(2)

    def test_flow_expiry_replaces_flows(self):
        policies, routing = small_world(1)
        gen = TrafficGenerator(policies, routing, TrafficConfig(
            seed=1, flows_per_ingress=8, packets_per_tick=50,
            mean_flow_lifetime=2))
        early = {p.flow_id for p in gen.tick()}
        for _ in range(20):
            late = {p.flow_id for p in gen.tick()}
        assert late and early
        # After 20 ticks at lifetime 2, the original flows are gone.
        assert not (early & late)

    def test_no_expiry_keeps_flows(self):
        policies, routing = small_world(1)
        gen = TrafficGenerator(policies, routing, TrafficConfig(
            seed=1, flows_per_ingress=8, mean_flow_lifetime=0))
        ids = {p.flow_id for p in gen.tick()}
        for _ in range(10):
            ids |= {p.flow_id for p in gen.tick()}
        assert ids <= set(range(8))


class TestValidation:
    def test_rejects_empty_world(self):
        with pytest.raises(ValueError):
            TrafficGenerator([], Routing())

    def test_rejects_bad_config(self):
        policies, routing = small_world(1)
        with pytest.raises(ValueError):
            TrafficGenerator(policies, routing,
                             TrafficConfig(flows_per_ingress=0))
        with pytest.raises(ValueError):
            TrafficGenerator(policies, routing,
                             TrafficConfig(packets_per_tick=0))

    def test_unrouted_policy_sees_no_traffic(self):
        policies, routing = small_world(1)
        policies.append(Policy("orphan", [
            rule("1*******", Action.DROP, 1)]))
        gen = TrafficGenerator(policies, routing)
        for _ in range(5):
            assert all(p.ingress == "in0" for p in gen.tick())

    def test_headers_match_policy_width(self):
        policies, routing = small_world(1)
        gen = TrafficGenerator(policies, routing,
                               TrafficConfig(seed=2, rule_bias=0.5))
        for pkt in gen.tick():
            assert 0 <= pkt.header < (1 << pkt.width)
            assert pkt.width == 8
