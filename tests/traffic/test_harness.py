"""End-to-end churn harness tests: the closed loop, the oracles, the
service delta path, and the loadgen gauges."""

from __future__ import annotations

import pytest

from repro.traffic import ChurnConfig, run_churn, run_churn_matrix


QUICK = ChurnConfig(seed=0, ticks=32, k=4, num_paths=6,
                    rules_per_policy=16, packets_per_tick=40,
                    flash_start=16, flash_length=8, warmup_ticks=8)


class TestRunChurn:
    def test_zero_violations_and_traffic_flows(self):
        report = run_churn(QUICK)
        assert report["verdict_violations"] == 0
        assert report["closure_violations"] == 0
        assert report["packets"] == 32 * 40
        assert report["rounds"] == 32 // QUICK.control_interval
        assert report["deltas"] > 0
        assert report["cached_rules"] > 0

    def test_caching_earns_hits(self):
        report = run_churn(QUICK)
        # A cold cache hits nothing; by the end the controller must
        # have captured a real share of the (drop-heavy) stream.
        assert report["hit_rate"] > 0.15
        assert report["hit_rate_steady"] >= report["hit_rate"] * 0.9

    def test_deterministic_replay(self):
        first = run_churn(QUICK)
        second = run_churn(QUICK)
        assert first["state_digest"] == second["state_digest"]
        assert first["hit_rate"] == second["hit_rate"]
        assert first["promotions"] == second["promotions"]

    def test_zero_budget_caches_nothing(self):
        from dataclasses import replace
        report = run_churn(replace(QUICK, budget=0))
        assert report["cached_rules"] == 0
        assert report["hit_rate"] == 0.0
        assert report["verdict_violations"] == 0

    def test_matrix_aggregates_across_seeds(self):
        result = run_churn_matrix(QUICK, seeds=range(3))
        assert result["seeds"] == 3
        assert result["total_violations"] == 0
        assert len(result["runs"]) == 3
        digests = {run["seed"] for run in result["runs"]}
        assert digests == {0, 1, 2}


class TestServiceParity:
    def test_service_path_matches_local_digest(self):
        """Same seed through the journaled service delta path and the
        local deployer must end in the identical deployed state."""
        from dataclasses import replace

        local = run_churn(QUICK)
        remote = run_churn(replace(QUICK, service=True))
        assert remote["digest_mismatches"] == 0
        assert remote["verdict_violations"] == 0
        assert remote["closure_violations"] == 0
        # Controller decisions are seed-deterministic, and the service
        # commits exactly what the shadow commits.
        assert remote["state_digest"] == local["state_digest"]
        assert remote["hit_rate"] == local["hit_rate"]

    def test_journal_sees_the_churn(self, tmp_path):
        """Route churn deltas through a journaled service: the deltas
        land in the write-ahead log and recovery replays to the same
        digest the shadow computed."""
        from repro.service.daemon import PlacementService, ServiceConfig

        service = PlacementService(ServiceConfig(
            executor="inline", max_workers=2, dispatchers=1,
            journal_dir=str(tmp_path)))
        try:
            report = run_churn(QUICK, service=service)
            assert report["digest_mismatches"] == 0
            assert report["deltas"] > 0
        finally:
            service.close()
        recovered = PlacementService(ServiceConfig(
            executor="inline", max_workers=2, dispatchers=1,
            journal_dir=str(tmp_path)))
        try:
            assert (recovered.broker.deployment_digest(
                        f"churn-{QUICK.seed}")
                    == report["state_digest"])
        finally:
            recovered.close()


class TestChurnLoadgen:
    def test_gauges_and_counters_published(self):
        from repro.service.daemon import PlacementService, ServiceConfig
        from repro.service.loadgen import (ChurnLoadgenConfig,
                                           run_churn_loadgen)

        service = PlacementService(ServiceConfig(
            executor="inline", max_workers=2, dispatchers=1))
        try:
            report = run_churn_loadgen(
                ChurnLoadgenConfig(ticks=24, seeds=2,
                                   rules_per_policy=16, num_paths=6),
                service=service)
            assert report["runs"] == 2
            assert report["total_violations"] == 0
            assert report["digest_mismatches"] == 0
            metrics = service.metrics
            assert (metrics.gauge("churn_cache_hit_rate").value
                    == pytest.approx(report["reports"][-1]["hit_rate"]))
            assert metrics.gauge("churn_tcam_occupancy").value > 0
            assert (metrics.counter("churn_deltas_total").value
                    == report["deltas"])
            assert metrics.counter("churn_rounds_total").value > 0
        finally:
            service.close()
