"""Tests for the popularity estimators (EWMA + space-saving top-k)."""

from __future__ import annotations

import pytest

from repro.traffic import EwmaCounters, PopularityTracker, SpaceSavingTopK


class TestEwma:
    def test_half_life_is_exact(self):
        ewma = EwmaCounters(half_life=4.0)
        ewma.record("r", 8.0)
        for _ in range(4):
            ewma.tick()
        assert ewma.score("r") == pytest.approx(4.0)
        for _ in range(4):
            ewma.tick()
        assert ewma.score("r") == pytest.approx(2.0)

    def test_recency_beats_stale_frequency(self):
        ewma = EwmaCounters(half_life=2.0)
        for _ in range(8):
            ewma.record("old")
        for _ in range(10):
            ewma.tick()
        ewma.record("fresh")
        ewma.record("fresh")
        assert ewma.score("fresh") > ewma.score("old")
        # Cumulative counts still remember the history.
        assert ewma.count("old") == 8
        assert ewma.count("fresh") == 2

    def test_lazy_fold_matches_eager_decay(self):
        lazy = EwmaCounters(half_life=3.0)
        lazy.record("k", 5.0)
        for _ in range(7):
            lazy.tick()
        lazy.record("k", 1.0)   # forces the fold
        lazy.tick()
        expected = (5.0 * 0.5 ** (7 / 3.0) + 1.0) * 0.5 ** (1 / 3.0)
        assert lazy.score("k") == pytest.approx(expected)

    def test_last_seen_and_drop(self):
        ewma = EwmaCounters()
        assert ewma.last_seen("k") is None
        ewma.record("k")
        ewma.tick()
        ewma.tick()
        assert ewma.last_seen("k") == 0
        ewma.record("k")
        assert ewma.last_seen("k") == 2
        ewma.drop("k")
        assert ewma.score("k") == 0.0
        assert ewma.count("k") == 0
        assert ewma.last_seen("k") is None

    def test_rejects_bad_half_life(self):
        with pytest.raises(ValueError):
            EwmaCounters(half_life=0.0)


class TestSpaceSaving:
    def test_exact_below_capacity(self):
        sketch = SpaceSavingTopK(capacity=8)
        for key, hits in [("a", 5), ("b", 3), ("c", 1)]:
            for _ in range(hits):
                sketch.record(key)
        top = sketch.top()
        assert [(e.key, e.count, e.error) for e in top] == [
            ("a", 5, 0), ("b", 3, 0), ("c", 1, 0)]

    def test_heavy_hitters_survive_eviction(self):
        sketch = SpaceSavingTopK(capacity=4)
        # One dominant key among a long tail of one-hit keys.
        for index in range(100):
            sketch.record("hot")
            sketch.record(f"tail-{index}")
        assert "hot" in sketch
        top = sketch.top(1)[0]
        assert top.key == "hot"
        # Lower bound (count - error) is sound.
        assert top.count - top.error <= 100
        assert top.count >= 100

    def test_eviction_is_deterministic(self):
        outcomes = []
        for _ in range(2):
            sketch = SpaceSavingTopK(capacity=2)
            for key in ("a", "b", "c", "d", "e"):
                sketch.record(key)
            outcomes.append([(e.key, e.count) for e in sketch.top()])
        assert outcomes[0] == outcomes[1]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SpaceSavingTopK(capacity=0)


class TestTracker:
    def test_state_is_bounded_by_sketch(self):
        tracker = PopularityTracker(half_life=4.0, monitored=8)
        for index in range(100):
            tracker.record(f"k{index}")
        assert len(tracker.sketch) == 8
        # EWMA state tracks the monitored set: evicted keys are gone.
        assert len(tracker.ewma.keys()) <= 8

    def test_scores_follow_ewma(self):
        tracker = PopularityTracker(half_life=2.0, monitored=16)
        tracker.record("k", 4.0)
        tracker.tick()
        tracker.tick()
        # Two ticks at half-life 2 is one half-life: 4.0 -> 2.0.
        assert tracker.score("k") == pytest.approx(2.0)
        assert tracker.count("k") == 1
        assert tracker.last_seen("k") == 0
        assert tracker.current_tick == 2
