"""The acceptance gate: the analyzer runs clean on this repository.

Every finding in ``src/repro`` is either fixed or carries a justified
inline allow, and the committed baseline stays empty -- so the CI lint
job fails if this PR's invariants regress.
"""

import json
from pathlib import Path

from repro.analysis import AnalysisConfig, run_analysis

REPO = Path(__file__).resolve().parents[2]


class TestSelfClean:
    def test_zero_active_findings_on_src(self):
        result = run_analysis(AnalysisConfig(
            root=REPO, baseline=REPO / "lint-baseline.json"))
        assert result.parse_errors == []
        details = "\n".join(
            f"{f.location()} {f.rule_id} {f.message}"
            for f in result.active)
        assert result.active == [], f"lint regressions:\n{details}"
        assert result.exit_code == 0

    def test_committed_baseline_is_empty(self):
        payload = json.loads(
            (REPO / "lint-baseline.json").read_text(encoding="utf-8"))
        assert payload["findings"] == [], (
            "policy: fix findings or add an inline justified allow; "
            "the baseline stays empty")

    def test_every_suppression_has_a_reason(self):
        result = run_analysis(AnalysisConfig(root=REPO))
        assert result.suppressed, "expected the known justified allows"
        for finding in result.suppressed:
            assert finding.suppression_reason.strip(), finding.location()

    def test_known_hairy_sites_are_covered(self):
        # The fork-under-deployment-lock sites in the broker and the
        # shutdown-path encodes in the frontend are *suppressed* (with
        # reasons), not invisible: the checkers still see them.
        result = run_analysis(AnalysisConfig(root=REPO))
        paths = {f.path for f in result.suppressed}
        assert "src/repro/service/broker.py" in paths
        assert "src/repro/service/frontend.py" in paths
