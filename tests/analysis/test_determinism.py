"""REP-SEED fixture corpus: nondeterminism in seeded subsystems fires;
seeded RNGs and out-of-scope modules stay silent."""

from conftest import rule_ids

RULES = ("REP-SEED",)


class TestFires:
    def test_module_level_random_in_chaos(self, make_project, lint):
        root = make_project({"chaos/faults.py": '''
import random


def pick_victim(workers):
    return random.choice(workers)
'''})
        result = lint(root, rules=RULES)
        assert rule_ids(result) == ["REP-SEED"]
        assert "random.choice" in result.active[0].message

    def test_wall_clock_decision(self, make_project, lint):
        root = make_project({"chaos/schedule.py": '''
import time


def should_inject():
    return int(time.time()) % 2 == 0
'''})
        result = lint(root, rules=RULES)
        assert rule_ids(result) == ["REP-SEED"]
        assert "time.time" in result.active[0].message

    def test_unseeded_random_and_from_import(self, make_project, lint):
        root = make_project({"chaos/gen.py": '''
import random
from random import shuffle


def schedule(items):
    rng = random.Random()
    shuffle(items)
    return rng.random()
'''})
        result = lint(root, rules=RULES)
        assert len(result.active) == 2
        messages = " ".join(f.message for f in result.active)
        assert "no seed argument" in messages
        assert "from random import shuffle" in messages

    def test_module_level_random_in_traffic(self, make_project, lint):
        # repro.traffic is a registered seeded subsystem: the churn
        # harness replays multi-seed matrices by digest, so the
        # generator may never draw from the module-level RNG.
        root = make_project({"repro/traffic/generator.py": '''
import random


def next_flow(slots):
    return slots[random.randrange(len(slots))]
'''})
        result = lint(root, rules=RULES)
        assert rule_ids(result) == ["REP-SEED"]
        assert "random.randrange" in result.active[0].message

    def test_wall_clock_tick_in_traffic_controller(self, make_project,
                                                   lint):
        root = make_project({"traffic/cache.py": '''
import time


def should_run_round(last_round):
    return time.time() - last_round > 5.0
'''})
        result = lint(root, rules=RULES)
        assert rule_ids(result) == ["REP-SEED"]
        assert "time.time" in result.active[0].message

    def test_uuid4_in_loadgen(self, make_project, lint):
        root = make_project({"service/loadgen.py": '''
import uuid


def request_id():
    return str(uuid.uuid4())
'''})
        assert rule_ids(lint(root, rules=RULES)) == ["REP-SEED"]


class TestStaysSilent:
    def test_seeded_rng_is_fine(self, make_project, lint):
        root = make_project({"chaos/faults.py": '''
import random


def make_rng(seed):
    return random.Random(seed)


def pick_victim(workers, rng):
    return rng.choice(workers)
'''})
        assert lint(root, rules=RULES).active == []

    def test_monotonic_timing_is_fine(self, make_project, lint):
        # monotonic() times; it doesn't decide.
        root = make_project({"chaos/harness.py": '''
import time


def timed(fn):
    start = time.monotonic()
    fn()
    return time.monotonic() - start
'''})
        assert lint(root, rules=RULES).active == []

    def test_seeded_traffic_generator_is_fine(self, make_project, lint):
        # The real generator pattern: one Random(config_seed) owned by
        # the instance, every draw through it.
        root = make_project({"repro/traffic/generator.py": '''
import random


class TrafficGenerator:
    def __init__(self, seed):
        self._rng = random.Random(seed)

    def pick(self, slots):
        return slots[self._rng.randrange(len(slots))]
'''})
        assert lint(root, rules=RULES).active == []

    def test_out_of_scope_module_unconstrained(self, make_project, lint):
        # The rule scopes to seeded subsystems only; a CLI helper may
        # use wall-clock randomness freely.
        root = make_project({"cli/banner.py": '''
import random
import time


def greeting():
    return random.choice(["hi", "yo"]) + str(time.time())
'''})
        assert lint(root, rules=RULES).active == []
