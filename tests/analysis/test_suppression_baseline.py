"""Suppression and baseline round-trips, reporters, CLI surface."""

import json

from repro.analysis import render_json, rule_registry
from repro.analysis.baseline import load_baseline, write_baseline
from repro.cli import main as cli_main

BAD_ASYNC = '''
import time


async def handle(line):
    time.sleep(0.1)
    return line
'''

RULES = ("REP-ASYNC",)


class TestSuppressions:
    def test_trailing_allow_suppresses(self, make_project, lint):
        source = BAD_ASYNC.replace(
            "time.sleep(0.1)",
            "time.sleep(0.1)  "
            "# repro: allow[REP-ASYNC] startup path, loop not serving yet")
        root = make_project({"svc/loop.py": source})
        result = lint(root, rules=RULES)
        assert result.active == []
        assert len(result.suppressed) == 1
        assert result.suppressed[0].suppression_reason == (
            "startup path, loop not serving yet")

    def test_standalone_allow_covers_next_line(self, make_project, lint):
        source = BAD_ASYNC.replace(
            "    time.sleep(0.1)",
            "    # repro: allow[REP-ASYNC] measured: sub-microsecond\n"
            "    time.sleep(0.1)")
        result = lint(make_project({"svc/loop.py": source}), rules=RULES)
        assert result.active == []
        assert len(result.suppressed) == 1

    def test_allow_without_reason_does_not_suppress(self, make_project,
                                                    lint):
        source = BAD_ASYNC.replace(
            "time.sleep(0.1)",
            "time.sleep(0.1)  # repro: allow[REP-ASYNC]")
        result = lint(make_project({"svc/loop.py": source}), rules=RULES)
        assert len(result.active) == 1

    def test_allow_for_other_rule_does_not_suppress(self, make_project,
                                                    lint):
        source = BAD_ASYNC.replace(
            "time.sleep(0.1)",
            "time.sleep(0.1)  # repro: allow[REP-FORK] wrong rule id")
        result = lint(make_project({"svc/loop.py": source}), rules=RULES)
        assert len(result.active) == 1


class TestBaseline:
    def test_round_trip(self, make_project, lint, tmp_path):
        root = make_project({"svc/loop.py": BAD_ASYNC})
        baseline = tmp_path / "lint-baseline.json"

        first = lint(root, rules=RULES, baseline=baseline)
        assert len(first.active) == 1 and first.exit_code == 1

        write_baseline(baseline, first.active)
        assert len(load_baseline(baseline)) == 1

        second = lint(root, rules=RULES, baseline=baseline)
        assert second.active == [] and second.exit_code == 0
        assert len(second.baselined) == 1

    def test_fingerprint_survives_line_moves(self, make_project, lint,
                                             tmp_path):
        root = make_project({"svc/loop.py": BAD_ASYNC})
        baseline = tmp_path / "lint-baseline.json"
        write_baseline(baseline, lint(root, rules=RULES).active)

        # Unrelated code above shifts the finding's line; the
        # line-independent fingerprint must keep matching.
        moved = "import os\n\nPAD = os.name\n" + BAD_ASYNC
        (root / "svc" / "loop.py").write_text(moved, encoding="utf-8")
        result = lint(root, rules=RULES, baseline=baseline)
        assert result.active == []
        assert len(result.baselined) == 1

    def test_new_finding_not_covered(self, make_project, lint, tmp_path):
        root = make_project({"svc/loop.py": BAD_ASYNC})
        baseline = tmp_path / "lint-baseline.json"
        write_baseline(baseline, lint(root, rules=RULES).active)

        grown = BAD_ASYNC + '''

async def other(line):
    time.sleep(0.2)
'''
        (root / "svc" / "loop.py").write_text(grown, encoding="utf-8")
        result = lint(root, rules=RULES, baseline=baseline)
        assert len(result.active) == 1
        assert result.active[0].symbol == "other"


class TestReporters:
    def test_json_shape(self, make_project, lint):
        root = make_project({"svc/loop.py": BAD_ASYNC})
        result = lint(root, rules=RULES)
        payload = json.loads(render_json(
            result.active, result.suppressed, result.baselined,
            result.files_scanned))
        assert payload["ok"] is False
        assert payload["counts"]["active"] == 1
        finding = payload["findings"][0]
        assert finding["rule"] == "REP-ASYNC"
        assert finding["path"] == "svc/loop.py"
        assert finding["symbol"] == "handle"
        assert len(finding["fingerprint"]) == 16


class TestCli:
    def test_lint_exit_codes(self, make_project, capsys):
        root = make_project({"svc/loop.py": BAD_ASYNC})
        code = cli_main(["lint", "--root", str(root),
                         "--rules", "REP-ASYNC"])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP-ASYNC" in out and "time.sleep" in out

    def test_write_baseline_then_clean(self, make_project, capsys):
        root = make_project({"svc/loop.py": BAD_ASYNC})
        assert cli_main(["lint", "--root", str(root),
                         "--write-baseline"]) == 0
        capsys.readouterr()
        assert cli_main(["lint", "--root", str(root),
                         "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["counts"]["baselined"] == 1

    def test_explain_every_rule(self, capsys):
        for rule_id, info in sorted(rule_registry().items()):
            assert cli_main(["lint", "--explain", rule_id]) == 0
            out = capsys.readouterr().out
            assert rule_id in out
            assert "Invariant:" in out
            assert "Bad:" in out and "Good:" in out
            assert "Why this rule exists:" in out
            assert f"allow[{rule_id}]" in out

    def test_explain_unknown_rule(self, capsys):
        assert cli_main(["lint", "--explain", "REP-NOPE"]) == 2
        assert "known rules" in capsys.readouterr().err

    def test_parse_error_fails(self, make_project, capsys):
        root = make_project({"svc/broken.py": "def oops(:\n"})
        assert cli_main(["lint", "--root", str(root)]) == 1
        assert "parse error" in capsys.readouterr().err
