"""REP-ASYNC fixture corpus: blocking on the loop fires, executor use
and awaits stay silent."""

from conftest import rule_ids

RULES = ("REP-ASYNC",)


class TestFires:
    def test_time_sleep_in_async_def(self, make_project, lint):
        root = make_project({"svc/loop.py": '''
import time


async def handle(line):
    time.sleep(0.1)
    return line
'''})
        result = lint(root, rules=RULES)
        assert rule_ids(result) == ["REP-ASYNC"]
        assert "time.sleep" in result.active[0].message

    def test_untimed_acquire_and_json(self, make_project, lint):
        root = make_project({"svc/loop.py": '''
import json


class Frontend:
    async def serve(self, line):
        self._lock.acquire()
        try:
            return json.loads(line)
        finally:
            self._lock.release()
'''})
        result = lint(root, rules=RULES)
        assert rule_ids(result) == ["REP-ASYNC", "REP-ASYNC"]
        messages = " ".join(f.message for f in result.active)
        assert ".acquire()" in messages and "json.loads" in messages

    def test_open_and_subprocess(self, make_project, lint):
        root = make_project({"svc/loop.py": '''
import subprocess


async def snapshot(path):
    with open(path) as handle:
        data = handle.read()
    subprocess.run(["sync"])
    return data
'''})
        result = lint(root, rules=RULES)
        assert len(result.active) == 2

    def test_call_nested_inside_await_args_still_checked(
            self, make_project, lint):
        # `await write(encode(x))` runs encode() on the loop before the
        # await -- the direct-await exemption must not leak to it.
        root = make_project({"svc/loop.py": '''
import json


async def answer(writer, payload):
    await writer.write(json.dumps(payload))
'''})
        result = lint(root, rules=RULES)
        assert rule_ids(result) == ["REP-ASYNC"]
        assert "json.dumps" in result.active[0].message


class TestStaysSilent:
    def test_asyncio_equivalents(self, make_project, lint):
        root = make_project({"svc/loop.py": '''
import asyncio


async def handle(reader):
    await asyncio.sleep(0.1)
    line = await reader.readline()
    return line
'''})
        assert lint(root, rules=RULES).active == []

    def test_run_in_executor_reference(self, make_project, lint):
        # The blocking callable is passed by reference, never called
        # on the loop.
        root = make_project({"svc/loop.py": '''
import asyncio
import json


async def handle(pool, line):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(pool, json.loads, line)
'''})
        assert lint(root, rules=RULES).active == []

    def test_nested_sync_def_is_executor_code(self, make_project, lint):
        # A sync def inside an async def is callback/executor code.
        root = make_project({"svc/loop.py": '''
import time


async def handle(pool, loop):
    def blocking():
        time.sleep(1.0)
        return 42

    return await loop.run_in_executor(pool, blocking)
'''})
        assert lint(root, rules=RULES).active == []

    def test_awaited_coroutine_factory_wait(self, make_project, lint):
        # event.wait() inside `await asyncio.wait_for(...)` builds a
        # coroutine; the .wait() heuristic must not misfire on it.
        root = make_project({"svc/loop.py": '''
import asyncio


async def drain(event):
    await asyncio.wait_for(event.wait(), timeout=5.0)
'''})
        assert lint(root, rules=RULES).active == []

    def test_timed_acquire_allowed(self, make_project, lint):
        root = make_project({"svc/loop.py": '''
async def poll(lock):
    if lock.acquire(timeout=0.01):
        lock.release()
    if lock.acquire(blocking=False):
        lock.release()
'''})
        assert lint(root, rules=RULES).active == []
