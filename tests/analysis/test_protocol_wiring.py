"""REP-PROTO fixture corpus + the mutation test on the real tree.

The mutation test copies the actual service modules into a temp
project, un-wires one protocol verb the way a careless PR would, and
asserts the checker catches it -- proving an unwired verb fails CI.
"""

import shutil
from pathlib import Path

from conftest import rule_ids

RULES = ("REP-PROTO",)

WIRED = {
    "service/protocol.py": '''
from dataclasses import dataclass


@dataclass
class SolveRequest:
    kind = "solve"
    instance: object = None

    def to_dict(self):
        return {}

    @classmethod
    def from_dict(cls, data):
        return cls()


@dataclass
class DrainRequest:
    kind = "drain"
    deployment: str = ""

    def to_dict(self):
        return {}

    @classmethod
    def from_dict(cls, data):
        return cls()


_REQUEST_TYPES = {cls.kind: cls for cls in (SolveRequest, DrainRequest)}
''',
    "service/daemon.py": '''
def submit(request, SolveRequest=None, DrainRequest=None):
    if isinstance(request, SolveRequest):
        return "solved"
    if isinstance(request, DrainRequest):
        return "drained"
    return None
''',
    "service/cluster.py": '''
class ClusterRouter:
    def _handle(self, request, DrainRequest=None):
        if isinstance(request, DrainRequest):
            return self._broadcast(request)
        return self._route_stateless(request)
''',
}


class TestFires:
    def test_unregistered_verb(self, make_project, lint):
        files = dict(WIRED)
        files["service/protocol.py"] = files["service/protocol.py"].replace(
            "(SolveRequest, DrainRequest)", "(SolveRequest,)")
        result = lint(make_project(files), rules=RULES)
        assert rule_ids(result) == ["REP-PROTO"]
        finding = result.active[0]
        assert finding.symbol == "DrainRequest"
        assert "_REQUEST_TYPES" in finding.message

    def test_missing_serializer_roundtrip(self, make_project, lint):
        files = dict(WIRED)
        files["service/protocol.py"] = files["service/protocol.py"].replace(
            """    @classmethod
    def from_dict(cls, data):
        return cls()


_REQUEST_TYPES""", "\n_REQUEST_TYPES")
        result = lint(make_project(files), rules=RULES)
        assert rule_ids(result) == ["REP-PROTO"]
        assert "to_dict/from_dict" in result.active[0].message

    def test_missing_handler(self, make_project, lint):
        files = dict(WIRED)
        files["service/daemon.py"] = '''
def submit(request, SolveRequest=None):
    if isinstance(request, SolveRequest):
        return "solved"
    return None
'''
        result = lint(make_project(files), rules=RULES)
        assert rule_ids(result) == ["REP-PROTO"]
        assert "handler" in result.active[0].message

    def test_missing_router_arm(self, make_project, lint):
        # DrainRequest has no routable `instance` field, so dropping
        # its isinstance arm leaves sharded mode unable to serve it.
        files = dict(WIRED)
        files["service/cluster.py"] = '''
class ClusterRouter:
    def _handle(self, request):
        return self._route_stateless(request)
'''
        result = lint(make_project(files), rules=RULES)
        assert rule_ids(result) == ["REP-PROTO"]
        assert "routing arm" in result.active[0].message


class TestStaysSilent:
    def test_fully_wired(self, make_project, lint):
        assert lint(make_project(dict(WIRED)), rules=RULES).active == []

    def test_stateless_fallthrough_routes_instance_verbs(
            self, make_project, lint):
        # SolveRequest has an `instance` field: the digest fallthrough
        # routes it without a dedicated arm (the VerifyRequest pattern).
        files = dict(WIRED)
        assert "isinstance(request, SolveRequest)" not in files[
            "service/cluster.py"]
        assert lint(make_project(files), rules=RULES).active == []

    def test_no_cluster_module_skips_router_check(self, make_project,
                                                  lint):
        files = {k: v for k, v in WIRED.items()
                 if k != "service/cluster.py"}
        assert lint(make_project(files), rules=RULES).active == []


class TestMutationOnRealTree:
    """Un-wire a real verb; the checker must fail the build."""

    REPO = Path(__file__).resolve().parents[2]
    SERVICE = ("protocol.py", "broker.py", "daemon.py", "cluster.py")

    def _copy_service(self, tmp_path: Path) -> Path:
        root = tmp_path / "mutant"
        dest = root / "service"
        dest.mkdir(parents=True)
        for name in self.SERVICE:
            shutil.copy(self.REPO / "src" / "repro" / "service" / name,
                        dest / name)
        return root

    def test_real_tree_copy_is_wired(self, tmp_path, lint):
        root = self._copy_service(tmp_path)
        assert lint(root, rules=RULES).active == []

    def test_dropping_session_router_arm_fails(self, tmp_path, lint):
        root = self._copy_service(tmp_path)
        cluster = root / "service" / "cluster.py"
        source = cluster.read_text(encoding="utf-8")
        mutated = source.replace("(DeltaRequest, SessionRequest)",
                                 "(DeltaRequest,)")
        assert mutated != source, "cluster router arm moved; update test"
        cluster.write_text(mutated, encoding="utf-8")
        result = lint(root, rules=RULES)
        assert [f.symbol for f in result.active] == ["SessionRequest"]
        assert "routing arm" in result.active[0].message

    def test_unregistering_verb_fails(self, tmp_path, lint):
        root = self._copy_service(tmp_path)
        protocol = root / "service" / "protocol.py"
        source = protocol.read_text(encoding="utf-8")
        mutated = source.replace(
            "for cls in (SolveRequest, DeltaRequest, VerifyRequest,",
            "for cls in (SolveRequest, VerifyRequest,")
        assert mutated != source, "registry tuple moved; update test"
        protocol.write_text(mutated, encoding="utf-8")
        result = lint(root, rules=RULES)
        assert any(f.symbol == "DeltaRequest"
                   and "_REQUEST_TYPES" in f.message
                   for f in result.active)
