"""REP-FORK fixture corpus: fork-under-lock must fire, safe forks not."""

from conftest import rule_ids

RULES = ("REP-FORK",)


class TestFires:
    def test_process_start_under_lock(self, make_project, lint):
        root = make_project({"svc/pool.py": '''
import threading
import multiprocessing


class Pool:
    def __init__(self):
        self._lock = threading.Lock()

    def spawn(self, target):
        with self._lock:
            proc = multiprocessing.Process(target=target)
            proc.start()
            return proc
'''})
        result = lint(root, rules=RULES)
        assert rule_ids(result) == ["REP-FORK"]
        finding = result.active[0]
        assert finding.symbol == "Pool.spawn"
        assert "_lock" in finding.message

    def test_fork_after_thread_creation(self, make_project, lint):
        root = make_project({"svc/mixed.py": '''
import os
import threading


def serve():
    pumper = threading.Thread(target=print)
    pumper.start()
    pid = os.fork()
    return pid
'''})
        result = lint(root, rules=RULES)
        assert rule_ids(result) == ["REP-FORK"]
        assert "threading.Thread" in result.active[0].message

    def test_transitive_fork_under_lock(self, make_project, lint):
        # spawn() forks; tick() calls spawn() while holding the state
        # lock -- only the cross-function pass can see this.
        root = make_project({"svc/indirect.py": '''
import threading
import multiprocessing


def spawn_worker(target):
    proc = multiprocessing.Process(target=target)
    proc.start()
    return proc


class Manager:
    def __init__(self):
        self._state_lock = threading.Lock()

    def tick(self):
        with self._state_lock:
            return spawn_worker(print)
'''})
        result = lint(root, rules=RULES)
        assert rule_ids(result) == ["REP-FORK"]
        finding = result.active[0]
        assert finding.symbol == "Manager.tick"
        assert "spawn_worker" in finding.message

    def test_constructor_fork_under_lock(self, make_project, lint):
        # A class whose __init__ forks makes its *instantiation* a fork.
        root = make_project({"svc/session.py": '''
import threading
import multiprocessing


class Worker:
    def __init__(self):
        self.proc = multiprocessing.Process(target=print)
        self.proc.start()


class Broker:
    def __init__(self):
        self._lock = threading.Lock()

    def attach(self):
        with self._lock:
            return Worker()
'''})
        result = lint(root, rules=RULES)
        assert any(f.symbol == "Broker.attach" for f in result.active)


class TestStaysSilent:
    def test_fork_outside_lock(self, make_project, lint):
        root = make_project({"svc/pool.py": '''
import threading
import multiprocessing


class Pool:
    def __init__(self):
        self._lock = threading.Lock()

    def spawn(self, target):
        with self._lock:
            count = self._bump()
        proc = multiprocessing.Process(target=target)
        proc.start()
        return proc, count

    def _bump(self):
        return 1
'''})
        assert lint(root, rules=RULES).active == []

    def test_locks_without_forks(self, make_project, lint):
        root = make_project({"svc/counter.py": '''
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0

    def bump(self):
        with self._lock:
            self.n += 1
            return self.n
'''})
        assert lint(root, rules=RULES).active == []

    def test_ambiguous_name_not_blamed(self, make_project, lint):
        # Two defs named run(), only one forks: a call under a lock is
        # attributed (unique among fork-reaching defs).  But when BOTH
        # fork-reach, attribution is ambiguous and must stay silent.
        root = make_project({"svc/dup.py": '''
import threading
import multiprocessing


class A:
    def run(self):
        multiprocessing.Process(target=print).start()


class B:
    def run(self):
        multiprocessing.Process(target=print).start()


class Caller:
    def __init__(self):
        self._lock = threading.Lock()

    def go(self, obj):
        with self._lock:
            obj.run()
'''})
        result = lint(root, rules=RULES)
        assert all(f.symbol != "Caller.go" for f in result.active)
