"""Fixture-corpus helpers for the static-analyzer suite.

Each test builds a tiny synthetic project on disk (``make_project``)
and runs the real two-phase engine over it (``lint``), so every
checker is exercised through the exact path CI uses.
"""

from pathlib import Path
from typing import Dict, Optional, Sequence

import pytest

from repro.analysis import AnalysisConfig, run_analysis


@pytest.fixture
def make_project(tmp_path):
    """Write ``{relpath: source}`` under a fresh root; returns the root."""

    def _make(files: Dict[str, str]) -> Path:
        root = tmp_path / "proj"
        for rel, source in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
        return root

    return _make


@pytest.fixture
def lint():
    """Run the analyzer over a fixture root; returns the result."""

    def _lint(root: Path, rules: Sequence[str] = (),
              baseline: Optional[Path] = None,
              paths: Sequence[Path] = ()):
        return run_analysis(AnalysisConfig(
            root=root, paths=paths, rules=rules, baseline=baseline))

    return _lint


def rule_ids(result):
    """Active finding rule ids, sorted, for compact assertions."""
    return sorted(f.rule_id for f in result.active)
