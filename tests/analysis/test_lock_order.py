"""REP-LOCK fixture corpus: order cycles fire, consistent orders and
Condition aliases stay silent."""

from conftest import rule_ids

RULES = ("REP-LOCK",)


class TestFires:
    def test_two_lock_inversion(self, make_project, lint):
        root = make_project({"svc/bank.py": '''
import threading


class Bank:
    def __init__(self):
        self._accounts_lock = threading.Lock()
        self._audit_lock = threading.Lock()

    def transfer(self):
        with self._accounts_lock:
            with self._audit_lock:
                return 1

    def report(self):
        with self._audit_lock:
            with self._accounts_lock:
                return 2
'''})
        result = lint(root, rules=RULES)
        assert rule_ids(result) == ["REP-LOCK"]
        message = result.active[0].message
        # Both with-sites named, both directions visible.
        assert "Bank._accounts_lock" in message
        assert "Bank._audit_lock" in message
        assert "svc/bank.py:" in message

    def test_cross_module_cycle_via_call(self, make_project, lint):
        # journal.flush() nests journal->state; engine.apply() holds
        # the state lock and calls flush(): state->journal.  The edge
        # only exists through the call-under-lock pass.
        root = make_project({
            "svc/journal.py": '''
import threading


class Journal:
    def __init__(self):
        self._journal_lock = threading.Lock()

    def flush_records(self, state):
        with self._journal_lock:
            with state._state_lock:
                return 1
''',
            "svc/engine.py": '''
import threading


class Engine:
    def __init__(self, journal):
        self._state_lock = threading.Lock()
        self.journal = journal

    def apply(self):
        with self._state_lock:
            return self.journal.flush_records(self)
'''})
        result = lint(root, rules=RULES)
        assert rule_ids(result) == ["REP-LOCK"]
        assert "potential deadlock" in result.active[0].message


class TestStaysSilent:
    def test_consistent_global_order(self, make_project, lint):
        root = make_project({"svc/bank.py": '''
import threading


class Bank:
    def __init__(self):
        self._accounts_lock = threading.Lock()
        self._audit_lock = threading.Lock()

    def transfer(self):
        with self._accounts_lock:
            with self._audit_lock:
                return 1

    def report(self):
        with self._accounts_lock:
            with self._audit_lock:
                return 2
'''})
        assert lint(root, rules=RULES).active == []

    def test_condition_alias_is_not_an_edge(self, make_project, lint):
        # Condition(self._lock) IS self._lock: nesting them is a
        # re-entry, not an ordering edge (the journal's _sync_cond
        # pattern).
        root = make_project({"svc/journal.py": '''
import threading


class Journal:
    def __init__(self):
        self._lock = threading.Lock()
        self._sync_cond = threading.Condition(self._lock)

    def commit(self):
        with self._lock:
            with self._sync_cond:
                self._sync_cond.notify_all()
'''})
        assert lint(root, rules=RULES).active == []

    def test_single_lock_everywhere(self, make_project, lint):
        root = make_project({"svc/simple.py": '''
import threading


class Box:
    def __init__(self):
        self._lock = threading.Lock()

    def put(self, x):
        with self._lock:
            self.value = x

    def get(self):
        with self._lock:
            return self.value
'''})
        assert lint(root, rules=RULES).active == []
