"""Tests for the operator report renderers."""

from __future__ import annotations

import pytest

from repro.core.placement import PlacerConfig, RulePlacer
from repro.core.report import (
    instance_report,
    placement_report,
    policy_spread_report,
    switch_utilization_report,
)
from repro.experiments import ExperimentConfig, build_instance


@pytest.fixture(scope="module")
def solved():
    instance = build_instance(ExperimentConfig(
        k=4, num_paths=16, rules_per_policy=10, capacity=30,
        num_ingresses=4, seed=2, blacklist_rules=2,
    ))
    placement = RulePlacer(PlacerConfig(enable_merging=True)).place(instance)
    assert placement.is_feasible
    return instance, placement


class TestInstanceReport:
    def test_lists_every_policy(self, solved):
        instance, _ = solved
        text = instance_report(instance)
        for policy in instance.policies:
            assert policy.ingress in text
        assert "Instance:" in text


class TestUtilizationReport:
    def test_shows_loads_and_bars(self, solved):
        instance, placement = solved
        text = switch_utilization_report(placement)
        loads = placement.switch_loads()
        busiest = max(loads, key=loads.get)
        assert busiest in text
        assert "%" in text and "#" in text

    def test_top_limits_rows(self, solved):
        _, placement = solved
        full = switch_utilization_report(placement)
        top1 = switch_utilization_report(placement, top=1)
        assert len(top1.splitlines()) < len(full.splitlines())

    def test_mentions_unused_switches(self, solved):
        instance, placement = solved
        unused = len(instance.capacities) - len(placement.switch_loads())
        if unused:
            assert f"+{unused} switches" in switch_utilization_report(placement)


class TestSpreadAndFullReport:
    def test_spread_covers_policies(self, solved):
        instance, placement = solved
        text = policy_spread_report(placement)
        assert all(p.ingress in text for p in instance.policies)

    def test_full_report_sections(self, solved):
        _, placement = solved
        text = placement_report(placement)
        assert "required rules" in text
        assert "utilization" in text
        assert "merging:" in text  # merging fixture has active groups

    def test_infeasible_report_is_short(self, solved):
        from repro.core.placement import Placement
        from repro.milp.model import SolveStatus

        instance, _ = solved
        placement = Placement(instance, SolveStatus.INFEASIBLE)
        text = placement_report(placement)
        assert "infeasible" in text
        assert "utilization" not in text
