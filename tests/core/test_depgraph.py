"""Tests for the rule dependency graph (paper Section IV-A1)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.depgraph import build_dependency_graph, ordering_pairs
from repro.policy.policy import Policy
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch


def rule(pattern: str, action: Action, priority: int) -> Rule:
    return Rule(TernaryMatch.from_string(pattern), action, priority)


class TestEdges:
    def test_drop_depends_on_higher_overlapping_permit(self):
        policy = Policy("in", [
            rule("1***", Action.PERMIT, 3),
            rule("1*0*", Action.DROP, 2),
        ])
        graph = build_dependency_graph(policy)
        assert graph.dependencies_of(2) == (3,)

    def test_disjoint_permit_ignored(self):
        policy = Policy("in", [
            rule("0***", Action.PERMIT, 3),
            rule("1***", Action.DROP, 2),
        ])
        graph = build_dependency_graph(policy)
        assert graph.dependencies_of(2) == ()

    def test_lower_priority_permit_ignored(self):
        policy = Policy("in", [
            rule("1***", Action.DROP, 3),
            rule("1***", Action.PERMIT, 2),
        ])
        graph = build_dependency_graph(policy)
        assert graph.dependencies_of(3) == ()

    def test_drop_drop_overlap_ignored(self):
        policy = Policy("in", [
            rule("1***", Action.DROP, 3),
            rule("1*0*", Action.DROP, 2),
        ])
        graph = build_dependency_graph(policy)
        assert graph.dependencies_of(2) == ()
        assert graph.dependencies_of(3) == ()

    def test_multiple_dependencies_sorted(self):
        policy = Policy("in", [
            rule("1***", Action.PERMIT, 4),
            rule("*1**", Action.PERMIT, 3),
            rule("11**", Action.DROP, 1),
        ])
        graph = build_dependency_graph(policy)
        assert graph.dependencies_of(1) == (3, 4)

    def test_permits_have_no_entries(self):
        policy = Policy("in", [rule("1***", Action.PERMIT, 1)])
        graph = build_dependency_graph(policy)
        assert graph.drop_priorities() == ()
        assert graph.num_edges() == 0


class TestDerived:
    def test_required_permits_union(self):
        policy = Policy("in", [
            rule("1***", Action.PERMIT, 5),
            rule("0***", Action.PERMIT, 4),
            rule("1*0*", Action.DROP, 3),
            rule("0*0*", Action.DROP, 2),
        ])
        graph = build_dependency_graph(policy)
        assert set(graph.required_permits()) == {4, 5}

    def test_unreferenced_permit_excluded(self):
        policy = Policy("in", [
            rule("1***", Action.PERMIT, 3),
            rule("0***", Action.DROP, 2),
        ])
        graph = build_dependency_graph(policy)
        assert graph.required_permits() == ()

    def test_closure(self):
        policy = Policy("in", [
            rule("1***", Action.PERMIT, 3),
            rule("1*0*", Action.DROP, 2),
        ])
        graph = build_dependency_graph(policy)
        assert graph.closure(2) == (2, 3)


class TestOrderingPairs:
    def test_only_conflicting_overlaps(self):
        policy = Policy("in", [
            rule("1***", Action.PERMIT, 4),   # overlaps drop 2 (conflict)
            rule("1***", Action.PERMIT, 3),   # same action as 4: no pair
            rule("1*0*", Action.DROP, 2),
            rule("0***", Action.DROP, 1),     # disjoint from permits
        ])
        pairs = set(ordering_pairs(policy))
        assert pairs == {(4, 2), (3, 2)}

    def test_semantics_of_pair_orientation(self):
        """Pairs are (higher, lower)."""
        policy = Policy("in", [
            rule("1***", Action.DROP, 9),
            rule("1***", Action.PERMIT, 1),
        ])
        assert set(ordering_pairs(policy)) == {(9, 1)}


@given(st.integers(0, 2 ** 32 - 1))
def test_edges_subset_of_overlap_relation(seed):
    """Every dependency edge connects genuinely overlapping rules with
    the right action/priority relationship (random policies)."""
    import random

    from repro.policy.classbench import PolicyGenerator, PolicyGeneratorConfig

    generator = PolicyGenerator(
        PolicyGeneratorConfig(num_rules=15, drop_fraction=0.5), seed=seed
    )
    policy = generator.generate_policy("in")
    graph = build_dependency_graph(policy)
    for drop_priority in graph.drop_priorities():
        drop = policy.rule_by_priority(drop_priority)
        assert drop.is_drop
        for permit_priority in graph.dependencies_of(drop_priority):
            permit = policy.rule_by_priority(permit_priority)
            assert permit.is_permit
            assert permit.priority > drop.priority
            assert permit.match.intersects(drop.match)
    # Completeness: no overlapping higher permit is missing.
    for drop in policy.drop_rules():
        expected = {
            p.priority for p in policy.permit_rules()
            if p.priority > drop.priority and p.match.intersects(drop.match)
        }
        assert set(graph.dependencies_of(drop.priority)) == expected
