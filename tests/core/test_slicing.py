"""Tests for path slicing and variable domains (Section IV-C)."""

from __future__ import annotations

import pytest

from repro.core.depgraph import build_dependency_graph
from repro.core.instance import PlacementInstance
from repro.core.slicing import build_slices
from repro.net.routing import Path, Routing
from repro.net.topology import Topology
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch


def rule(pattern: str, action: Action, priority: int) -> Rule:
    return Rule(TernaryMatch.from_string(pattern), action, priority)


@pytest.fixture
def fork_topology():
    topo = Topology()
    for name in ("a", "b", "c"):
        topo.add_switch(name, 10)
    topo.add_link("a", "b")
    topo.add_link("a", "c")
    topo.add_entry_port("in", "a")
    topo.add_entry_port("out1", "b")
    topo.add_entry_port("out2", "c")
    return topo


def make_instance(topo, paths, policy):
    return PlacementInstance(topo, Routing(paths), PolicySet([policy]))


class TestUnsliced:
    def test_domains_cover_s_i(self, fork_topology):
        policy = Policy("in", [
            rule("1***", Action.PERMIT, 2),
            rule("1*0*", Action.DROP, 1),
        ])
        instance = make_instance(fork_topology, [
            Path("in", "out1", ("a", "b")),
            Path("in", "out2", ("a", "c")),
        ], policy)
        graphs = {"in": build_dependency_graph(policy)}
        slices = build_slices(instance, graphs)
        assert set(slices.domain(("in", 1))) == {"a", "b", "c"}
        assert set(slices.domain(("in", 2))) == {"a", "b", "c"}

    def test_every_drop_relevant_everywhere(self, fork_topology):
        policy = Policy("in", [rule("1***", Action.DROP, 1)])
        instance = make_instance(fork_topology, [
            Path("in", "out1", ("a", "b")),
            Path("in", "out2", ("a", "c")),
        ], policy)
        slices = build_slices(instance, {"in": build_dependency_graph(policy)})
        assert slices.drops_for_path("in", 0) == (1,)
        assert slices.drops_for_path("in", 1) == (1,)

    def test_unneeded_permit_has_no_domain(self, fork_topology):
        policy = Policy("in", [rule("1***", Action.PERMIT, 1)])
        instance = make_instance(
            fork_topology, [Path("in", "out1", ("a", "b"))], policy
        )
        slices = build_slices(instance, {"in": build_dependency_graph(policy)})
        assert slices.domain(("in", 1)) == ()
        assert slices.num_variables() == 0


class TestSliced:
    def test_flow_restricts_relevance(self, fork_topology):
        """Fig. 6: each route's flow overlaps only part of the policy."""
        policy = Policy("in", [
            rule("11**", Action.DROP, 3),   # only flow 1 traffic
            rule("01**", Action.DROP, 2),   # only flow 2 traffic
            rule("**1*", Action.DROP, 1),   # both
        ])
        flow1 = TernaryMatch.from_string("1***")
        flow2 = TernaryMatch.from_string("0***")
        instance = make_instance(fork_topology, [
            Path("in", "out1", ("a", "b"), flow=flow1),
            Path("in", "out2", ("a", "c"), flow=flow2),
        ], policy)
        slices = build_slices(instance, {"in": build_dependency_graph(policy)})
        assert slices.drops_for_path("in", 0) == (3, 1)
        assert slices.drops_for_path("in", 1) == (2, 1)
        # Domains shrink accordingly: rule 3 never needs switch c.
        assert set(slices.domain(("in", 3))) == {"a", "b"}
        assert set(slices.domain(("in", 2))) == {"a", "c"}
        assert set(slices.domain(("in", 1))) == {"a", "b", "c"}

    def test_permit_inherits_dependent_drop_domains(self, fork_topology):
        policy = Policy("in", [
            rule("1***", Action.PERMIT, 2),
            rule("1*0*", Action.DROP, 1),
        ])
        flow1 = TernaryMatch.from_string("1***")
        instance = make_instance(fork_topology, [
            Path("in", "out1", ("a", "b"), flow=flow1),
            Path("in", "out2", ("a", "c"), flow=TernaryMatch.from_string("0***")),
        ], policy)
        slices = build_slices(instance, {"in": build_dependency_graph(policy)})
        # The drop is only relevant to the first path, so the permit's
        # domain is limited to that path's switches too.
        assert set(slices.domain(("in", 2))) == {"a", "b"}

    def test_fully_irrelevant_drop_gets_no_variables(self, fork_topology):
        policy = Policy("in", [rule("11**", Action.DROP, 1)])
        instance = make_instance(fork_topology, [
            Path("in", "out1", ("a", "b"), flow=TernaryMatch.from_string("0***")),
        ], policy)
        slices = build_slices(instance, {"in": build_dependency_graph(policy)})
        assert slices.domain(("in", 1)) == ()
        assert slices.drops_for_path("in", 0) == ()
