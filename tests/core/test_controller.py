"""Tests for the simulated SDN controller (live table updates)."""

from __future__ import annotations

import random

import pytest

from repro.core.controller import Controller
from repro.core.instance import PlacementInstance
from repro.core.objectives import UpstreamDrops
from repro.core.placement import Placement, PlacerConfig, RulePlacer
from repro.dataplane.simulator import Verdict
from repro.experiments import ExperimentConfig, build_instance
from repro.milp.model import SolveStatus


@pytest.fixture(scope="module")
def instance():
    return build_instance(ExperimentConfig(
        k=4, num_paths=16, rules_per_policy=10, capacity=30,
        num_ingresses=6, seed=8, drop_fraction=0.5, nested_fraction=0.5,
    ))


@pytest.fixture(scope="module")
def placements(instance):
    a = RulePlacer().place(instance)
    b = RulePlacer(PlacerConfig(objective=UpstreamDrops())).place(instance)
    assert a.is_feasible and b.is_feasible
    return a, b


def conformance_errors(controller, instance, seed=0):
    return controller.dataplane.check_routing_sampled(
        list(instance.policies), instance.routing, seed=seed,
        samples_per_rule=6,
    )


class TestDeploy:
    def test_deploy_builds_conformant_dataplane(self, instance, placements):
        a, _ = placements
        controller = Controller(instance)
        controller.deploy(a)
        assert controller.total_entries() == a.total_installed()
        assert conformance_errors(controller, instance) == []
        assert controller.stats.installs_sent == a.total_installed()

    def test_deploy_rejects_infeasible(self, instance):
        controller = Controller(instance)
        with pytest.raises(ValueError):
            controller.deploy(Placement(instance, SolveStatus.INFEASIBLE))

    def test_transition_requires_deploy(self, instance, placements):
        a, _ = placements
        with pytest.raises(RuntimeError):
            Controller(instance).transition(a)


class TestTransition:
    def test_transition_reaches_target(self, instance, placements):
        a, b = placements
        controller = Controller(instance)
        controller.deploy(a)
        plan = controller.transition(b)
        assert controller.total_entries() == b.total_installed()
        assert conformance_errors(controller, instance) == []
        assert controller.stats.transitions == 1
        assert controller.stats.deletes_sent >= plan.num_deletes()

    def test_round_trip_transitions(self, instance, placements):
        a, b = placements
        controller = Controller(instance)
        controller.deploy(a)
        controller.transition(b)
        controller.transition(a)
        assert controller.total_entries() == a.total_installed()
        assert conformance_errors(controller, instance) == []

    def test_identity_transition_is_free(self, instance, placements):
        a, _ = placements
        controller = Controller(instance)
        controller.deploy(a)
        sent_before = controller.stats.messages()
        plan = controller.transition(a)
        assert len(plan) == 0
        assert controller.stats.messages() == sent_before

    def test_policy_update_transition(self, instance):
        """Transition across *instances*: one policy replaced."""
        from repro.policy.classbench import generate_policy_set
        from repro.policy.policy import PolicySet

        base = RulePlacer().place(instance)
        target_ingress = next(iter(instance.policies)).ingress
        new_policy = generate_policy_set(
            [target_ingress], rules_per_policy=8, seed=321
        )[target_ingress]
        policies = PolicySet(
            [new_policy if p.ingress == target_ingress else p
             for p in instance.policies]
        )
        new_instance = PlacementInstance(
            instance.topology, instance.routing, policies,
            dict(instance.capacities),
        )
        new_placement = RulePlacer().place(new_instance)
        assert new_placement.is_feasible

        controller = Controller(instance)
        controller.deploy(base)
        controller.transition(new_placement)
        assert conformance_errors(controller, new_instance) == []


class TestHitlessUpdates:
    def test_no_wrongful_drops_mid_transition(self, instance, placements):
        """Replay permitted packets between every op of a transition:
        none may be dropped at any intermediate state (the hard half of
        hitlessness; coverage gaps are allowed only on squeezed
        switches, which this scenario does not produce)."""
        a, b = placements
        controller = Controller(instance)
        controller.deploy(a)

        # Pre-compute witness packets that the policies PERMIT.
        rng = random.Random(5)
        witnesses = []
        for policy in instance.policies:
            width = policy.width
            for path in instance.routing.paths(policy.ingress):
                for rule in policy.permit_rules()[:3]:
                    header = rule.match.sample(rng)
                    if policy.evaluate(header) is rule.action:
                        witnesses.append((path, header, width))

        from repro.core.transition import OpKind, plan_transition

        plan = plan_transition(a, b)
        assert not plan.squeezed_switches
        old_instance = controller.current.instance
        for op in plan.ops:
            if op.kind is OpKind.INSTALL:
                controller._apply_install(op.rule, op.switch, b.instance)
            else:
                controller._apply_delete(op.rule, op.switch, old_instance)
            for path, header, width in witnesses:
                verdict = controller.dataplane.verdict(path, header, width)
                assert verdict is Verdict.DELIVERED, (op, hex(header))
