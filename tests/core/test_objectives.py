"""Tests for the alternative objective functions (Section IV-A4)."""

from __future__ import annotations

import pytest

from repro.core.instance import PlacementInstance
from repro.core.objectives import (
    Combined,
    SwitchCount,
    TotalRules,
    UpstreamDrops,
    WeightedSwitches,
)
from repro.core.placement import PlacerConfig, RulePlacer
from repro.core.verify import verify_placement
from repro.net.routing import Path, Routing
from repro.net.topology import Topology
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch


def rule(pattern: str, action: Action, priority: int) -> Rule:
    return Rule(TernaryMatch.from_string(pattern), action, priority)


@pytest.fixture
def line_instance():
    """in->a->b->c->out with ample capacity and a 2-rule policy."""
    topo = Topology()
    for name in ("a", "b", "c"):
        topo.add_switch(name, 10)
    topo.add_link("a", "b")
    topo.add_link("b", "c")
    topo.add_entry_port("in", "a")
    topo.add_entry_port("out", "c")
    policy = Policy("in", [
        rule("1***", Action.PERMIT, 2),
        rule("1*0*", Action.DROP, 1),
    ])
    routing = Routing([Path("in", "out", ("a", "b", "c"))])
    return PlacementInstance(topo, routing, PolicySet([policy]))


def place_with(instance, objective):
    return RulePlacer(PlacerConfig(objective=objective)).place(instance)


class TestUpstreamDrops:
    def test_prefers_ingress_switch(self, line_instance):
        placement = place_with(line_instance, UpstreamDrops())
        assert placement.switches_of(("in", 1)) == frozenset({"a"})
        assert verify_placement(placement).ok

    def test_downstream_forced_when_ingress_full(self, line_instance):
        line_instance.topology.set_capacity("a", 0)
        instance = PlacementInstance(
            line_instance.topology, line_instance.routing, line_instance.policies
        )
        placement = place_with(instance, UpstreamDrops())
        assert placement.switches_of(("in", 1)) == frozenset({"b"})

    def test_include_permits_flag(self, line_instance):
        """Without the flag, permit placement has zero weight; a pure
        upstream objective may park permits anywhere the dependency
        allows.  With it, permits are also pulled upstream."""
        placement = place_with(
            line_instance, UpstreamDrops(include_permits=True)
        )
        assert placement.switches_of(("in", 2)) == frozenset({"a"})


class TestWeightedSwitches:
    def test_steers_to_cheap_switch(self, line_instance):
        objective = WeightedSwitches.from_dict({"a": 5.0, "b": 1.0, "c": 5.0})
        placement = place_with(line_instance, objective)
        assert placement.switches_of(("in", 1)) == frozenset({"b"})
        assert verify_placement(placement).ok

    def test_default_weight(self, line_instance):
        objective = WeightedSwitches.from_dict({"a": 0.1}, default_weight=10.0)
        placement = place_with(line_instance, objective)
        assert placement.switches_of(("in", 1)) == frozenset({"a"})


class TestSwitchCount:
    def test_consolidates_onto_one_switch(self, line_instance):
        placement = place_with(line_instance, SwitchCount())
        used = {s for switches in placement.placed.values() for s in switches}
        assert len(used) == 1
        assert verify_placement(placement).ok


class TestCombined:
    def test_tie_break(self, line_instance):
        """Total-rules primary, upstream tie-break: among the minimal-
        size solutions, the drop must sit at the ingress."""
        objective = Combined(((1.0, TotalRules()), (0.01, UpstreamDrops())))
        placement = place_with(line_instance, objective)
        assert placement.total_installed() == 2
        assert placement.switches_of(("in", 1)) == frozenset({"a"})


class TestTotalRules:
    def test_is_default(self, line_instance):
        default = RulePlacer().place(line_instance)
        explicit = place_with(line_instance, TotalRules())
        assert default.total_installed() == explicit.total_installed() == 2
