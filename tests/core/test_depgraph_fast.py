"""Differential tests for the vectorized dependency-analysis fast path.

The packed-array overlap kernel, the memoized depgraph build, and the
kernel-backed policy analytics must all be *indistinguishable* from the
original quadratic pure-Python constructions -- same pairs, same edges,
same metrics, in the same order.  The reference implementation
(:func:`build_dependency_graph_reference`) is kept in-tree precisely to
serve as the oracle here.
"""

from __future__ import annotations

import random

import pytest

from repro.core.depgraph import (
    build_dependency_graph,
    build_dependency_graph_reference,
    clear_depgraph_cache,
    depgraph_cache_stats,
    ordering_pairs,
    policy_overlap_pairs,
)
from repro.policy.analysis import analyze_policy
from repro.policy.classbench import generate_policy_set
from repro.policy.policy import Policy
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch, overlapping_pairs

# Sizes straddling the small-batch cutoff below which the kernel uses
# the pure-Python scan, plus a size large enough to span many blocks.
_SIZES = [0, 1, 2, 5, 63, 64, 65, 200]
_WIDTHS = [4, 16, 64, 104]


def random_match(rng: random.Random, width: int,
                 wildcard_bias: float = 0.5) -> TernaryMatch:
    chars = []
    for _ in range(width):
        if rng.random() < wildcard_bias:
            chars.append("*")
        else:
            chars.append(rng.choice("01"))
    return TernaryMatch.from_string("".join(chars))


def random_policy(rng: random.Random, n: int, width: int) -> Policy:
    rules = [
        Rule(random_match(rng, width),
             Action.DROP if rng.random() < 0.4 else Action.PERMIT,
             priority=n - idx)
        for idx in range(n)
    ]
    return Policy("in", rules)


def brute_force_pairs(matches):
    return [
        (i, j)
        for i in range(len(matches))
        for j in range(i + 1, len(matches))
        if matches[i].intersects(matches[j])
    ]


class TestOverlapKernel:
    @pytest.mark.parametrize("width", _WIDTHS)
    @pytest.mark.parametrize("n", _SIZES)
    def test_matches_brute_force(self, n, width):
        rng = random.Random(n * 1000 + width)
        matches = [random_match(rng, width) for _ in range(n)]
        first, second = overlapping_pairs(matches)
        assert list(zip(first.tolist(), second.tolist())) == \
            brute_force_pairs(matches)

    def test_all_wildcards_every_pair_overlaps(self):
        matches = [TernaryMatch.from_string("*" * 8) for _ in range(70)]
        first, second = overlapping_pairs(matches)
        assert len(first) == 70 * 69 // 2

    def test_fully_specified_disjoint_values(self):
        # 70 distinct exact-match cubes: no pair intersects, and every
        # cube lands in a bucket rather than the mixed row set.
        matches = [
            TernaryMatch.from_string(format(i, "08b")) for i in range(70)
        ]
        first, second = overlapping_pairs(matches)
        assert len(first) == 0

    def test_duplicates_overlap(self):
        matches = [TernaryMatch.from_string("10*1")] * 66
        first, second = overlapping_pairs(matches)
        assert len(first) == 66 * 65 // 2

    def test_prefix_structured(self):
        # Prefix-style rules (ClassBench-like): care bits form prefixes,
        # so bucketing sees many shared short patterns.
        rng = random.Random(7)
        matches = []
        for _ in range(120):
            plen = rng.randrange(0, 33)
            value = rng.getrandbits(32)
            matches.append(TernaryMatch.from_prefix(32, value, plen))
        first, second = overlapping_pairs(matches)
        assert list(zip(first.tolist(), second.tolist())) == \
            brute_force_pairs(matches)


class TestDepgraphDifferential:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_policies_match_reference(self, seed):
        rng = random.Random(seed)
        policy = random_policy(rng, rng.choice([10, 80, 150]),
                               rng.choice(_WIDTHS[1:]))
        fast = build_dependency_graph(policy, use_cache=False)
        ref = build_dependency_graph_reference(policy)
        assert fast.ingress == ref.ingress
        assert fast.edges == ref.edges
        assert list(fast.edges) == list(ref.edges)  # same key order too

    def test_classbench_policies_match_reference(self):
        policies = generate_policy_set(["a", "b", "c"], 90, seed=3)
        for policy in policies:
            fast = build_dependency_graph(policy, use_cache=False)
            ref = build_dependency_graph_reference(policy)
            assert fast.edges == ref.edges

    def test_ordering_pairs_unchanged(self):
        policies = generate_policy_set(["a"], 80, seed=11)
        for policy in policies:
            ordered = policy.sorted_rules()
            expected = []
            for idx, lower in enumerate(ordered):
                for higher in ordered[:idx]:
                    if (higher.action is not lower.action
                            and higher.match.intersects(lower.match)):
                        expected.append((higher.priority, lower.priority))
            assert sorted(ordering_pairs(policy)) == sorted(expected)

    def test_policy_overlap_pairs_are_hi_lo_indices(self):
        policies = generate_policy_set(["a"], 70, seed=5)
        policy = next(iter(policies))
        ordered = policy.sorted_rules()
        for hi, lo in policy_overlap_pairs(ordered):
            assert hi < lo
            assert ordered[hi].priority > ordered[lo].priority
            assert ordered[hi].match.intersects(ordered[lo].match)


class TestAnalysisConsistency:
    @pytest.mark.parametrize("seed", range(4))
    def test_analyze_policy_matches_quadratic_reference(self, seed):
        policies = generate_policy_set(["x"], 100, seed=seed)
        policy = next(iter(policies))
        stats = analyze_policy(policy)

        # Reference: the original O(n^2) classification.
        ordered = policy.sorted_rules()
        dependency_edges = 0
        benign = 0
        shadowed = 0
        closures = {}
        for idx, rule in enumerate(ordered):
            if rule.is_drop:
                closures[idx] = 1
            higher_rules = ordered[:idx]
            if any(h.shadows(rule) for h in higher_rules):
                shadowed += 1
            for higher in higher_rules:
                if not higher.match.intersects(rule.match):
                    continue
                if rule.is_drop and higher.is_permit:
                    dependency_edges += 1
                    closures[idx] += 1
                elif higher.action is rule.action:
                    benign += 1
        assert stats.dependency_edges == dependency_edges
        assert stats.benign_overlaps == benign
        assert stats.shadowed_rules == shadowed
        assert stats.max_closure == max(closures.values(), default=0)


class TestMemoization:
    def setup_method(self):
        clear_depgraph_cache()

    def teardown_method(self):
        clear_depgraph_cache()

    def test_repeat_build_hits_cache(self):
        policies = generate_policy_set(["a"], 50, seed=1)
        policy = next(iter(policies))
        build_dependency_graph(policy)
        before = depgraph_cache_stats()
        graph = build_dependency_graph(policy)
        after = depgraph_cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert graph.edges == build_dependency_graph_reference(policy).edges

    def test_cache_keyed_by_content_not_identity(self):
        policies = generate_policy_set(["a"], 40, seed=2)
        policy = next(iter(policies))
        clone = Policy(policy.ingress, list(policy.rules),
                       policy.default_action)
        build_dependency_graph(policy)
        before = depgraph_cache_stats()
        build_dependency_graph(clone)
        assert depgraph_cache_stats()["hits"] == before["hits"] + 1

    def test_ingress_name_not_part_of_key_but_preserved(self):
        policies = generate_policy_set(["a"], 30, seed=3)
        policy = next(iter(policies))
        renamed = Policy("other", list(policy.rules), policy.default_action)
        build_dependency_graph(policy)
        graph = build_dependency_graph(renamed)
        assert graph.ingress == "other"
        assert depgraph_cache_stats()["hits"] == 1

    def test_content_change_misses(self):
        policies = generate_policy_set(["a"], 30, seed=4)
        policy = next(iter(policies))
        build_dependency_graph(policy)
        grown = Policy(policy.ingress, list(policy.rules) + [
            Rule(TernaryMatch.from_string("*" * policy.rules[0].match.width),
                 Action.DROP, priority=policy.next_priority_above()),
        ], policy.default_action)
        graph = build_dependency_graph(grown)
        assert depgraph_cache_stats()["misses"] == 2
        assert graph.edges == build_dependency_graph_reference(grown).edges

    def test_cached_copy_is_isolated(self):
        policies = generate_policy_set(["a"], 30, seed=5)
        policy = next(iter(policies))
        graph = build_dependency_graph(policy)
        graph.edges.clear()  # caller mutates its copy
        again = build_dependency_graph(policy)
        assert again.edges == build_dependency_graph_reference(policy).edges
