"""Tests for the satisfiability formulation (Section IV-D)."""

from __future__ import annotations

import random

import pytest

from repro.core.instance import PlacementInstance
from repro.core.placement import PlacerConfig, RulePlacer
from repro.core.satenc import SatPlacer, build_sat_encoding
from repro.core.verify import verify_placement
from repro.milp.model import SolveStatus
from repro.net.fattree import fattree
from repro.net.routing import Path, Routing, ShortestPathRouter
from repro.net.topology import Topology
from repro.policy.classbench import generate_policy_set
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch


def rule(pattern: str, action: Action, priority: int) -> Rule:
    return Rule(TernaryMatch.from_string(pattern), action, priority)


class TestSmallInstances:
    def test_figure3_sat_feasible_and_verified(self, figure3_instance):
        placement = SatPlacer().place(figure3_instance)
        assert placement.status is SolveStatus.FEASIBLE
        assert verify_placement(placement, simulate=True).ok

    def test_figure3_infeasible_detected(self, figure3_instance):
        figure3_instance.topology.set_uniform_capacity(1)
        instance = PlacementInstance(
            figure3_instance.topology,
            figure3_instance.routing,
            figure3_instance.policies,
        )
        placement = SatPlacer().place(instance)
        assert placement.status is SolveStatus.INFEASIBLE

    def test_pinning(self, figure3_instance):
        placement = SatPlacer().place(
            figure3_instance, fixed={(("l1", 1), "s3"): 1}
        )
        assert placement.status is SolveStatus.FEASIBLE
        assert "s3" in placement.switches_of(("l1", 1))

    def test_merging_in_sat(self):
        """Two identical single-rule policies through a shared capacity-1
        switch: SAT only via the Eq. 8 merge variables."""
        topo = Topology()
        for name, cap in (("sa", 0), ("sb", 0), ("mid", 1), ("dst", 0)):
            topo.add_switch(name, cap)
        topo.add_link("sa", "mid")
        topo.add_link("sb", "mid")
        topo.add_link("mid", "dst")
        topo.add_entry_port("a", "sa")
        topo.add_entry_port("b", "sb")
        topo.add_entry_port("o", "dst")
        shared = rule("1***", Action.DROP, 1)
        policies = PolicySet([Policy("a", [shared]), Policy("b", [shared])])
        routing = Routing([
            Path("a", "o", ("sa", "mid", "dst")),
            Path("b", "o", ("sb", "mid", "dst")),
        ])
        instance = PlacementInstance(topo, routing, policies)
        plain = SatPlacer().place(instance)
        merged = SatPlacer(enable_merging=True).place(instance)
        assert plain.status is SolveStatus.INFEASIBLE
        assert merged.status is SolveStatus.FEASIBLE
        assert merged.total_installed() == 1
        assert verify_placement(merged).ok


class TestIlpAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_feasibility_agrees_with_ilp(self, seed):
        """ILP and SAT decide the same feasibility question; on random
        fat-tree instances their answers must coincide."""
        rng = random.Random(seed)
        topo = fattree(4, capacity=rng.choice([4, 8, 20]))
        ports = [p.name for p in topo.entry_ports]
        ingresses = ports[:3]
        router = ShortestPathRouter(topo, seed=seed)
        routing = router.random_routing(6, ingresses=ingresses)
        policies = generate_policy_set(ingresses, rules_per_policy=8, seed=seed)
        instance = PlacementInstance(topo, routing, policies)

        ilp = RulePlacer().place(instance)
        sat = SatPlacer().place(instance)
        assert ilp.status.has_solution == sat.status.has_solution
        if sat.status.has_solution:
            assert verify_placement(sat).ok
            # SAT gives any feasible solution; never fewer rules than
            # the ILP optimum.
            assert sat.total_installed() >= ilp.total_installed()

    def test_encoding_statistics_exposed(self, figure3_instance):
        placement = SatPlacer().place(figure3_instance)
        assert placement.num_variables > 0
        assert placement.num_constraints > 0
        assert "conflicts" in placement.solver_stats


class TestEncodingShape:
    def test_variable_count_matches_domains(self, figure3_instance):
        encoding = build_sat_encoding(figure3_instance)
        assert len(encoding.var_of) == encoding.slices.num_variables()

    def test_pin_missing_variable_raises(self, figure3_instance):
        with pytest.raises(KeyError):
            build_sat_encoding(figure3_instance, fixed={(("l1", 99), "s1"): 1})
