"""Tests for safe transition planning between placements."""

from __future__ import annotations

import pytest

from repro.core.instance import PlacementInstance
from repro.core.placement import Placement, PlacerConfig, RulePlacer
from repro.core.transition import (
    OpKind,
    apply_plan,
    plan_transition,
)
from repro.core.verify import verify_placement
from repro.core.objectives import UpstreamDrops
from repro.experiments import ExperimentConfig, build_instance
from repro.milp.model import SolveStatus


@pytest.fixture(scope="module")
def instance():
    return build_instance(ExperimentConfig(
        k=4, num_paths=16, rules_per_policy=10, capacity=30,
        num_ingresses=6, seed=4, drop_fraction=0.5, nested_fraction=0.5,
    ))


@pytest.fixture(scope="module")
def two_placements(instance):
    """Two different-but-equivalent solutions of the same instance."""
    a = RulePlacer().place(instance)
    b = RulePlacer(PlacerConfig(objective=UpstreamDrops())).place(instance)
    assert a.is_feasible and b.is_feasible
    return a, b


class TestPlanStructure:
    def test_identity_transition_is_empty(self, two_placements):
        a, _ = two_placements
        plan = plan_transition(a, a)
        assert len(plan) == 0

    def test_apply_reaches_target(self, two_placements):
        a, b = two_placements
        plan = plan_transition(a, b)
        final = apply_plan(plan, a)
        assert final == {k: v for k, v in b.placed.items() if v}

    def test_reverse_plan_reaches_source(self, two_placements):
        a, b = two_placements
        back = plan_transition(b, a)
        final = apply_plan(back, b)
        assert final == {k: v for k, v in a.placed.items() if v}

    def test_op_counts(self, two_placements):
        a, b = two_placements
        plan = plan_transition(a, b)
        copies_a = {(k, s) for k, sw in a.placed.items() for s in sw}
        copies_b = {(k, s) for k, sw in b.placed.items() for s in sw}
        assert plan.num_installs() == len(copies_b - copies_a)
        assert plan.num_deletes() == len(copies_a - copies_b)


class TestSafety:
    def test_intermediate_states_preserve_semantics(self, instance,
                                                    two_placements):
        """Every prefix of the plan yields a dataplane that still drops
        everything the policy demands (extra drops never appear because
        PERMITs always precede their DROPs)."""
        a, b = two_placements
        plan = plan_transition(a, b)
        # Checking every prefix is O(n^2) verifications; sample prefixes.
        checkpoints = {0, len(plan) // 3, len(plan) // 2, len(plan) - 1,
                       len(plan)}
        state = {k: set(v) for k, v in a.placed.items()}
        for idx, op in enumerate(plan.ops, start=1):
            if op.kind is OpKind.INSTALL:
                state.setdefault(op.rule, set()).add(op.switch)
            else:
                state[op.rule].discard(op.switch)
            if idx in checkpoints:
                snapshot = Placement(
                    instance=instance, status=SolveStatus.FEASIBLE,
                    placed={k: frozenset(v) for k, v in state.items() if v},
                )
                # Capacity may transiently exceed on purpose.  Wrongful
                # drops must NEVER occur; missing coverage is only
                # tolerated on squeezed switches (documented
                # broken-before-made fallback).
                report = verify_placement(snapshot)
                wrongful = [
                    e for e in report.errors if "wrongly dropped" in e
                ]
                assert wrongful == [], (idx, wrongful)
                if not plan.squeezed_switches:
                    coverage = [
                        e for e in report.errors
                        if "capacity" not in e and "dependency" not in e
                    ]
                    assert coverage == [], (idx, coverage)

    def test_peak_occupancy_reported(self, two_placements):
        a, b = two_placements
        plan = plan_transition(a, b)
        loads_a = a.switch_loads()
        for switch, peak in plan.peak_occupancy.items():
            assert peak >= loads_a.get(switch, 0)

    def test_squeezed_switch_deletes_first(self, instance):
        """When a switch can't hold old+new, its deletes come first."""
        base = RulePlacer().place(instance)
        # Build a fake 'new' placement by shifting everything the
        # ingress switch holds onto the next hop, stressing that hop.
        plan = None
        alt = RulePlacer(PlacerConfig(objective=UpstreamDrops())).place(instance)
        plan = plan_transition(base, alt)
        for switch in plan.squeezed_switches:
            ops_on_switch = [op for op in plan.ops if op.switch == switch]
            first_install = next(
                (i for i, op in enumerate(ops_on_switch)
                 if op.kind is OpKind.INSTALL), None,
            )
            deletes_after = [
                op for op in ops_on_switch[first_install or 0:]
                if op.kind is OpKind.DELETE
            ]
            if first_install is not None:
                assert not deletes_after


class TestValidation:
    def test_different_switch_sets_rejected(self, instance, two_placements):
        a, _ = two_placements
        other = build_instance(ExperimentConfig(k=6, num_paths=8,
                                                rules_per_policy=4,
                                                num_ingresses=2, seed=1))
        foreign = RulePlacer().place(other)
        with pytest.raises(ValueError):
            plan_transition(a, foreign)
