"""Tests for monitoring-aware placement (paper future work, Section VII)."""

from __future__ import annotations

import pytest

from repro.core.instance import PlacementInstance
from repro.core.monitoring import (
    MonitorSpec,
    monitored_switch_set,
    monitoring_pins,
    validate_monitoring,
)
from repro.core.placement import PlacerConfig, RulePlacer
from repro.core.satenc import SatPlacer
from repro.core.verify import verify_placement
from repro.milp.model import SolveStatus
from repro.net.generators import line
from repro.net.routing import Path, Routing
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch


def rule(pattern: str, action: Action, priority: int) -> Rule:
    return Rule(TernaryMatch.from_string(pattern), action, priority)


@pytest.fixture
def line_instance():
    """in -> s0 -> s1 -> s2 -> out with a drop overlapping the monitor."""
    topo = line(3, capacity=10)
    policy = Policy("left0", [
        rule("1***", Action.DROP, 2),
        rule("0***", Action.DROP, 1),
    ])
    routing = Routing([Path("left0", "right0", ("s0", "s1", "s2"))])
    return PlacementInstance(topo, routing, PolicySet([policy]))


class TestPins:
    def test_overlapping_drop_pinned_upstream(self, line_instance):
        monitor = MonitorSpec("s1", TernaryMatch.from_string("11**"), "m")
        pins = monitoring_pins(line_instance, [monitor])
        # Drop 1*** overlaps the monitor; pinned off s0 only.
        assert pins == {(("left0", 2), "s0"): 0}

    def test_disjoint_drop_unconstrained(self, line_instance):
        monitor = MonitorSpec("s1", TernaryMatch.from_string("11**"))
        pins = monitoring_pins(line_instance, [monitor])
        assert (("left0", 1), "s0") not in pins

    def test_monitor_at_ingress_pins_nothing(self, line_instance):
        monitor = MonitorSpec("s0", TernaryMatch.wildcard(4))
        assert monitoring_pins(line_instance, [monitor]) == {}

    def test_monitor_off_path_pins_nothing(self, line_instance):
        topo = line_instance.topology
        topo.add_switch("s9", 10)
        topo.add_link("s0", "s9")
        monitor = MonitorSpec("s9", TernaryMatch.wildcard(4))
        assert monitoring_pins(line_instance, [monitor]) == {}

    def test_unknown_switch_raises(self, line_instance):
        with pytest.raises(KeyError):
            monitoring_pins(
                line_instance, [MonitorSpec("nope", TernaryMatch.wildcard(4))]
            )

    def test_width_mismatch_raises(self, line_instance):
        with pytest.raises(ValueError):
            monitoring_pins(
                line_instance, [MonitorSpec("s1", TernaryMatch.wildcard(9))]
            )

    def test_monitored_switch_set(self):
        monitors = [
            MonitorSpec("a", TernaryMatch.wildcard(4)),
            MonitorSpec("b", TernaryMatch.wildcard(4)),
            MonitorSpec("a", TernaryMatch.from_string("1***")),
        ]
        assert monitored_switch_set(monitors) == {"a", "b"}


class TestPlacementIntegration:
    def test_ilp_respects_monitor(self, line_instance):
        monitor = MonitorSpec("s2", TernaryMatch.from_string("1***"), "tap")
        pins = monitoring_pins(line_instance, [monitor])
        placement = RulePlacer().place(line_instance, fixed=pins)
        assert placement.status is SolveStatus.OPTIMAL
        # The overlapping drop may only sit on s2 now.
        assert placement.switches_of(("left0", 2)) == frozenset({"s2"})
        assert verify_placement(placement).ok
        assert validate_monitoring(line_instance, placement, [monitor]) == []

    def test_sat_respects_monitor(self, line_instance):
        monitor = MonitorSpec("s2", TernaryMatch.from_string("1***"))
        pins = monitoring_pins(line_instance, [monitor])
        placement = SatPlacer().place(line_instance, fixed=pins)
        assert placement.is_feasible
        assert validate_monitoring(line_instance, placement, [monitor]) == []

    def test_unmonitored_placement_flagged(self, line_instance):
        """A placement computed without the pins should violate."""
        monitor = MonitorSpec("s2", TernaryMatch.from_string("1***"))
        # Force the drop to the ingress (cheapest without pins).
        from repro.core.objectives import UpstreamDrops

        placement = RulePlacer(
            PlacerConfig(objective=UpstreamDrops())
        ).place(line_instance)
        errors = validate_monitoring(line_instance, placement, [monitor])
        assert errors
        assert "upstream of" in errors[0]

    def test_conflicting_monitor_makes_infeasible(self, line_instance):
        """Monitors on every downstream switch + zero capacity there
        leave nowhere legal: the engine must say infeasible, not
        silently break monitoring."""
        line_instance.topology.set_capacity("s1", 0)
        line_instance.topology.set_capacity("s2", 0)
        instance = PlacementInstance(
            line_instance.topology, line_instance.routing,
            line_instance.policies,
        )
        monitor = MonitorSpec("s2", TernaryMatch.from_string("1***"))
        pins = monitoring_pins(instance, [monitor])
        placement = RulePlacer().place(instance, fixed=pins)
        assert placement.status is SolveStatus.INFEASIBLE
