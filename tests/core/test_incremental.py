"""Tests for incremental deployment (Section IV-E / Experiment 5)."""

from __future__ import annotations

import pytest

from repro.core.incremental import IncrementalDeployer
from repro.core.instance import PlacementInstance
from repro.core.placement import Placement, RulePlacer
from repro.core.verify import verify_placement
from repro.milp.model import SolveStatus
from repro.net.fattree import fattree
from repro.net.routing import Path, Routing, ShortestPathRouter
from repro.policy.classbench import generate_policy_set
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch


def rule(pattern: str, action: Action, priority: int) -> Rule:
    return Rule(TernaryMatch.from_string(pattern), action, priority)


@pytest.fixture
def deployed_network():
    """A small fat-tree with a solved base placement and headroom."""
    topo = fattree(4, capacity=40)
    ports = [p.name for p in topo.entry_ports]
    ingresses = ports[:4]
    router = ShortestPathRouter(topo, seed=5)
    routing = router.random_routing(8, ingresses=ingresses)
    policies = generate_policy_set(ingresses, rules_per_policy=10, seed=5)
    instance = PlacementInstance(topo, routing, policies)
    base = RulePlacer().place(instance)
    assert base.is_feasible
    return topo, router, ports, base


class TestInstall:
    def test_greedy_install(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        before = deployer.total_installed()
        new_policy = generate_policy_set([ports[10]], rules_per_policy=6, seed=9)[ports[10]]
        path = router.shortest_path(ports[10], ports[0])
        result = deployer.install_policy(new_policy, [path])
        assert result.is_feasible
        assert result.method == "greedy"
        assert deployer.total_installed() > before
        assert verify_placement(deployer.as_placement()).ok

    def test_ilp_fallback(self, deployed_network):
        """Disable the heuristic: the sub-ILP must also succeed."""
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        new_policy = generate_policy_set([ports[10]], rules_per_policy=6, seed=9)[ports[10]]
        path = router.shortest_path(ports[10], ports[0])
        result = deployer.install_policy(new_policy, [path], try_greedy=False)
        assert result.is_feasible
        assert result.method == "ilp"
        assert verify_placement(deployer.as_placement()).ok

    def test_sat_engine_fallback(self, deployed_network):
        """The feasibility-only SAT engine also serves as the fallback."""
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base, engine="sat")
        new_policy = generate_policy_set([ports[10]], rules_per_policy=6, seed=9)[ports[10]]
        path = router.shortest_path(ports[10], ports[0])
        result = deployer.install_policy(new_policy, [path], try_greedy=False)
        assert result.is_feasible
        assert result.method == "sat"
        assert verify_placement(deployer.as_placement()).ok

    def test_unknown_engine_rejected(self, deployed_network):
        topo, router, ports, base = deployed_network
        with pytest.raises(ValueError):
            IncrementalDeployer(base, engine="quantum")

    def test_duplicate_ingress_rejected(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        existing = next(iter(base.instance.policies))
        with pytest.raises(ValueError):
            deployer.install_policy(existing, [])

    def test_infeasible_install_leaves_state_untouched(self, deployed_network):
        """A policy too large for the spare capacity is rejected whole."""
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        # 16 distinct singleton drops, but only 2 spare slots anywhere
        # on the target path.
        big = Policy(ports[10], [
            Rule(TernaryMatch.exact(4, i), Action.DROP, i + 1) for i in range(16)
        ])
        path = router.shortest_path(ports[10], ports[0])
        for switch in path.switches:
            deployer._loads[switch] = deployer.base_capacities[switch] - 2
        result = deployer.install_policy(big, [path])
        assert not result.is_feasible
        assert ports[10] not in deployer._state


class TestRemoveAndModify:
    def test_remove_frees_capacity(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        ingress = next(iter(base.instance.policies)).ingress
        before = deployer.total_installed()
        freed = deployer.remove_policy(ingress)
        assert freed > 0
        assert deployer.total_installed() == before - freed
        assert verify_placement(deployer.as_placement()).ok

    def test_modify_policy(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        ingress = next(iter(base.instance.policies)).ingress
        updated = generate_policy_set([ingress], rules_per_policy=8, seed=77)[ingress]
        result = deployer.modify_policy(updated)
        assert result.is_feasible
        combined = deployer.as_placement()
        assert verify_placement(combined).ok
        # The deployed policy for this ingress is the updated one.
        assert combined.instance.policies[ingress] is updated

    def test_modify_unknown_rejected(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        with pytest.raises(ValueError):
            deployer.modify_policy(Policy("nope"))


class TestReroute:
    def test_reroute_keeps_semantics(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        ingress = next(iter(base.instance.policies)).ingress
        new_paths = [
            router.shortest_path(ingress, ports[12]),
            router.shortest_path(ingress, ports[13]),
        ]
        result = deployer.reroute_policy(ingress, new_paths)
        assert result.is_feasible
        combined = deployer.as_placement()
        assert verify_placement(combined).ok
        assert set(combined.instance.routing.paths(ingress)) == set(new_paths)

    def test_reroute_rollback_on_infeasible(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        ingress = next(iter(base.instance.policies)).ingress
        old_installed = deployer.total_installed()
        # Construct an impossible target: a path of zero-spare switches.
        path = router.shortest_path(ingress, ports[12])
        for switch in path.switches:
            deployer._loads[switch] = deployer.base_capacities[switch]
        # Free only what this policy held (reroute does that), then ask
        # for the saturated path.
        result = deployer.reroute_policy(ingress, [path], try_greedy=True)
        if not result.is_feasible:
            # Rollback restored the original state.
            assert deployer.total_installed() == old_installed
            assert ingress in deployer._state
            assert verify_placement(deployer.as_placement()).ok


class TestBase:
    def test_requires_feasible_base(self, figure3_instance):
        infeasible = Placement(figure3_instance, SolveStatus.INFEASIBLE)
        with pytest.raises(ValueError):
            IncrementalDeployer(infeasible)

    def test_spare_capacity_accounting(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        expected = base.spare_capacities()
        assert deployer.spare_capacities() == expected
