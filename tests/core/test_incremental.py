"""Tests for incremental deployment (Section IV-E / Experiment 5)."""

from __future__ import annotations

import pytest

from repro.core.incremental import IncrementalDeployer
from repro.core.instance import PlacementInstance
from repro.core.placement import Placement, RulePlacer
from repro.core.verify import verify_placement
from repro.milp.model import SolveStatus
from repro.net.fattree import fattree
from repro.net.topology import Topology
from repro.net.routing import Path, Routing, ShortestPathRouter
from repro.policy.classbench import generate_policy_set
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch


def rule(pattern: str, action: Action, priority: int) -> Rule:
    return Rule(TernaryMatch.from_string(pattern), action, priority)


@pytest.fixture
def deployed_network():
    """A small fat-tree with a solved base placement and headroom."""
    topo = fattree(4, capacity=40)
    ports = [p.name for p in topo.entry_ports]
    ingresses = ports[:4]
    router = ShortestPathRouter(topo, seed=5)
    routing = router.random_routing(8, ingresses=ingresses)
    policies = generate_policy_set(ingresses, rules_per_policy=10, seed=5)
    instance = PlacementInstance(topo, routing, policies)
    base = RulePlacer().place(instance)
    assert base.is_feasible
    return topo, router, ports, base


class TestInstall:
    def test_greedy_install(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        before = deployer.total_installed()
        new_policy = generate_policy_set([ports[10]], rules_per_policy=6, seed=9)[ports[10]]
        path = router.shortest_path(ports[10], ports[0])
        result = deployer.install_policy(new_policy, [path])
        assert result.is_feasible
        assert result.method == "greedy"
        assert deployer.total_installed() > before
        assert verify_placement(deployer.as_placement()).ok

    def test_ilp_fallback(self, deployed_network):
        """Disable the heuristic: the sub-ILP must also succeed."""
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        new_policy = generate_policy_set([ports[10]], rules_per_policy=6, seed=9)[ports[10]]
        path = router.shortest_path(ports[10], ports[0])
        result = deployer.install_policy(new_policy, [path], try_greedy=False)
        assert result.is_feasible
        assert result.method == "ilp"
        assert verify_placement(deployer.as_placement()).ok

    def test_sat_engine_fallback(self, deployed_network):
        """The feasibility-only SAT engine also serves as the fallback."""
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base, engine="sat")
        new_policy = generate_policy_set([ports[10]], rules_per_policy=6, seed=9)[ports[10]]
        path = router.shortest_path(ports[10], ports[0])
        result = deployer.install_policy(new_policy, [path], try_greedy=False)
        assert result.is_feasible
        assert result.method == "sat"
        assert verify_placement(deployer.as_placement()).ok

    def test_unknown_engine_rejected(self, deployed_network):
        topo, router, ports, base = deployed_network
        with pytest.raises(ValueError):
            IncrementalDeployer(base, engine="quantum")

    def test_duplicate_ingress_rejected(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        existing = next(iter(base.instance.policies))
        with pytest.raises(ValueError):
            deployer.install_policy(existing, [])

    def test_infeasible_install_leaves_state_untouched(self, deployed_network):
        """A policy too large for the spare capacity is rejected whole."""
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        # 16 distinct singleton drops, but only 2 spare slots anywhere
        # on the target path.
        big = Policy(ports[10], [
            Rule(TernaryMatch.exact(4, i), Action.DROP, i + 1) for i in range(16)
        ])
        path = router.shortest_path(ports[10], ports[0])
        for switch in path.switches:
            deployer._loads[switch] = deployer.base_capacities[switch] - 2
        result = deployer.install_policy(big, [path])
        assert not result.is_feasible
        assert ports[10] not in deployer._state


class TestRemoveAndModify:
    def test_remove_frees_capacity(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        ingress = next(iter(base.instance.policies)).ingress
        before = deployer.total_installed()
        freed = deployer.remove_policy(ingress)
        assert freed > 0
        assert deployer.total_installed() == before - freed
        assert verify_placement(deployer.as_placement()).ok

    def test_modify_policy(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        ingress = next(iter(base.instance.policies)).ingress
        updated = generate_policy_set([ingress], rules_per_policy=8, seed=77)[ingress]
        result = deployer.modify_policy(updated)
        assert result.is_feasible
        combined = deployer.as_placement()
        assert verify_placement(combined).ok
        # The deployed policy for this ingress is the updated one.
        assert combined.instance.policies[ingress] is updated

    def test_modify_unknown_rejected(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        with pytest.raises(ValueError):
            deployer.modify_policy(Policy("nope"))


class TestReroute:
    def test_reroute_keeps_semantics(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        ingress = next(iter(base.instance.policies)).ingress
        new_paths = [
            router.shortest_path(ingress, ports[12]),
            router.shortest_path(ingress, ports[13]),
        ]
        result = deployer.reroute_policy(ingress, new_paths)
        assert result.is_feasible
        combined = deployer.as_placement()
        assert verify_placement(combined).ok
        assert set(combined.instance.routing.paths(ingress)) == set(new_paths)

    def test_reroute_rollback_on_infeasible(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        ingress = next(iter(base.instance.policies)).ingress
        old_installed = deployer.total_installed()
        # Construct an impossible target: a path of zero-spare switches.
        path = router.shortest_path(ingress, ports[12])
        for switch in path.switches:
            deployer._loads[switch] = deployer.base_capacities[switch]
        # Free only what this policy held (reroute does that), then ask
        # for the saturated path.
        result = deployer.reroute_policy(ingress, [path], try_greedy=True)
        if not result.is_feasible:
            # Rollback restored the original state.
            assert deployer.total_installed() == old_installed
            assert ingress in deployer._state
            assert verify_placement(deployer.as_placement()).ok


def _two_switch_deployer():
    """An empty deployed network on two unit-capacity switches.

    ``in1`` enters at ``s1``; ``out1`` exits at ``s2``, ``out2`` at
    ``s1`` -- so a path can be confined to ``s1`` alone via ``out2``.
    """
    topo = Topology()
    topo.add_switch("s1", 1)
    topo.add_switch("s2", 1)
    topo.add_link("s1", "s2")
    topo.add_entry_port("in1", "s1")
    topo.add_entry_port("out1", "s2")
    topo.add_entry_port("out2", "s1")
    base = RulePlacer().place(PlacementInstance(topo, Routing(), PolicySet()))
    assert base.is_feasible
    return IncrementalDeployer(base)


class TestFallbackLadder:
    """The ISSUE's fallback order: greedy, then sub-ILP, then report
    infeasible -- each stage observable through ``result.method``."""

    def test_greedy_failure_falls_through_to_sub_ilp(self):
        """First-fit greedy starves the ingress switch; the sub-ILP
        places globally and succeeds where greedy gave up."""
        deployer = _two_switch_deployer()
        # Path 1 spans both switches but only carries flow 00; path 2
        # is confined to s1 and carries flow 01.
        long_path = Path("in1", "out1", ("s1", "s2"),
                         TernaryMatch.from_string("00"))
        short_path = Path("in1", "out2", ("s1",),
                          TernaryMatch.from_string("01"))
        policy = Policy("in1", [
            rule("00", Action.DROP, 1),   # only relevant to the long path
            rule("01", Action.DROP, 2),   # only placeable on s1
        ])
        # Greedy walks path 1 first and burns s1 (closest to ingress)
        # on the 00-drop, leaving nothing for the 01-drop that *must*
        # sit on s1; the sub-ILP instead puts 00 on s2 and 01 on s1.
        result = deployer.install_policy(policy, [long_path, short_path])
        assert result.is_feasible
        assert result.method == "ilp"
        assert result.placed[("in1", 1)] == frozenset({"s2"})
        assert result.placed[("in1", 2)] == frozenset({"s1"})
        assert verify_placement(deployer.as_placement()).ok

    def test_ladder_exhausted_reports_infeasible(self):
        """Both stages fail: two drops forced onto one unit-capacity
        switch.  The sub-ILP's verdict is reported, nothing commits."""
        deployer = _two_switch_deployer()
        short_path = Path("in1", "out2", ("s1",))
        policy = Policy("in1", [
            rule("00", Action.DROP, 1),
            rule("01", Action.DROP, 2),
        ])
        before = deployer.total_installed()
        result = deployer.install_policy(policy, [short_path])
        assert not result.is_feasible
        assert result.method == "ilp"      # the last stage that ran
        assert result.status is SolveStatus.INFEASIBLE
        assert "in1" not in deployer._state
        assert deployer.total_installed() == before

    def test_greedy_runs_before_sub_ilp(self, deployed_network, monkeypatch):
        """Stage order is observable: greedy is consulted first, and
        its failure (None) is what triggers the sub-solver."""
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        calls = []
        original_greedy = deployer._greedy_place
        original_sub = deployer._sub_ilp

        def spy_greedy(policy, paths, graph=None):
            calls.append("greedy")
            original_greedy(policy, paths, graph)  # would succeed...
            return None                            # ...but report failure
        def spy_sub(policy, paths, time_limit, depgraphs=None):
            calls.append("ilp")
            return original_sub(policy, paths, time_limit,
                                depgraphs=depgraphs)

        monkeypatch.setattr(deployer, "_greedy_place", spy_greedy)
        monkeypatch.setattr(deployer, "_sub_ilp", spy_sub)
        new_policy = generate_policy_set(
            [ports[10]], rules_per_policy=6, seed=9)[ports[10]]
        path = router.shortest_path(ports[10], ports[0])
        result = deployer.install_policy(new_policy, [path])
        assert calls == ["greedy", "ilp"]
        assert result.is_feasible
        assert result.method == "ilp"

    def test_spare_exhaustion_then_recovery(self, deployed_network):
        """With every switch saturated the whole ladder fails; freeing
        a deployed policy restores exactly enough spare to reinstall."""
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        for switch in deployer.base_capacities:
            deployer._loads[switch] = deployer.base_capacities[switch]
        assert all(v == 0 for v in deployer.spare_capacities().values())
        victim = next(iter(base.instance.policies))
        paths = list(base.instance.routing.paths(victim.ingress))
        new_policy = generate_policy_set(
            [ports[10]], rules_per_policy=4, seed=11)[ports[10]]
        result = deployer.install_policy(
            new_policy, [router.shortest_path(ports[10], victim.ingress)])
        assert not result.is_feasible
        assert result.method == "ilp"
        # Remove the victim: its slots come back, and the victim itself
        # can be reinstalled into the freed spare capacity.
        freed = deployer.remove_policy(victim.ingress)
        assert freed > 0
        retry = deployer.install_policy(victim, paths)
        assert retry.is_feasible


class TestPreviewCommit:
    """The serving layer's split: compute in a worker (preview), apply
    in the daemon (commit) -- previews must never touch live state."""

    def test_preview_install_is_side_effect_free(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        before_installed = deployer.total_installed()
        before_spare = deployer.spare_capacities()
        new_policy = generate_policy_set(
            [ports[10]], rules_per_policy=6, seed=9)[ports[10]]
        path = router.shortest_path(ports[10], ports[0])
        result = deployer.preview_install(new_policy, [path])
        assert result.is_feasible
        assert ports[10] not in deployer._state
        assert deployer.total_installed() == before_installed
        assert deployer.spare_capacities() == before_spare

    def test_commit_applies_previewed_placement(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        new_policy = generate_policy_set(
            [ports[10]], rules_per_policy=6, seed=9)[ports[10]]
        path = router.shortest_path(ports[10], ports[0])
        result = deployer.preview_install(new_policy, [path])
        deployer.commit_install(new_policy, [path], result.placed)
        assert ports[10] in deployer._state
        assert verify_placement(deployer.as_placement()).ok
        with pytest.raises(ValueError):
            deployer.commit_install(new_policy, [path], result.placed)

    def test_preview_reroute_restores_state(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        ingress = next(iter(base.instance.policies)).ingress
        before_installed = deployer.total_installed()
        before_paths = deployer._state[ingress][1]
        result = deployer.preview_reroute(
            ingress, [router.shortest_path(ingress, ports[12])])
        assert result.is_feasible
        assert deployer.total_installed() == before_installed
        assert deployer._state[ingress][1] == before_paths
        # Applying the preview swaps the placement in.
        deployer.apply_reroute(
            ingress, [router.shortest_path(ingress, ports[12])],
            result.placed)
        assert verify_placement(deployer.as_placement()).ok

    def test_preview_modify_restores_state(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        ingress = next(iter(base.instance.policies)).ingress
        original = deployer._state[ingress][0]
        updated = generate_policy_set(
            [ingress], rules_per_policy=8, seed=77)[ingress]
        result = deployer.preview_modify(updated)
        assert result.is_feasible
        assert deployer._state[ingress][0] is original
        deployer.apply_modify(updated, result.placed)
        assert deployer._state[ingress][0] is updated
        assert verify_placement(deployer.as_placement()).ok


class TestBase:
    def test_requires_feasible_base(self, figure3_instance):
        infeasible = Placement(figure3_instance, SolveStatus.INFEASIBLE)
        with pytest.raises(ValueError):
            IncrementalDeployer(infeasible)

    def test_spare_capacity_accounting(self, deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        expected = base.spare_capacities()
        assert deployer.spare_capacities() == expected


class TestSessionDepgraphReuse:
    """Satellite regression: warm deltas must not recompute dependency
    graphs.  The deployer resolves each policy's graph through the
    session's pinned digest-keyed cache, so after the first delta the
    per-delta ``depgraph_ms`` is (near) zero."""

    def _session_deployer(self, deployed_network):
        from repro.solve.session import SolverSession

        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        session = SolverSession()
        deployer.attach_session(session)
        return deployer, session, router, ports

    def test_depgraph_cached_across_warm_deltas(self, deployed_network):
        deployer, session, router, ports = self._session_deployer(
            deployed_network)
        new_policy = generate_policy_set(
            [ports[10]], rules_per_policy=8, seed=9)[ports[10]]
        path_a = router.shortest_path(ports[10], ports[0])
        path_b = router.shortest_path(ports[10], ports[1])

        first = deployer.install_policy(new_policy, [path_a],
                                        try_greedy=False)
        assert first.is_feasible
        # The first delta builds the session entry cold...
        assert first.solver_stats["compile"]["warm"] is False
        assert session.depgraphs.stats()["misses"] == 1

        # Re-deltas on the same policy content: graph comes from the
        # pinned cache, never recomputed.
        for target in (path_b, path_a, path_b):
            result = deployer.reroute_policy(ports[10], [target],
                                             try_greedy=False)
            assert result.is_feasible
            compile_stats = result.solver_stats["compile"]
            assert compile_stats["warm"] is True
            # Cache hit: bounded far below any real recomputation
            # (building this graph cold costs ~1ms+; a dict hit ~1us).
            assert compile_stats["depgraph_ms"] < 0.5, compile_stats
        stats = session.depgraphs.stats()
        assert stats["misses"] == 1
        assert stats["hits"] >= 3

    def test_cold_deployer_still_reports_depgraph_time(self,
                                                       deployed_network):
        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base)
        new_policy = generate_policy_set(
            [ports[10]], rules_per_policy=8, seed=9)[ports[10]]
        path = router.shortest_path(ports[10], ports[0])
        result = deployer.install_policy(new_policy, [path],
                                         try_greedy=False)
        assert result.is_feasible
        compile_stats = result.solver_stats["compile"]
        # No session: no warm-hit flag, but compile timing is there.
        assert compile_stats.get("warm") is not True
        assert "depgraph_ms" in compile_stats

    def test_attach_requires_ilp_engine(self, deployed_network):
        from repro.solve.session import SolverSession

        topo, router, ports, base = deployed_network
        deployer = IncrementalDeployer(base, engine="sat")
        with pytest.raises(ValueError):
            deployer.attach_session(SolverSession())


class TestChurnCycles:
    """Rapid install -> remove -> reinstall of the *same* ingress.

    The cache controller's hot pattern: one ingress's cached policy is
    installed, evicted, and reinstalled (possibly with different rule
    subsets) many times per run.  The deployer must account spare
    capacity exactly and keep its digest an exact function of the
    deployed state, no matter how many cycles have passed.
    """

    def _fresh(self, deployed_network):
        topo, router, ports, base = deployed_network
        policy = generate_policy_set(
            [ports[10]], rules_per_policy=8, seed=11)[ports[10]]
        path = router.shortest_path(ports[10], ports[0])
        return IncrementalDeployer(base), policy, path

    def test_capacity_accounting_is_exact_over_cycles(
            self, deployed_network):
        deployer, policy, path = self._fresh(deployed_network)
        baseline_spares = deployer.spare_capacities()
        baseline_total = deployer.total_installed()
        for _ in range(10):
            result = deployer.preview_install(policy, [path])
            assert result.is_feasible
            deployer.commit_install(policy, [path], result.placed)
            assert deployer.total_installed() == (
                baseline_total + result.installed_rules)
            freed = deployer.remove_policy(policy.ingress)
            assert freed == result.installed_rules
            # Every cycle returns to the exact baseline, switch by
            # switch -- no leaked or double-freed slots.
            assert deployer.spare_capacities() == baseline_spares
            assert deployer.total_installed() == baseline_total

    def test_digest_is_a_pure_function_of_state(self, deployed_network):
        deployer, policy, path = self._fresh(deployed_network)
        empty_digest = deployer.state_digest()
        result = deployer.preview_install(policy, [path])
        deployer.commit_install(policy, [path], result.placed)
        installed_digest = deployer.state_digest()
        assert installed_digest != empty_digest
        for _ in range(5):
            deployer.remove_policy(policy.ingress)
            assert deployer.state_digest() == empty_digest
            again = deployer.preview_install(policy, [path])
            assert again.is_feasible
            deployer.commit_install(policy, [path], again.placed)
            assert deployer.state_digest() == installed_digest

    def test_reinstall_with_shrunk_policy(self, deployed_network):
        """Eviction's shape: same ingress reinstalls a rule *subset*."""
        deployer, policy, path = self._fresh(deployed_network)
        deployer.install_policy(policy, [path])
        full_installed = deployer.total_installed()
        # Evict a DROP: drops (plus shields) are what occupy TCAM, so
        # removing one must strictly shrink the installed footprint.
        victim = policy.drop_rules()[-1]
        shrunk = Policy(
            ingress=policy.ingress,
            rules=[r for r in policy.sorted_rules() if r is not victim],
            default_action=policy.default_action,
        )
        result = deployer.preview_modify(shrunk)
        assert result.is_feasible
        deployer.apply_modify(shrunk, result.placed)
        assert deployer.total_installed() < full_installed
        assert deployer.deployed_policy(policy.ingress) is shrunk
        assert verify_placement(deployer.as_placement()).ok

    def test_preview_install_rejects_live_ingress_every_cycle(
            self, deployed_network):
        deployer, policy, path = self._fresh(deployed_network)
        for _ in range(3):
            deployer.install_policy(policy, [path])
            with pytest.raises(ValueError):
                deployer.preview_install(policy, [path])
            deployer.remove_policy(policy.ingress)

    def test_accessors_follow_the_cycle(self, deployed_network):
        deployer, policy, path = self._fresh(deployed_network)
        with pytest.raises(ValueError):
            deployer.deployed_paths(policy.ingress)
        with pytest.raises(ValueError):
            deployer.placed_of(policy.ingress)
        deployer.install_policy(policy, [path])
        assert deployer.deployed_paths(policy.ingress) == (path,)
        placed = deployer.placed_of(policy.ingress)
        assert placed
        # The accessor hands out a copy, not the live map.
        placed.clear()
        assert deployer.placed_of(policy.ingress)
        deployer.remove_policy(policy.ingress)
        with pytest.raises(ValueError):
            deployer.deployed_paths(policy.ingress)

    def test_session_epoch_survives_cycles(self, deployed_network):
        """Warm sessions across churn: the pinned depgraph cache keeps
        serving one content digest across every reinstall, and an
        explicit epoch bump is the only thing that invalidates warm
        entries -- churn alone must not."""
        from repro.solve.session import SolverSession

        deployer, policy, path = self._fresh(deployed_network)
        session = SolverSession()
        deployer.attach_session(session)
        for _ in range(4):
            result = deployer.install_policy(policy, [path],
                                             try_greedy=False)
            assert result.is_feasible
            deployer.remove_policy(policy.ingress)
        stats = session.depgraphs.stats()
        assert stats["misses"] == 1
        assert stats["hits"] >= 3
        assert session.epoch == 0
        session.bump_epoch()
        assert session.epoch == 1
        # Post-bump churn still works (cold rebuild on next touch).
        result = deployer.install_policy(policy, [path], try_greedy=False)
        assert result.is_feasible
        assert verify_placement(deployer.as_placement()).ok
