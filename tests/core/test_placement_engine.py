"""End-to-end placement tests, including the paper's Fig. 3 example."""

from __future__ import annotations

import pytest

from repro.core.instance import PlacementInstance
from repro.core.placement import PlacerConfig, RulePlacer
from repro.core.verify import verify_placement
from repro.milp.bnb import BranchAndBoundBackend
from repro.milp.model import SolveStatus
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch


class TestFigure3:
    """Paper Fig. 3: capacity 2 per switch, a 3-rule policy, two paths
    s1-s2-s3 and s1-s2-s4-s5.  The drop r13 cannot co-habit with the
    r11/r12 pair anywhere (capacity 2), so it must be replicated on
    both branches -- exactly the published solution shape."""

    def test_shared_prefix_beats_replication(self, figure3_instance):
        """The optimum shares r13 on the common prefix (s1/s2): the
        {r11, r12} pair fills one shared switch, r13 the other -- 3
        rules total, one better than the paper's illustrated solution
        that replicates r13 on s3 and s5."""
        placement = RulePlacer().place(figure3_instance)
        assert placement.status is SolveStatus.OPTIMAL
        # r12 depends on r11 (overlap, higher priority): co-located.
        r12_switches = placement.switches_of(("l1", 2))
        r11_switches = placement.switches_of(("l1", 3))
        assert r12_switches <= r11_switches
        # r13 covers both paths from the shared prefix.
        r13_switches = placement.switches_of(("l1", 1))
        assert any(s in {"s1", "s2", "s3"} for s in r13_switches)
        assert any(s in {"s1", "s2", "s4", "s5"} for s in r13_switches)
        assert placement.total_installed() == 3
        assert verify_placement(placement).ok

    def test_replication_forced_off_prefix(self, figure3_instance):
        """Starving the shared prefix (C=0 on s1/s2) forces the paper's
        illustrated shape: full copies on each branch, r13 replicated."""
        topo = figure3_instance.topology
        topo.set_capacity("s1", 0)
        topo.set_capacity("s2", 0)
        for name in ("s3", "s4", "s5"):
            topo.set_capacity(name, 3)
        instance = PlacementInstance(
            topo, figure3_instance.routing, figure3_instance.policies
        )
        placement = RulePlacer().place(instance)
        assert placement.status is SolveStatus.OPTIMAL
        r13_switches = placement.switches_of(("l1", 1))
        assert "s3" in r13_switches
        assert r13_switches & {"s4", "s5"}
        assert placement.total_installed() == 6
        assert verify_placement(placement).ok

    def test_verification_with_simulation(self, figure3_instance):
        placement = RulePlacer().place(figure3_instance)
        report = verify_placement(placement, simulate=True)
        assert report.ok, report.errors

    def test_infeasible_when_capacity_one(self, figure3_instance):
        for switch in figure3_instance.topology.switches:
            switch.capacity = 1
        instance = PlacementInstance(
            figure3_instance.topology,
            figure3_instance.routing,
            figure3_instance.policies,
        )
        placement = RulePlacer().place(instance)
        assert placement.status is SolveStatus.INFEASIBLE
        assert not placement.is_feasible
        assert placement.placed == {}


class TestObjectiveOptimality:
    def test_ingress_optimal_when_capacity_allows(self, figure3_topology,
                                                  figure3_routing, figure3_policy):
        """With plenty of capacity everything fits at the ingress (the
        paper notes the greedy solution is not precluded)."""
        figure3_topology.set_uniform_capacity(10)
        instance = PlacementInstance(
            figure3_topology, figure3_routing, PolicySet([figure3_policy])
        )
        placement = RulePlacer().place(instance)
        assert placement.status is SolveStatus.OPTIMAL
        assert placement.total_installed() == 3


class TestPipelineOptions:
    def test_redundancy_preprocessing_shrinks_problem(self, figure3_topology,
                                                      figure3_routing):
        policy = Policy("l1", [
            Rule(TernaryMatch.from_string("1***"), Action.PERMIT, 4),
            Rule(TernaryMatch.from_string("1*0*"), Action.DROP, 3),
            # Shadowed duplicate of the drop:
            Rule(TernaryMatch.from_string("1*0*"), Action.DROP, 2),
        ])
        figure3_topology.set_uniform_capacity(10)
        instance = PlacementInstance(
            figure3_topology, figure3_routing, PolicySet([policy])
        )
        with_pass = RulePlacer(PlacerConfig(remove_redundancy=True)).place(instance)
        without = RulePlacer().place(instance)
        assert with_pass.total_installed() < without.total_installed()
        assert verify_placement(with_pass).ok

    def test_alternate_backend(self, figure3_instance):
        placement = RulePlacer(
            PlacerConfig(backend=BranchAndBoundBackend())
        ).place(figure3_instance)
        assert placement.status is SolveStatus.OPTIMAL
        assert placement.total_installed() == 3
        assert verify_placement(placement).ok


class TestAccounting:
    def test_switch_loads_and_spares(self, figure3_instance):
        placement = RulePlacer().place(figure3_instance)
        loads = placement.switch_loads()
        assert sum(loads.values()) == placement.total_installed()
        spares = placement.spare_capacities()
        for switch, spare in spares.items():
            assert spare == figure3_instance.capacity(switch) - loads.get(switch, 0)
            assert spare >= 0
        assert placement.capacity_violations() == {}

    def test_overhead_metrics(self, figure3_instance):
        placement = RulePlacer().place(figure3_instance)
        # 3 required rules, 3 installed -> 0% overhead.
        assert placement.required_rules() == 3
        assert placement.duplication_overhead() == pytest.approx(0.0)
        assert placement.duplication_overhead(relative_to="all") == pytest.approx(0.0)
        with pytest.raises(ValueError):
            placement.duplication_overhead(relative_to="bogus")

    def test_overhead_positive_when_replicating(self, figure3_instance):
        topo = figure3_instance.topology
        topo.set_capacity("s1", 0)
        topo.set_capacity("s2", 0)
        for name in ("s3", "s4", "s5"):
            topo.set_capacity(name, 3)
        instance = PlacementInstance(
            topo, figure3_instance.routing, figure3_instance.policies
        )
        placement = RulePlacer().place(instance)
        # 6 installed over 3 required: +100% duplication overhead.
        assert placement.duplication_overhead() == pytest.approx(1.0)

    def test_summary_strings(self, figure3_instance):
        placement = RulePlacer().place(figure3_instance)
        assert "installed" in placement.summary()
        assert "optimal" in placement.summary()


class TestTimeLimitSurfacing:
    """RulePlacer must surface a backend's TIME_LIMIT incumbent as a
    usable placement (status honest, rules extracted)."""

    class IncumbentOnTimeoutBackend:
        """Fake backend: solves exactly, then downgrades the status to
        TIME_LIMIT as if the clock had expired post-incumbent."""

        name = "fake-timeout"

        def solve(self, model, time_limit=None):
            from repro.milp.scipy_backend import ScipyMilpBackend

            result = ScipyMilpBackend().solve(model)
            result.status = SolveStatus.TIME_LIMIT
            return result

    def test_time_limit_incumbent_is_extracted(self, figure3_instance):
        placement = RulePlacer(PlacerConfig(
            backend=self.IncumbentOnTimeoutBackend()
        )).place(figure3_instance)
        assert placement.status is SolveStatus.TIME_LIMIT
        assert placement.is_feasible
        assert placement.objective_value is not None
        assert placement.placed, "incumbent assignment must be extracted"
        assert verify_placement(placement).ok

    def test_time_limit_without_incumbent_is_infeasible(self, figure3_instance):
        class EmptyTimeoutBackend:
            name = "fake-empty-timeout"

            def solve(self, model, time_limit=None):
                from repro.milp.model import SolveResult

                return SolveResult(SolveStatus.TIME_LIMIT)

        placement = RulePlacer(PlacerConfig(
            backend=EmptyTimeoutBackend()
        )).place(figure3_instance)
        assert placement.status is SolveStatus.TIME_LIMIT
        assert not placement.is_feasible
        assert placement.placed == {}
