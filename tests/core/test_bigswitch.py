"""Tests for the Big Switch abstraction and refinement checking."""

from __future__ import annotations

import pytest

from repro.core.bigswitch import BigSwitch, check_refinement
from repro.core.instance import PlacementInstance
from repro.core.placement import Placement, RulePlacer
from repro.milp.model import SolveStatus
from repro.net.routing import Path, Routing
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch


@pytest.fixture
def spec(figure3_policy, figure3_routing):
    return BigSwitch(PolicySet([figure3_policy]), figure3_routing)


class TestSpecSemantics:
    def test_evaluate(self, spec):
        assert spec.evaluate("l1", 0b1000) is Action.PERMIT   # 1*** permit
        assert spec.evaluate("l1", 0b0101) is Action.DROP     # 0*** drop

    def test_egresses_of_permitted(self, spec):
        egresses = spec.egresses_of("l1", 0b1111)
        assert set(egresses) == {"l2", "l3"}

    def test_egresses_of_dropped_is_empty(self, spec):
        assert spec.egresses_of("l1", 0b0000) == ()

    def test_flow_descriptors_restrict_egresses(self, figure3_policy):
        routing = Routing([
            Path("l1", "l2", ("s1", "s2", "s3"),
                 flow=TernaryMatch.from_string("1***")),
            Path("l1", "l3", ("s1", "s2", "s4", "s5"),
                 flow=TernaryMatch.from_string("11**")),
        ])
        spec = BigSwitch(PolicySet([figure3_policy]), routing)
        assert spec.egresses_of("l1", 0b1011) == ("l2",)
        assert set(spec.egresses_of("l1", 0b1100)) == {"l2", "l3"}

    def test_drop_region_matches_policy(self, spec, figure3_policy):
        assert spec.drop_region("l1").equals(figure3_policy.drop_region())

    def test_describe(self, spec):
        text = spec.describe()
        assert "1 ingress policies" in text and "2 paths" in text


class TestRefinement:
    def test_solver_output_refines_spec(self, spec, figure3_instance):
        placement = RulePlacer().place(figure3_instance)
        report = check_refinement(spec, figure3_instance, placement,
                                  simulate=True)
        assert report.ok, report.errors

    def test_mismatched_ingresses_rejected(self, spec, figure3_topology,
                                           figure3_routing):
        other_policies = PolicySet([Policy("somewhere_else")])
        instance = PlacementInstance(
            figure3_topology, figure3_routing, other_policies
        )
        placement = Placement(instance, SolveStatus.FEASIBLE)
        report = check_refinement(spec, instance, placement)
        assert not report.ok
        assert "ingresses" in report.errors[0]

    def test_divergent_policy_rejected(self, spec, figure3_topology,
                                       figure3_routing):
        different = Policy("l1", [
            Rule(TernaryMatch.from_string("****"), Action.DROP, 1),
        ])
        instance = PlacementInstance(
            figure3_topology, figure3_routing, PolicySet([different])
        )
        placement = RulePlacer().place(instance)
        report = check_refinement(spec, instance, placement)
        assert not report.ok
        assert any("differs" in e for e in report.errors)

    def test_semantically_equal_policy_accepted(self, figure3_topology,
                                                figure3_routing,
                                                figure3_policy):
        """A different-but-equivalent policy object is a valid spec
        pairing (refinement is semantic, not syntactic)."""
        # Same rules, plus a redundant shadowed duplicate.
        clone_rules = list(figure3_policy.rules) + [
            Rule(TernaryMatch.from_string("1*0*"), Action.DROP, 0),
        ]
        clone = Policy("l1", clone_rules)
        spec = BigSwitch(PolicySet([clone]), figure3_routing)
        instance = PlacementInstance(
            figure3_topology, figure3_routing, PolicySet([figure3_policy])
        )
        placement = RulePlacer().place(instance)
        report = check_refinement(spec, instance, placement)
        assert report.ok, report.errors
