"""Tests for capacity planning."""

from __future__ import annotations

import pytest

from repro.core.capacity import layer_requirements, min_uniform_capacity
from repro.core.instance import PlacementInstance
from repro.core.placement import PlacerConfig, RulePlacer
from repro.experiments import ExperimentConfig, build_instance


@pytest.fixture(scope="module")
def instance():
    return build_instance(ExperimentConfig(
        k=4, num_paths=24, rules_per_policy=15, capacity=100,
        num_ingresses=8, seed=6, drop_fraction=0.5, nested_fraction=0.5,
    ))


class TestMinUniformCapacity:
    def test_tightness(self, instance):
        """The reported minimum is feasible; one less is not."""
        plan = min_uniform_capacity(instance, hi=100)
        assert plan.found
        c = plan.minimum_capacity
        assert plan.placement.is_feasible

        below = RulePlacer().place(PlacementInstance(
            instance.topology, instance.routing, instance.policies,
            {name: c - 1 for name in instance.capacities},
        ))
        assert not below.is_feasible

        at = RulePlacer().place(PlacementInstance(
            instance.topology, instance.routing, instance.policies,
            {name: c for name in instance.capacities},
        ))
        assert at.is_feasible

    def test_unreachable_interval(self, instance):
        plan = min_uniform_capacity(instance, hi=1)
        assert not plan.found
        assert plan.minimum_capacity is None

    def test_merging_never_needs_more(self, instance):
        """Merging only relaxes capacity pressure."""
        from repro.experiments import build_instance as bi

        shared = build_instance(ExperimentConfig(
            k=4, num_paths=16, rules_per_policy=10, capacity=100,
            num_ingresses=6, seed=6, blacklist_rules=3,
        ))
        plain = min_uniform_capacity(shared, hi=80)
        merged = min_uniform_capacity(shared, hi=80, enable_merging=True)
        assert plain.found and merged.found
        assert merged.minimum_capacity <= plain.minimum_capacity

    def test_history_brackets(self, instance):
        plan = min_uniform_capacity(instance, hi=100)
        for capacity, feasible in plan.history:
            if feasible:
                assert capacity >= plan.minimum_capacity
            else:
                assert capacity < plan.minimum_capacity

    def test_probe_count_logarithmic(self, instance):
        plan = min_uniform_capacity(instance, hi=100)
        assert plan.probes <= 9  # 1 + ceil(log2(101))

    def test_invalid_interval(self, instance):
        with pytest.raises(ValueError):
            min_uniform_capacity(instance, hi=5, lo=10)


class TestLayerRequirements:
    def test_layers_reported(self, instance):
        placement = RulePlacer().place(instance)
        profile = layer_requirements(placement)
        assert set(profile) <= {"edge", "aggregation", "core"}
        loads = placement.switch_loads()
        assert max(profile.values()) == max(loads.values())

    def test_edge_binds_for_ingress_heavy_workloads(self, instance):
        """With ample capacity, rules sit at the ingress edge."""
        placement = RulePlacer().place(instance)
        profile = layer_requirements(placement)
        assert profile.get("edge", 0) >= profile.get("core", 0)
