"""Tests for anti-entropy reconciliation and the degradation ladder."""

from __future__ import annotations

import pytest

from repro.core.controller import Controller
from repro.core.placement import PlacerConfig, RulePlacer
from repro.core.reconcile import Reconciler, ReconcileStage
from repro.dataplane.channel import ChannelConfig, ControlChannel
from repro.dataplane.messages import FlowMod, FlowModCommand
from repro.dataplane.switch import TableAction, TcamEntry
from repro.policy.ternary import TernaryMatch


def _placer() -> RulePlacer:
    return RulePlacer(PlacerConfig(backend="portfolio", executor="inline"))


@pytest.fixture
def deployed(figure3_instance):
    placement = _placer().place(figure3_instance)
    assert placement.is_feasible
    channel = ControlChannel()
    controller = Controller(figure3_instance, channel=channel)
    controller.deploy(placement)
    return controller, channel


class TestAudit:
    def test_clean_network_audits_clean(self, deployed):
        controller, _ = deployed
        audits = Reconciler(controller).audit()
        assert set(audits) == set(controller.channel.agents)
        assert all(a.clean for a in audits.values())
        assert all(a.drift() == 0 for a in audits.values())

    def test_audit_requires_deploy(self, figure3_instance):
        with pytest.raises(RuntimeError):
            Reconciler(Controller(figure3_instance)).audit()

    def test_missing_entries_detected(self, deployed):
        controller, channel = deployed
        victim = next(s for s, t in channel.tables().items() if t.occupancy())
        lost = channel.tables()[victim].entries[0]
        channel.tables()[victim].clear()
        audits = Reconciler(controller).audit()
        assert not audits[victim].clean
        assert lost in audits[victim].missing
        assert audits[victim].unexpected == ()

    def test_unexpected_entries_detected(self, deployed):
        controller, channel = deployed
        rogue = TcamEntry(TernaryMatch.from_string("01**"),
                          TableAction.FORWARD, priority=999)
        channel.tables()["s2"]._entries.append(rogue)
        channel.tables()["s2"]._sorted = False
        audits = Reconciler(controller).audit()
        assert rogue in audits["s2"].unexpected

    def test_mutated_slot_counts_as_missing_not_unexpected(self, deployed):
        """Same (match, priority) slot, wrong content: one overwriting
        re-ADD repairs it, no delete needed."""
        controller, channel = deployed
        victim = next(s for s, t in channel.tables().items() if t.occupancy())
        table = channel.tables()[victim]
        entry = table.entries[0]
        mutated = TcamEntry(entry.match, entry.action, entry.priority,
                            tags=frozenset({1234}), origin=entry.origin)
        table._entries[list(table.entries).index(entry)] = mutated
        audits = Reconciler(controller).audit()
        assert entry in audits[victim].missing
        assert audits[victim].unexpected == ()

    def test_partitioned_switch_unreachable(self, deployed):
        controller, channel = deployed
        controller.retry_limit = 2
        controller.flush_round_budget = 30
        channel.partition("s3")
        audits = Reconciler(controller).audit()
        assert not audits["s3"].reachable
        assert all(a.reachable for s, a in audits.items() if s != "s3")


class TestRepair:
    def test_repairs_rebooted_switch(self, deployed):
        controller, channel = deployed
        victim = next(s for s, t in channel.tables().items() if t.occupancy())
        channel.reboot(victim)
        assert channel.tables()[victim].default_action is TableAction.DROP
        reconciler = Reconciler(controller)
        report = reconciler.reconcile()
        assert report.converged
        assert report.stage is ReconcileStage.REPAIRED
        table = channel.tables()[victim]
        intended = controller.dataplane.tables[victim]
        assert set(table.entries) == set(intended.entries)
        assert table.default_action is TableAction.FORWARD

    def test_repair_removes_rogue_entries(self, deployed):
        controller, channel = deployed
        rogue = TcamEntry(TernaryMatch.from_string("01**"),
                          TableAction.FORWARD, priority=999)
        channel.tables()["s2"]._entries.append(rogue)
        channel.tables()["s2"]._sorted = False
        report = Reconciler(controller).reconcile()
        assert report.converged
        assert rogue not in channel.tables()["s2"].entries

    def test_clean_network_is_a_noop(self, deployed):
        controller, _ = deployed
        sent_before = controller.stats.messages()
        report = Reconciler(controller).reconcile()
        assert report.stage is ReconcileStage.CLEAN
        assert report.converged
        assert report.repairs_sent == 0
        assert controller.stats.messages() == sent_before

    def test_repair_converges_over_lossy_channel(self, figure3_instance):
        placement = _placer().place(figure3_instance)
        channel = ControlChannel(ChannelConfig(
            drop_rate=0.3, duplicate_rate=0.15, reorder_rate=0.2,
            max_delay=2, seed=13,
        ))
        controller = Controller(figure3_instance, channel=channel)
        controller.deploy(placement)
        victim = next(s for s, t in channel.tables().items() if t.occupancy())
        channel.reboot(victim)
        report = Reconciler(controller).reconcile()
        assert report.converged
        audits = Reconciler(controller).audit()
        assert all(a.clean for a in audits.values())


class TestDegradationLadder:
    def test_partition_short_circuits(self, deployed):
        """Drift purely behind a partition is reported PARTITIONED, not
        hammered with repairs or degraded further."""
        controller, channel = deployed
        controller.retry_limit = 2
        controller.flush_round_budget = 30
        victim = next(s for s, t in channel.tables().items() if t.occupancy())
        channel.reboot(victim)
        channel.partition(victim)
        report = Reconciler(controller).reconcile()
        assert report.stage is ReconcileStage.PARTITIONED
        assert not report.converged
        assert victim in report.unreachable()
        # After healing, the ordinary ladder converges.
        channel.heal(victim)
        report = Reconciler(controller).reconcile()
        assert report.converged
        assert report.stage is ReconcileStage.REPAIRED

    def test_persistent_sabotage_walks_the_ladder(self, deployed):
        """A switch that un-applies every repair forces the ladder past
        incremental repair; the run must still end in a deliberate
        stage, never an exception."""
        controller, channel = deployed
        victim = next(s for s, t in channel.tables().items() if t.occupancy())
        channel.reboot(victim)
        agent = channel.agent(victim)
        original_receive = agent.receive

        def sabotaged(message):
            replies = original_receive(message)
            if isinstance(message, FlowMod):
                agent.table.clear()  # lie: ack, then forget
            return replies

        agent.receive = sabotaged
        report = Reconciler(controller, max_repair_attempts=2).reconcile()
        assert report.stage in (ReconcileStage.REDEPLOYED,
                                ReconcileStage.FAILED_CLOSED,
                                ReconcileStage.CLAMPED)
        if report.stage is ReconcileStage.CLAMPED:
            # Terminal rung: the network fails closed, not open.
            assert not report.converged
            assert (channel.tables()[victim].default_action
                    is TableAction.DROP)

    def test_telemetry_recorded_in_solver_stats(self, deployed):
        controller, channel = deployed
        victim = next(s for s, t in channel.tables().items() if t.occupancy())
        channel.reboot(victim)
        report = Reconciler(controller).reconcile()
        summary = controller.current.solver_stats["reconcile"]
        assert summary["stage"] == report.stage.value
        assert summary["converged"] is True
        assert summary["passes"] == report.passes
        steps = [s["step"] for s in summary["steps"]]
        assert "audit" in steps and "repair" in steps
