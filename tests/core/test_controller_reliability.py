"""Controller behaviour over an unreliable control channel.

The hardened controller must converge the live switch state to its
intended (shadow) state through drops, duplicates, reordering, and
delay; abort-and-rollback transitions that cannot complete; and
classify switches that stop answering.
"""

from __future__ import annotations

import pytest

from repro.core.controller import (
    Controller,
    FaultClass,
    SwitchDeadError,
    TransitionAborted,
)
from repro.core.instance import PlacementInstance
from repro.core.placement import PlacerConfig, RulePlacer
from repro.dataplane.channel import ChannelConfig, ControlChannel
from repro.dataplane.simulator import Verdict
from repro.policy.rule import Action


def _placer() -> RulePlacer:
    return RulePlacer(PlacerConfig(backend="portfolio", executor="inline"))


@pytest.fixture
def fig3(figure3_instance):
    placement = _placer().place(figure3_instance)
    assert placement.is_feasible
    return figure3_instance, placement


def _lossy(seed: int = 0, **overrides) -> ControlChannel:
    rates = dict(drop_rate=0.25, duplicate_rate=0.15, reorder_rate=0.2,
                 max_delay=3, seed=seed)
    rates.update(overrides)
    return ControlChannel(ChannelConfig(**rates))


def _live_matches_intended(controller: Controller) -> bool:
    live = controller.live_tables()
    for switch, table in controller.dataplane.tables.items():
        if set(table.entries) != set(live[switch].entries):
            return False
    return True


class TestLossyDeploy:
    @pytest.mark.parametrize("seed", range(8))
    def test_deploy_converges_through_faults(self, fig3, seed):
        instance, placement = fig3
        controller = Controller(instance, channel=_lossy(seed))
        controller.deploy(placement)
        assert controller.pending_count() == 0
        assert _live_matches_intended(controller)

    def test_retransmissions_counted(self, fig3):
        instance, placement = fig3
        controller = Controller(instance, channel=_lossy(1, drop_rate=0.5))
        controller.deploy(placement)
        assert controller.stats.retransmissions > 0
        assert controller.stats.acks_received > 0

    def test_perfect_channel_needs_no_retries(self, fig3):
        instance, placement = fig3
        controller = Controller(instance)
        controller.deploy(placement)
        assert controller.stats.retransmissions == 0

    def test_duplicated_messages_apply_once(self, fig3):
        instance, placement = fig3
        channel = _lossy(2, drop_rate=0.0, duplicate_rate=0.6)
        controller = Controller(instance, channel=channel)
        controller.deploy(placement)
        assert _live_matches_intended(controller)
        # The audit log records each unique message exactly once, so
        # installs_sent still equals the placement's footprint.
        assert controller.stats.installs_sent == placement.total_installed()


class TestFailureClassification:
    def test_partitioned_switch_classified_dead(self, fig3):
        instance, placement = fig3
        channel = ControlChannel()
        controller = Controller(instance, channel=channel,
                                retry_limit=2, flush_round_budget=30)
        controller.deploy(placement)
        channel.partition("s2")
        controller._post(
            __import__("repro.dataplane.messages", fromlist=["Barrier"])
            .Barrier("s2")
        )
        outcome = controller.flush()
        assert not outcome.complete
        assert outcome.classification["s2"] is FaultClass.SWITCH_DEAD
        assert "s2" in controller.dead_switches

    def test_dead_switch_recovers_on_heal(self, fig3):
        from repro.dataplane.messages import Barrier

        instance, placement = fig3
        channel = ControlChannel()
        controller = Controller(instance, channel=channel,
                                retry_limit=2, flush_round_budget=30)
        controller.deploy(placement)
        channel.partition("s2")
        controller._post(Barrier("s2"))
        controller.flush()
        channel.heal("s2")
        outcome = controller.flush()
        assert outcome.complete
        assert controller.dead_switches == set()

    def test_deploy_raises_when_switch_unreachable(self, fig3):
        instance, placement = fig3
        channel = ControlChannel()
        channel_switch = sorted(
            s for switches in placement.placed.values() for s in switches
        )[0]
        from repro.dataplane.switch import SwitchTable
        for s in instance.topology.switch_names:
            channel.attach(s, SwitchTable(s, instance.capacity(s)))
        channel.partition(channel_switch)
        controller = Controller(instance, channel=channel,
                                retry_limit=2, flush_round_budget=30)
        with pytest.raises(SwitchDeadError):
            controller.deploy(placement)


@pytest.fixture(scope="module")
def fat_instance():
    from repro.experiments import ExperimentConfig, build_instance

    return build_instance(ExperimentConfig(
        k=4, num_paths=12, rules_per_policy=8, capacity=30,
        num_ingresses=4, seed=8, drop_fraction=0.5, nested_fraction=0.5,
    ))


@pytest.fixture(scope="module")
def fat_placements(fat_instance):
    from repro.core.objectives import UpstreamDrops

    a = RulePlacer().place(fat_instance)
    b = RulePlacer(PlacerConfig(objective=UpstreamDrops())).place(fat_instance)
    assert a.is_feasible and b.is_feasible
    return a, b


class TestLossyTransition:
    @pytest.mark.parametrize("seed", range(6))
    def test_transition_converges_through_faults(self, fat_instance,
                                                 fat_placements, seed):
        a, b = fat_placements
        controller = Controller(fat_instance, channel=_lossy(seed))
        controller.deploy(a)
        controller.transition(b)
        controller.flush()
        assert controller.pending_count() == 0
        assert _live_matches_intended(controller)
        assert controller.stats.transitions == 1

    @pytest.mark.parametrize("seed", range(6))
    def test_fail_closed_throughout_lossy_transition(self, fat_instance,
                                                     fat_placements, seed):
        """At every delivery instant of a lossy transition, no packet
        the policy drops is deliverable on the live dataplane."""
        import random

        a, b = fat_placements
        channel = _lossy(seed)
        controller = Controller(fat_instance, channel=channel)
        controller.deploy(a)

        rng = random.Random(seed)
        witnesses = []
        for policy in fat_instance.policies:
            width = policy.width
            for path in fat_instance.routing.paths(policy.ingress):
                for rule in policy.rules:
                    if rule.action is not Action.DROP:
                        continue
                    region = rule.match
                    if path.flow is not None:
                        region = region.intersection(path.flow)
                        if region is None:
                            continue
                    header = region.sample(rng)
                    if policy.evaluate(header) is Action.DROP:
                        witnesses.append((path, header, width))
        assert witnesses
        violations = []

        def oracle(_message):
            live = controller.live_dataplane()
            for path, header, width in witnesses:
                if live.verdict(path, header, width) is Verdict.DELIVERED:
                    violations.append((path.egress, header))

        channel.on_deliver = oracle
        controller.transition(b)
        controller.flush()
        assert violations == []


class TestCapacityAbortRollback:
    """A transition that hits a table-capacity wall mid-flight must
    roll back completely and leave the dataplane packet-consistent."""

    def _squeeze(self, instance: PlacementInstance) -> PlacementInstance:
        return PlacementInstance(
            instance.topology, instance.routing, instance.policies,
            capacities=dict(instance.capacities),
        )

    def _verdicts(self, controller, instance, policy):
        width = policy.width
        headers = list(range(2 ** width))
        out = []
        for path in instance.routing.paths(policy.ingress):
            for header in headers:
                out.append(controller.dataplane.verdict(path, header, width))
        return out

    def test_rollback_restores_packet_behaviour(self, figure3_instance,
                                                figure3_policy):
        a = _placer().place(figure3_instance)
        controller = Controller(figure3_instance)
        controller.deploy(a)
        before = self._verdicts(controller, figure3_instance, figure3_policy)
        occupancy_before = controller.occupancy()

        # A target placement whose install phase cannot fit: shrink the
        # live tables' headroom by filling capacity out from under it.
        relaxed = PlacementInstance(
            figure3_instance.topology, figure3_instance.routing,
            figure3_instance.policies,
            capacities={s: 6 for s in figure3_instance.topology.switch_names},
        )
        b = _placer().place(relaxed)
        assert b.is_feasible
        # The shadow tables still have figure3's capacity 2: the
        # make-before-break install phase must overflow somewhere.
        with pytest.raises(TransitionAborted):
            controller.transition(b)

        assert controller.stats.aborted_transitions == 1
        assert controller.stats.transitions == 0
        assert controller.current is a
        assert controller.occupancy() == occupancy_before
        after = self._verdicts(controller, figure3_instance, figure3_policy)
        assert after == before
        # The live switches agree with the restored shadow state.
        controller.flush()
        assert _live_matches_intended(controller)

    def test_unreachable_switch_aborts_transition(self, figure3_instance,
                                                  figure3_policy):
        a = _placer().place(figure3_instance)
        relaxed = PlacementInstance(
            figure3_instance.topology, figure3_instance.routing,
            figure3_instance.policies,
            capacities={s: 6 for s in figure3_instance.topology.switch_names},
        )
        b = _placer().place(relaxed)
        channel = ControlChannel()
        controller = Controller(figure3_instance, channel=channel,
                                retry_limit=2, flush_round_budget=30)
        controller.deploy(a)
        before = self._verdicts(controller, figure3_instance, figure3_policy)
        # Partition a switch the new placement needs, then heal it for
        # the rollback (the inverses must be deliverable).
        target = sorted(set().union(*b.placed.values()))[0]
        channel.partition(target)
        with pytest.raises(TransitionAborted):
            controller.transition(b)
        channel.heal(target)
        controller.flush()
        after = self._verdicts(controller, figure3_instance, figure3_policy)
        assert after == before
        assert controller.current is a
        assert _live_matches_intended(controller)


class TestXidUniqueness:
    def test_all_logged_messages_carry_unique_xids(self, fig3):
        instance, placement = fig3
        controller = Controller(instance, channel=_lossy(5))
        controller.deploy(placement)
        xids = [m.xid for m in controller.log.messages]
        assert 0 not in xids
        assert len(xids) == len(set(xids))

    def test_log_refuses_duplicate_xid(self):
        from repro.dataplane.messages import Barrier, MessageLog

        log = MessageLog()
        first = log.record(Barrier("s1"))
        with pytest.raises(ValueError):
            log.record(Barrier("s1", xid=first.xid))
