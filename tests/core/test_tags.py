"""Tests for ingress tagging and switch-table synthesis (IV-A5)."""

from __future__ import annotations

import pytest

from repro.core.instance import PlacementInstance
from repro.core.placement import PlacerConfig, RulePlacer
from repro.core.tags import assign_tags, synthesize
from repro.dataplane.switch import TableAction
from repro.milp.model import SolveStatus
from repro.net.routing import Path, Routing
from repro.net.topology import Topology
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch


def rule(pattern: str, action: Action, priority: int) -> Rule:
    return Rule(TernaryMatch.from_string(pattern), action, priority)


class TestAssignTags:
    def test_deterministic_and_dense(self, figure3_instance):
        tags = assign_tags(figure3_instance)
        assert tags == {"l1": 0}

    def test_sorted_by_ingress(self):
        topo = Topology()
        topo.add_switch("s", 10)
        topo.add_entry_port("b", "s")
        topo.add_entry_port("a", "s")
        policies = PolicySet([Policy("b"), Policy("a")])
        instance = PlacementInstance(topo, Routing(), policies)
        assert assign_tags(instance) == {"a": 0, "b": 1}


class TestSynthesize:
    def test_infeasible_rejected(self, figure3_instance):
        from repro.core.placement import Placement

        placement = Placement(figure3_instance, SolveStatus.INFEASIBLE)
        with pytest.raises(ValueError):
            synthesize(placement)

    def test_tables_respect_capacity_and_loads(self, figure3_instance):
        placement = RulePlacer().place(figure3_instance)
        dataplane = synthesize(placement)
        loads = placement.switch_loads()
        for switch, table in dataplane.tables.items():
            assert table.occupancy() == loads[switch]
            assert table.occupancy() <= figure3_instance.capacity(switch)

    def test_priorities_respect_policy_order(self, figure3_instance):
        """Where r11 (permit) and r12 (drop) share a table, r11 must
        have the higher install priority."""
        placement = RulePlacer().place(figure3_instance)
        dataplane = synthesize(placement)
        for table in dataplane.tables.values():
            by_match = {}
            for entry in table.entries:
                by_match[entry.match.to_string()] = entry.priority
            if "1***" in by_match and "1*0*" in by_match:
                assert by_match["1***"] > by_match["1*0*"]

    def test_entry_tags_and_actions(self, figure3_instance):
        placement = RulePlacer().place(figure3_instance)
        dataplane = synthesize(placement)
        tags = dataplane.ingress_tags
        for table in dataplane.tables.values():
            for entry in table.entries:
                assert entry.tags == frozenset({tags["l1"]})
                assert entry.action in (TableAction.DROP, TableAction.FORWARD)

    def test_merged_entry_carries_tag_union(self):
        topo = Topology()
        for name, cap in (("sa", 0), ("sb", 0), ("mid", 1), ("dst", 0)):
            topo.add_switch(name, cap)
        topo.add_link("sa", "mid")
        topo.add_link("sb", "mid")
        topo.add_link("mid", "dst")
        topo.add_entry_port("a", "sa")
        topo.add_entry_port("b", "sb")
        topo.add_entry_port("o", "dst")
        shared = rule("1***", Action.DROP, 1)
        policies = PolicySet([Policy("a", [shared]), Policy("b", [shared])])
        routing = Routing([
            Path("a", "o", ("sa", "mid", "dst")),
            Path("b", "o", ("sb", "mid", "dst")),
        ])
        instance = PlacementInstance(topo, routing, policies)
        placement = RulePlacer(PlacerConfig(enable_merging=True)).place(instance)
        assert placement.status is SolveStatus.OPTIMAL
        dataplane = synthesize(placement)
        table = dataplane.tables["mid"]
        assert table.occupancy() == 1
        entry = table.entries[0]
        assert entry.tags == frozenset({0, 1})
        assert len(entry.origin) == 2

    def test_simulation_through_synthesized_tables(self, figure3_instance):
        placement = RulePlacer().place(figure3_instance)
        dataplane = synthesize(placement)
        mismatches = dataplane.check_routing_sampled(
            list(figure3_instance.policies), figure3_instance.routing, seed=1,
            samples_per_rule=32,
        )
        assert mismatches == []


class TestOrderingProperty:
    def test_synthesized_priorities_respect_all_ordering_pairs(self):
        """For every significant (overlapping, different-action) pair of
        one policy present on a switch, install priorities agree with
        policy priorities -- across random generated instances."""
        from repro.core.depgraph import ordering_pairs
        from repro.core.placement import PlacerConfig
        from repro.experiments import ExperimentConfig, build_instance

        for seed in range(6):
            instance = build_instance(ExperimentConfig(
                k=4, num_paths=12, rules_per_policy=8, capacity=25,
                num_ingresses=4, seed=seed, blacklist_rules=2,
            ))
            placement = RulePlacer(
                PlacerConfig(enable_merging=True)
            ).place(instance)
            if not placement.is_feasible:
                continue
            dataplane = synthesize(placement)
            tags = dataplane.ingress_tags
            for policy in instance.policies:
                pairs = list(ordering_pairs(policy))
                tag = tags[policy.ingress]
                for switch, table in dataplane.tables.items():
                    prio_of = {}
                    for entry in table.entries:
                        if entry.tags is None or tag not in entry.tags:
                            continue
                        for rule in policy.rules:
                            if rule.match == entry.match:
                                prio_of.setdefault(rule.priority, entry.priority)
                    for higher, lower in pairs:
                        if higher in prio_of and lower in prio_of:
                            assert prio_of[higher] > prio_of[lower], (
                                seed, switch, policy.ingress, higher, lower
                            )
