"""Tests for cross-policy rule merging (Section IV-B), including the
Fig. 5 circular-dependency scenario."""

from __future__ import annotations

import pytest

from repro.core.depgraph import build_dependency_graph
from repro.core.instance import PlacementInstance
from repro.core.merging import build_merge_plan
from repro.core.slicing import build_slices
from repro.net.routing import Path, Routing
from repro.net.topology import Topology
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch


def rule(pattern: str, action: Action, priority: int) -> Rule:
    return Rule(TernaryMatch.from_string(pattern), action, priority)


def shared_switch_instance(policies):
    """All ingresses route through one shared switch 'mid'."""
    topo = Topology()
    topo.add_switch("mid", 100)
    outs = []
    for idx, policy in enumerate(policies):
        src = f"src{idx}"
        topo.add_switch(src, 100)
        topo.add_link(src, "mid")
        topo.add_entry_port(policy.ingress, src)
    topo.add_switch("dst", 100)
    topo.add_link("mid", "dst")
    topo.add_entry_port("out", "dst")
    routing = Routing([
        Path(p.ingress, "out", (f"src{i}", "mid", "dst"))
        for i, p in enumerate(policies)
    ])
    return PlacementInstance(topo, routing, PolicySet(policies))


def plan_for(policies):
    instance = shared_switch_instance(policies)
    graphs = {p.ingress: build_dependency_graph(p) for p in instance.policies}
    slices = build_slices(instance, graphs)
    return build_merge_plan(instance, slices), instance


class TestGrouping:
    def test_identical_rules_grouped(self):
        policies = [
            Policy("a", [rule("1***", Action.DROP, 1)]),
            Policy("b", [rule("1***", Action.DROP, 5)]),
        ]
        plan, _ = plan_for(policies)
        assert plan.num_groups() == 1
        group = plan.groups[0]
        assert set(group.members) == {("a", 1), ("b", 5)}

    def test_action_must_match(self):
        policies = [
            Policy("a", [rule("1***", Action.DROP, 1)]),
            Policy("b", [rule("1***", Action.PERMIT, 1),
                         rule("1*0*", Action.DROP, 0)]),
        ]
        plan, _ = plan_for(policies)
        matches = [g for g in plan.groups
                   if g.match == TernaryMatch.from_string("1***")]
        assert matches == []

    def test_same_policy_rules_never_merge_together(self):
        policies = [
            Policy("a", [rule("1***", Action.DROP, 2),
                         rule("1***", Action.DROP, 1)]),
            Policy("b", [rule("1***", Action.DROP, 1)]),
        ]
        plan, _ = plan_for(policies)
        assert plan.num_groups() == 1
        group = plan.groups[0]
        # Only the highest-priority copy of policy a joins.
        assert set(group.members) == {("a", 2), ("b", 1)}

    def test_per_switch_projection(self):
        policies = [
            Policy("a", [rule("1***", Action.DROP, 1)]),
            Policy("b", [rule("1***", Action.DROP, 1)]),
        ]
        plan, _ = plan_for(policies)
        gid = plan.groups[0].gid
        # Only the shared switches can host the merged entry.
        assert set(plan.switches_of(gid)) == {"mid", "dst"}

    def test_mergeable_keys(self):
        policies = [
            Policy("a", [rule("1***", Action.DROP, 1)]),
            Policy("b", [rule("1***", Action.DROP, 1)]),
        ]
        plan, _ = plan_for(policies)
        assert plan.mergeable_keys() == frozenset({("a", 1), ("b", 1)})


class TestFigure5CircularDependency:
    """The paper's Fig. 5: r1 permit / r2 drop ordered oppositely in
    policy C; merging all three copies of r2 would need r2 both above
    and below r1 in the shared table."""

    def build(self):
        # src 10.0.0.0/16-style overlap compressed to 8 bits:
        # r1 permit 10**..., r2 drop 1***... with overlap.
        r1 = rule("10**", Action.PERMIT, 0)  # placeholder priority
        r2 = rule("1***", Action.DROP, 0)
        pol_a = Policy("A", [r1.with_priority(2), r2.with_priority(1),
                             rule("0***", Action.DROP, 0)])
        pol_b = Policy("B", [r1.with_priority(2), r2.with_priority(1),
                             rule("0***", Action.DROP, 0)])
        # C reverses the order: r2 above r1.
        pol_c = Policy("C", [r2.with_priority(2), r1.with_priority(1),
                             rule("0***", Action.DROP, 0)])
        return [pol_a, pol_b, pol_c]

    def test_cycle_broken_by_eviction(self):
        plan, _ = plan_for(self.build())
        # The majority orientation (A, B) survives; C's conflicting
        # member is evicted from one of the two conflicting groups.
        assert plan.evicted, "expected at least one evicted member"
        evicted_ingresses = {key[0] for key in plan.evicted}
        assert evicted_ingresses == {"C"}

    def test_surviving_groups_are_order_consistent(self):
        plan, instance = plan_for(self.build())
        # For every pair of groups with overlapping matches and
        # different actions, all shared policies must agree on order.
        for g1 in plan.groups:
            for g2 in plan.groups:
                if g1.gid >= g2.gid:
                    continue
                if g1.action is g2.action or not g1.match.intersects(g2.match):
                    continue
                orientations = set()
                members2 = dict(g2.members)
                for ingress, prio1 in g1.members:
                    prio2 = members2.get(ingress)
                    if prio2 is not None:
                        orientations.add(prio1 > prio2)
                assert len(orientations) <= 1, (g1, g2)


class TestNoMergeScenarios:
    def test_single_policy_no_groups(self):
        plan, _ = plan_for([Policy("a", [rule("1***", Action.DROP, 1)])])
        assert plan.num_groups() == 0

    def test_distinct_matches_no_groups(self):
        policies = [
            Policy("a", [rule("1***", Action.DROP, 1)]),
            Policy("b", [rule("0***", Action.DROP, 1)]),
        ]
        plan, _ = plan_for(policies)
        assert plan.num_groups() == 0

    def test_disjoint_paths_no_shared_switches(self):
        """Identical rules whose policies share no switch can't merge."""
        topo = Topology()
        for name in ("s1", "s2", "d1", "d2"):
            topo.add_switch(name, 100)
        topo.add_link("s1", "d1")
        topo.add_link("s2", "d2")
        topo.add_entry_port("a", "s1")
        topo.add_entry_port("b", "s2")
        topo.add_entry_port("oa", "d1")
        topo.add_entry_port("ob", "d2")
        policies = PolicySet([
            Policy("a", [rule("1***", Action.DROP, 1)]),
            Policy("b", [rule("1***", Action.DROP, 1)]),
        ])
        routing = Routing([
            Path("a", "oa", ("s1", "d1")),
            Path("b", "ob", ("s2", "d2")),
        ])
        instance = PlacementInstance(topo, routing, policies)
        graphs = {p.ingress: build_dependency_graph(p) for p in policies}
        plan = build_merge_plan(instance, build_slices(instance, graphs))
        assert plan.num_groups() == 0
