"""Tests for the independent placement verifier.

The verifier must accept every solver-produced placement (covered all
over the suite) -- here we focus on it *rejecting* corrupted ones, so a
green verification is actually meaningful.
"""

from __future__ import annotations

import pytest

from repro.core.instance import PlacementInstance
from repro.core.placement import Placement, RulePlacer
from repro.core.verify import path_drop_region, verify_placement
from repro.milp.model import SolveStatus
from repro.net.routing import Path, Routing
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import RegionSet, TernaryMatch


def rule(pattern: str, action: Action, priority: int) -> Rule:
    return Rule(TernaryMatch.from_string(pattern), action, priority)


@pytest.fixture
def good_placement(figure3_instance):
    placement = RulePlacer().place(figure3_instance)
    assert placement.is_feasible
    return placement


class TestAccepts:
    def test_good_placement_passes(self, good_placement):
        report = verify_placement(good_placement)
        assert report.ok
        assert report.errors == []
        assert report.paths_checked == 2
        report.raise_on_error()  # no-op on success


class TestRejects:
    def test_infeasible_status(self, figure3_instance):
        placement = Placement(figure3_instance, SolveStatus.INFEASIBLE)
        report = verify_placement(placement)
        assert not report.ok
        with pytest.raises(AssertionError):
            report.raise_on_error()

    def test_missing_drop_on_one_path(self, good_placement):
        """Remove r13's copy covering the s4/s5 branch."""
        corrupted = dict(good_placement.placed)
        key = ("l1", 1)
        kept = {s for s in corrupted[key] if s in {"s3"}}
        corrupted[key] = frozenset(kept) or frozenset({"s3"})
        placement = Placement(
            good_placement.instance, SolveStatus.FEASIBLE, corrupted
        )
        report = verify_placement(placement)
        assert not report.ok
        assert any("not dropped" in e for e in report.errors)

    def test_drop_without_permit_dependency(self, good_placement):
        """Move the permit r11 away from the drop r12's switch: packets
        matching the permit get wrongly dropped there."""
        corrupted = dict(good_placement.placed)
        r12_switches = corrupted[("l1", 2)]
        corrupted[("l1", 3)] = frozenset()  # delete the permit entirely
        placement = Placement(
            good_placement.instance, SolveStatus.FEASIBLE, corrupted
        )
        report = verify_placement(placement)
        assert not report.ok
        assert any("dependency violation" in e for e in report.errors)
        assert any("wrongly dropped" in e for e in report.errors)

    def test_capacity_violation(self, figure3_instance):
        """Stuff every rule onto one capacity-2 switch."""
        all_rules = {
            ("l1", p): frozenset({"s1"}) for p in (1, 2, 3)
        }
        placement = Placement(
            figure3_instance, SolveStatus.FEASIBLE, all_rules
        )
        report = verify_placement(placement)
        assert any("exceeds capacity" in e for e in report.errors)

    def test_simulation_cross_check(self, good_placement):
        report = verify_placement(good_placement, simulate=True)
        assert report.ok


class TestPathDropRegion:
    def test_region_matches_manual_computation(self, figure3_instance):
        """Place permit+drop on s1 and the catch-all drop on s2: the
        path drop region is (1*0* minus 1***) union 0*** = 0***."""
        placement = Placement(
            figure3_instance, SolveStatus.FEASIBLE,
            placed={
                ("l1", 3): frozenset({"s1"}),
                ("l1", 2): frozenset({"s1"}),
                ("l1", 1): frozenset({"s2"}),
            },
        )
        policy = figure3_instance.policies["l1"]
        path = figure3_instance.routing.paths("l1")[0]
        region = path_drop_region(figure3_instance, placement, policy, path)
        expected = RegionSet(4, [TernaryMatch.from_string("0***")])
        assert region.equals(expected)

    def test_flow_restricted_verification(self):
        """With a flow descriptor the out-of-flow leak is not an error."""
        topo_policy = Policy("in", [rule("1***", Action.DROP, 1)])
        from repro.net.topology import Topology

        topo = Topology()
        topo.add_switch("a", 10)
        topo.add_entry_port("in", "a")
        topo.add_entry_port("out", "a")
        flow = TernaryMatch.from_string("0***")  # drop rule irrelevant
        instance = PlacementInstance(
            topo, Routing([Path("in", "out", ("a",), flow=flow)]),
            PolicySet([topo_policy]),
        )
        # Empty placement: nothing installed -- fine, since no packet
        # in the flow should be dropped.
        placement = Placement(instance, SolveStatus.FEASIBLE, {})
        assert verify_placement(placement).ok


class TestMutationRobustness:
    """Randomly corrupt correct placements; the verifier must flag every
    mutation that changes semantics, and accept every one that does not
    (e.g. adding a redundant copy)."""

    def test_random_mutations(self):
        import random

        from repro.experiments import ExperimentConfig, build_instance

        rng = random.Random(0)
        for seed in range(6):
            instance = build_instance(ExperimentConfig(
                k=4, num_paths=8, rules_per_policy=6, capacity=30,
                num_ingresses=3, seed=seed,
            ))
            placement = RulePlacer().place(instance)
            assert placement.is_feasible
            assert verify_placement(placement).ok
            placed_keys = [k for k, v in placement.placed.items() if v]
            if not placed_keys:
                continue

            # Mutation 1: delete one DROP copy entirely -> must fail
            # (coverage broken) unless the drop was redundant.
            drop_keys = [
                k for k in placed_keys if instance.rule(k).is_drop
            ]
            if drop_keys:
                victim = rng.choice(drop_keys)
                corrupted = dict(placement.placed)
                corrupted[victim] = frozenset()
                mutated = Placement(instance, SolveStatus.FEASIBLE, corrupted)
                report = verify_placement(mutated)
                from repro.policy.redundancy import find_redundant_rules

                policy = instance.policies[victim[0]]
                redundant = {
                    r.priority for r in find_redundant_rules(policy)
                }
                if victim[1] not in redundant:
                    assert not report.ok, (seed, victim)

            # Mutation 2: add a fully redundant extra copy of an
            # already-placed rule *with its dependencies* -> must pass.
            candidates = [
                k for k in placed_keys
                if instance.rule(k).is_permit or not placement.merge_plan
            ]
            key = rng.choice(placed_keys)
            from repro.core.depgraph import build_dependency_graph

            graph = build_dependency_graph(instance.policies[key[0]])
            reachable = instance.reachable_switches(key[0])
            extra = rng.choice(list(reachable))
            corrupted = dict(placement.placed)
            closure = (
                graph.closure(key[1])
                if instance.rule(key).is_drop else (key[1],)
            )
            for priority in closure:
                ckey = (key[0], priority)
                corrupted[ckey] = corrupted.get(ckey, frozenset()) | {extra}
            mutated = Placement(instance, SolveStatus.FEASIBLE, corrupted)
            report = verify_placement(mutated)
            semantic = [e for e in report.errors if "capacity" not in e]
            assert semantic == [], (seed, key, extra, semantic)
