"""Tests for the ILP encoding (Eq. 1-5) and solution extraction."""

from __future__ import annotations

import pytest

from repro.core.ilp import build_encoding
from repro.core.instance import PlacementInstance
from repro.core.objectives import TotalRules, apply_objective
from repro.core.placement import RulePlacer
from repro.milp.model import Sense, SolveStatus
from repro.net.routing import Path, Routing
from repro.net.topology import Topology
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch


def rule(pattern: str, action: Action, priority: int) -> Rule:
    return Rule(TernaryMatch.from_string(pattern), action, priority)


def line_instance(policy_rules, capacity=10, num_switches=3):
    topo = Topology()
    names = [f"s{i}" for i in range(num_switches)]
    for name in names:
        topo.add_switch(name, capacity)
    for a, b in zip(names, names[1:]):
        topo.add_link(a, b)
    topo.add_entry_port("in", names[0])
    topo.add_entry_port("out", names[-1])
    policy = Policy("in", policy_rules)
    routing = Routing([Path("in", "out", tuple(names))])
    return PlacementInstance(topo, routing, PolicySet([policy]))


class TestVariables:
    def test_one_variable_per_rule_switch(self):
        instance = line_instance([
            rule("1***", Action.PERMIT, 2),
            rule("1*0*", Action.DROP, 1),
        ])
        encoding = build_encoding(instance)
        # 2 placeable rules x 3 switches
        assert encoding.num_placement_vars() == 6
        assert encoding.model.num_variables() == 6

    def test_unneeded_permit_has_no_variables(self):
        instance = line_instance([
            rule("0***", Action.PERMIT, 2),   # disjoint from the drop
            rule("1***", Action.DROP, 1),
        ])
        encoding = build_encoding(instance)
        assert encoding.num_placement_vars() == 3  # drop only


class TestConstraints:
    def test_dependency_rows(self):
        instance = line_instance([
            rule("1***", Action.PERMIT, 2),
            rule("1*0*", Action.DROP, 1),
        ])
        encoding = build_encoding(instance)
        dep_rows = [c for c in encoding.model.constraints if c.name.startswith("dep[")]
        assert len(dep_rows) == 3  # one per switch
        for row in dep_rows:
            assert row.sense is Sense.GE
            assert row.rhs == 0.0
            assert sorted(row.expr.coeffs.values()) == [-1.0, 1.0]

    def test_path_rows(self):
        instance = line_instance([rule("1***", Action.DROP, 1)])
        encoding = build_encoding(instance)
        path_rows = [c for c in encoding.model.constraints if c.name.startswith("path[")]
        assert len(path_rows) == 1
        row = path_rows[0]
        assert row.sense is Sense.GE and row.rhs == 1.0
        assert len(row.expr.coeffs) == 3

    def test_capacity_rows(self):
        instance = line_instance([rule("1***", Action.DROP, 1)], capacity=7)
        encoding = build_encoding(instance)
        cap_rows = [c for c in encoding.model.constraints if c.name.startswith("cap[")]
        assert len(cap_rows) == 3
        assert all(c.sense is Sense.LE and c.rhs == 7.0 for c in cap_rows)

    def test_pinning(self):
        instance = line_instance([rule("1***", Action.DROP, 1)])
        encoding = build_encoding(instance, fixed={(("in", 1), "s0"): 1})
        pin_rows = [c for c in encoding.model.constraints if c.name.startswith("pin[")]
        assert len(pin_rows) == 1
        apply_objective(encoding, TotalRules())
        result = encoding.model.solve()
        var = encoding.var_of[(("in", 1), "s0")]
        assert result.is_one(var)

    def test_pinning_missing_variable(self):
        instance = line_instance([rule("1***", Action.DROP, 1)])
        with pytest.raises(KeyError):
            build_encoding(instance, fixed={(("in", 99), "s0"): 1})
        # Pinning a missing variable to 0 is a no-op, not an error.
        encoding = build_encoding(instance, fixed={(("in", 99), "s0"): 0})
        assert encoding.model.num_constraints() > 0


class TestMergeEncoding:
    def two_policy_instance(self, capacity=10):
        topo = Topology()
        topo.add_switch("sa", capacity)
        topo.add_switch("sb", capacity)
        topo.add_switch("mid", capacity)
        topo.add_switch("dst", capacity)
        topo.add_link("sa", "mid")
        topo.add_link("sb", "mid")
        topo.add_link("mid", "dst")
        topo.add_entry_port("a", "sa")
        topo.add_entry_port("b", "sb")
        topo.add_entry_port("o", "dst")
        shared = rule("1***", Action.DROP, 1)
        policies = PolicySet([
            Policy("a", [shared]),
            Policy("b", [shared]),
        ])
        routing = Routing([
            Path("a", "o", ("sa", "mid", "dst")),
            Path("b", "o", ("sb", "mid", "dst")),
        ])
        return PlacementInstance(topo, routing, policies)

    def test_merge_variables_created(self):
        encoding = build_encoding(self.two_policy_instance(), enable_merging=True)
        # Shared switches: mid and dst.
        assert len(encoding.merge_var_of) == 2
        rows = [c for c in encoding.model.constraints if c.name.startswith("mrg")]
        assert len(rows) == 4  # lo + hi per shared switch

    def test_merge_linking_semantics(self):
        """vm must be 1 exactly when all members are placed there."""
        encoding = build_encoding(self.two_policy_instance(), enable_merging=True)
        apply_objective(encoding, TotalRules())
        # Force both rules onto mid: the objective then counts 1, and
        # optimality requires vm=1.
        model = encoding.model
        va = encoding.var_of[(("a", 1), "mid")]
        vb = encoding.var_of[(("b", 1), "mid")]
        model.add_constraint(va.to_expr().eq(1.0))
        model.add_constraint(vb.to_expr().eq(1.0))
        result = model.solve()
        assert result.status is SolveStatus.OPTIMAL
        vm = encoding.merge_var_of[(0, "mid")]
        assert result.is_one(vm)
        assert result.objective == pytest.approx(1.0)

    def test_merging_tightens_optimum(self):
        instance = self.two_policy_instance()
        plain = RulePlacer().place(instance)
        from repro.core.placement import PlacerConfig

        merged = RulePlacer(PlacerConfig(enable_merging=True)).place(instance)
        assert plain.objective_value == pytest.approx(2.0)
        assert merged.objective_value == pytest.approx(1.0)
        assert merged.total_installed() == 1

    def test_merging_rescues_capacity(self):
        """Starve everything except the shared 'mid' switch (capacity
        1): unmerged needs 2 slots there, merged needs only 1."""
        instance = self.two_policy_instance(capacity=0)
        instance.topology.set_capacity("mid", 1)
        instance.capacities["mid"] = 1
        from repro.core.placement import PlacerConfig

        plain = RulePlacer().place(instance)
        merged = RulePlacer(PlacerConfig(enable_merging=True)).place(instance)
        assert plain.status is SolveStatus.INFEASIBLE
        assert merged.status is SolveStatus.OPTIMAL
        assert merged.total_installed() == 1
