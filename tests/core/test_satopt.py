"""Tests for SAT-based optimization (search over a PB cost bound).

Instances are kept small and the expensive ``minimize`` calls are
module-scoped fixtures: every optimization ends with an UNSAT proof of
"cost <= optimum - 1", which plain CDCL (no counting propagation) pays
for dearly as instances grow.
"""

from __future__ import annotations

import pytest

from repro.core.instance import PlacementInstance
from repro.core.placement import PlacerConfig, RulePlacer
from repro.core.satopt import SatOptimizer
from repro.core.verify import verify_placement
from repro.experiments import ExperimentConfig, build_instance
from repro.milp.model import SolveStatus


@pytest.fixture(scope="module")
def small_instance():
    return build_instance(ExperimentConfig(
        k=4, num_paths=6, rules_per_policy=5, capacity=12,
        num_ingresses=3, seed=3, drop_fraction=0.5, nested_fraction=0.5,
    ))


@pytest.fixture(scope="module")
def descend_result(small_instance):
    return SatOptimizer().minimize(small_instance)


@pytest.fixture(scope="module")
def binary_result(small_instance):
    return SatOptimizer(strategy="binary").minimize(small_instance)


class TestMinimize:
    def test_matches_ilp_optimum(self, small_instance, descend_result):
        ilp = RulePlacer().place(small_instance)
        assert descend_result.placement.status is SolveStatus.OPTIMAL
        assert descend_result.placement.total_installed() == ilp.total_installed()
        assert verify_placement(descend_result.placement).ok

    def test_figure3_optimum(self, figure3_instance):
        ilp = RulePlacer().place(figure3_instance)
        result = SatOptimizer().minimize(figure3_instance)
        assert result.placement.total_installed() == ilp.total_installed() == 3

    def test_search_history_brackets(self, descend_result):
        optimum = descend_result.placement.total_installed()
        for bound, was_sat in descend_result.history:
            if bound < 0:
                continue  # the unbounded probe
            if was_sat:
                assert bound >= optimum
            else:
                assert bound < optimum

    def test_infeasible_detected(self, figure3_instance):
        figure3_instance.topology.set_uniform_capacity(1)
        instance = PlacementInstance(
            figure3_instance.topology, figure3_instance.routing,
            figure3_instance.policies,
        )
        result = SatOptimizer().minimize(instance)
        assert result.placement.status is SolveStatus.INFEASIBLE
        assert result.probes == 1

    def test_merging_optimum_matches_ilp(self):
        instance = build_instance(ExperimentConfig(
            k=4, num_paths=4, rules_per_policy=4, capacity=10,
            num_ingresses=2, seed=3, blacklist_rules=2,
        ))
        ilp = RulePlacer(PlacerConfig(enable_merging=True)).place(instance)
        result = SatOptimizer(enable_merging=True).minimize(instance)
        assert result.placement.status is SolveStatus.OPTIMAL
        assert result.placement.total_installed() == ilp.total_installed()

    def test_binary_strategy_agrees(self, descend_result, binary_result):
        assert (binary_result.placement.total_installed()
                == descend_result.placement.total_installed())

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            SatOptimizer(strategy="magic")

    def test_probe_budget_returns_incumbent(self, small_instance):
        """With a tiny conflict budget the search may stop early but
        must return a valid feasible placement when it found one."""
        result = SatOptimizer(max_conflicts_per_probe=3).minimize(small_instance)
        if result.placement.status.has_solution:
            assert verify_placement(result.placement).ok
        else:
            assert result.placement.status in (
                SolveStatus.TIME_LIMIT, SolveStatus.INFEASIBLE
            )

    def test_stats_recorded(self, descend_result):
        assert descend_result.probes == len(descend_result.history)
        assert (descend_result.placement.solver_stats.get("probes")
                == descend_result.probes)


class TestWallClockLimit:
    def test_expired_deadline_reports_time_limit(self, small_instance):
        """A zero wall-clock budget must stop the descent after (at
        most) the first probe and report TIME_LIMIT -- with the
        incumbent attached when that probe completed."""
        result = SatOptimizer().minimize(small_instance, time_limit=0.0)
        assert result.placement.status is SolveStatus.TIME_LIMIT
        if result.placement.objective_value is not None:
            assert result.placement.is_feasible
            assert verify_placement(result.placement).ok

    def test_generous_deadline_still_optimal(self, small_instance):
        limited = SatOptimizer().minimize(small_instance, time_limit=120.0)
        unlimited = SatOptimizer().minimize(small_instance)
        assert limited.placement.status is SolveStatus.OPTIMAL
        assert (limited.placement.total_installed()
                == unlimited.placement.total_installed())
