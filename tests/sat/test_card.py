"""Exactness tests for the sequential-counter cardinality encodings."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.sat.card import at_least_k, at_most_k, exactly_k
from repro.sat.cdcl import solve_cnf
from repro.sat.cnf import CNF


def check_projection(encoder, n: int, k: int) -> None:
    """For every 0/1 pattern of the n base variables, the encoded
    formula (with the pattern forced) must be SAT exactly when the
    pattern satisfies the counting constraint."""
    for bits in range(1 << n):
        cnf = CNF()
        xs = [cnf.new_var() for _ in range(n)]
        encoder(cnf, xs, k)
        count = 0
        for i, x in enumerate(xs):
            if (bits >> i) & 1:
                cnf.add_clause([x])
                count += 1
            else:
                cnf.add_clause([-x])
        result = solve_cnf(cnf)
        if encoder is at_most_k:
            expected = count <= k
        elif encoder is at_least_k:
            expected = count >= k
        else:
            expected = count == k
        assert result.is_sat == expected, (n, k, bits)


class TestAtMostK:
    @pytest.mark.parametrize("n,k", [(1, 0), (3, 1), (4, 2), (5, 0), (5, 5), (4, 3)])
    def test_exact_projection(self, n, k):
        check_projection(at_most_k, n, k)

    def test_negative_k_unsat(self):
        cnf = CNF()
        xs = [cnf.new_var()]
        at_most_k(cnf, xs, -1)
        assert not solve_cnf(cnf).is_sat

    def test_trivial_no_clauses(self):
        cnf = CNF()
        xs = [cnf.new_var() for _ in range(3)]
        at_most_k(cnf, xs, 3)
        assert len(cnf) == 0

    def test_works_with_negated_literals(self):
        cnf = CNF()
        xs = [cnf.new_var() for _ in range(3)]
        at_most_k(cnf, [-x for x in xs], 1)
        for x in xs[:2]:
            cnf.add_clause([-x])  # two negated literals true
        assert not solve_cnf(cnf).is_sat


class TestAtLeastK:
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (4, 4), (5, 3)])
    def test_exact_projection(self, n, k):
        check_projection(at_least_k, n, k)

    def test_k_zero_trivial(self):
        cnf = CNF()
        xs = [cnf.new_var()]
        at_least_k(cnf, xs, 0)
        assert len(cnf) == 0

    def test_k_over_n_unsat(self):
        cnf = CNF()
        xs = [cnf.new_var()]
        at_least_k(cnf, xs, 2)
        assert not solve_cnf(cnf).is_sat


class TestExactlyK:
    @pytest.mark.parametrize("n,k", [(3, 0), (3, 1), (4, 2), (4, 4)])
    def test_exact_projection(self, n, k):
        check_projection(exactly_k, n, k)


class TestModels:
    @pytest.mark.parametrize("seed", range(3))
    def test_returned_models_respect_bound(self, seed):
        rng = random.Random(seed)
        for _ in range(20):
            cnf = CNF()
            n = rng.randint(2, 8)
            xs = [cnf.new_var() for _ in range(n)]
            k = rng.randint(0, n)
            at_most_k(cnf, xs, k)
            # Encourage some variables on.
            for x in rng.sample(xs, min(k, n)):
                cnf.add_clause([x])
            result = solve_cnf(cnf)
            assert result.is_sat
            assert sum(result.model[x] for x in xs) <= k
