"""Tests for CNF preprocessing (unit propagation, pure literals)."""

from __future__ import annotations

import random

import pytest

from repro.sat.cdcl import solve_cnf
from repro.sat.cnf import CNF
from repro.sat.preprocess import extend_model, preprocess


def brute_force_sat(cnf: CNF) -> bool:
    for bits in range(1 << cnf.num_vars):
        assignment = {
            v: bool((bits >> (v - 1)) & 1) for v in range(1, cnf.num_vars + 1)
        }
        if cnf.evaluate(assignment):
            return True
    return False


class TestUnitPropagation:
    def test_chain_fully_resolved(self):
        cnf = CNF()
        vs = [cnf.new_var() for _ in range(5)]
        cnf.add_clause([vs[0]])
        for a, b in zip(vs, vs[1:]):
            cnf.add_implication(a, b)
        result = preprocess(cnf)
        assert not result.unsat
        assert all(result.assigned.get(v) for v in vs)
        assert len(result.cnf) == 0

    def test_conflict_detected(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_clause([v])
        cnf.add_clause([-v])
        assert preprocess(cnf).unsat

    def test_clause_shrinking(self):
        cnf = CNF()
        a, b, c = (cnf.new_var() for _ in range(3))
        cnf.add_clause([-a])
        cnf.add_clause([a, b, c])   # shrinks to (b, c)
        result = preprocess(cnf)
        assert not result.unsat
        # After shrinking, b and c become pure and the formula empties.
        assert len(result.cnf) == 0


class TestPureLiterals:
    def test_pure_variable_eliminated(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, b])
        cnf.add_clause([a, -b])
        result = preprocess(cnf)
        assert result.pure.get(a) is True
        assert len(result.cnf) == 0

    def test_mixed_polarity_not_pure(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, b])
        cnf.add_clause([-a, b])
        result = preprocess(cnf)
        # b is pure (positive only); a is not.
        assert b in result.pure
        assert a not in result.pure


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_satisfiability_preserved(self, seed):
        rng = random.Random(seed)
        for _ in range(60):
            cnf = CNF()
            n = rng.randint(1, 9)
            for _ in range(n):
                cnf.new_var()
            for _ in range(rng.randint(1, 25)):
                clause = [
                    rng.choice([1, -1]) * rng.randint(1, n)
                    for _ in range(rng.randint(1, 3))
                ]
                cnf.add_clause(clause)
            result = preprocess(cnf)
            expected = brute_force_sat(cnf)
            if result.unsat:
                assert not expected
                continue
            inner = solve_cnf(result.cnf)
            assert inner.is_sat == expected
            if inner.is_sat:
                full = extend_model(result, inner.model)
                assert cnf.evaluate(full), "extended model must satisfy original"

    def test_extend_model_covers_all_vars(self):
        cnf = CNF()
        vs = [cnf.new_var() for _ in range(4)]
        cnf.add_clause([vs[0]])
        result = preprocess(cnf)
        full = extend_model(result, {})
        assert set(full) == set(range(1, 5))

    def test_placement_encoding_shrinks(self, figure3_instance):
        """Pins make a placement CNF strictly smaller after preprocessing."""
        from repro.core.satenc import build_sat_encoding

        encoding = build_sat_encoding(
            figure3_instance, fixed={(("l1", 1), "s3"): 1}
        )
        result = preprocess(encoding.cnf)
        assert not result.unsat
        assert result.clauses_removed > 0
        inner = solve_cnf(result.cnf)
        assert inner.is_sat
        full = extend_model(result, inner.model)
        assert encoding.cnf.evaluate(full)
