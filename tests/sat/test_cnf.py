"""Tests for the CNF container."""

from __future__ import annotations

import pytest

from repro.sat.cnf import CNF


class TestVariables:
    def test_allocation_sequential(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.num_vars == 2

    def test_names(self):
        cnf = CNF()
        v = cnf.new_var("flag")
        assert cnf.var("flag") == v
        assert cnf.name_of(v) == "flag"
        assert cnf.name_of(999) is None
        with pytest.raises(ValueError):
            cnf.new_var("flag")


class TestClauses:
    def test_out_of_range_literal(self):
        cnf = CNF()
        cnf.new_var()
        with pytest.raises(ValueError):
            cnf.add_clause([2])
        with pytest.raises(ValueError):
            cnf.add_clause([0])

    def test_tautology_skipped(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_clause([v, -v])
        assert len(cnf) == 0

    def test_duplicates_collapsed(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_clause([v, v])
        assert cnf.clauses == [(v,)]

    def test_empty_clause_kept(self):
        cnf = CNF()
        cnf.add_clause([])
        assert cnf.clauses == [()]

    def test_helpers(self):
        cnf = CNF()
        a, b, c = (cnf.new_var() for _ in range(3))
        cnf.add_implication(a, b)
        assert cnf.clauses[-1] == (-a, b)
        cnf.add_at_least_one([a, b, c])
        assert cnf.clauses[-1] == (a, b, c)

    def test_equivalence_and(self):
        cnf = CNF()
        t, a, b = (cnf.new_var() for _ in range(3))
        cnf.add_equivalence_and(t, [a, b])
        # t <-> a & b: check all 8 assignments.
        for bits in range(8):
            asg = {t: bool(bits & 1), a: bool(bits & 2), b: bool(bits & 4)}
            expected = asg[t] == (asg[a] and asg[b])
            assert cnf.evaluate(asg) == expected


class TestEvaluateAndExport:
    def test_evaluate(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, b])
        cnf.add_clause([-a])
        assert cnf.evaluate({a: False, b: True})
        assert not cnf.evaluate({a: True, b: True})

    def test_dimacs(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, -b])
        text = cnf.to_dimacs()
        assert text.splitlines()[0] == "p cnf 2 1"
        assert "1 -2 0" in text
