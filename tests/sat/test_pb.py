"""Exactness tests for the BDD-based pseudo-Boolean encodings."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.cdcl import solve_cnf
from repro.sat.cnf import CNF
from repro.sat.pb import PBTerm, pb_eq, pb_ge, pb_le


def project(encoder, coeffs, signs, bound):
    """Check the encoding against arithmetic for every assignment."""
    n = len(coeffs)
    for bits in range(1 << n):
        cnf = CNF()
        xs = [cnf.new_var() for _ in range(n)]
        lits = [x if s else -x for x, s in zip(xs, signs)]
        encoder(cnf, [PBTerm(c, l) for c, l in zip(coeffs, lits)], bound)
        total = 0
        for i, x in enumerate(xs):
            value = bool((bits >> i) & 1)
            cnf.add_clause([x] if value else [-x])
            literal_true = value == signs[i]
            if literal_true:
                total += coeffs[i]
        if encoder is pb_le:
            expected = total <= bound
        elif encoder is pb_ge:
            expected = total >= bound
        else:
            expected = total == bound
        assert solve_cnf(cnf).is_sat == expected, (coeffs, signs, bound, bits)


class TestPbLe:
    def test_simple(self):
        project(pb_le, [2, 3, 4], [True, True, True], 5)

    def test_negative_coefficients(self):
        project(pb_le, [-2, 3], [True, True], 0)

    def test_negated_literals(self):
        project(pb_le, [2, 3], [False, True], 3)

    def test_duplicate_literals_merge(self):
        cnf = CNF()
        x = cnf.new_var()
        pb_le(cnf, [PBTerm(2, x), PBTerm(3, x)], 4)
        cnf.add_clause([x])
        assert not solve_cnf(cnf).is_sat

    def test_opposite_literals_cancel(self):
        # 2x + 2(!x) == 2 always; bound 1 is UNSAT, bound 2 SAT.
        for bound, expected in ((1, False), (2, True)):
            cnf = CNF()
            x = cnf.new_var()
            pb_le(cnf, [PBTerm(2, x), PBTerm(2, -x)], bound)
            assert solve_cnf(cnf).is_sat == expected

    def test_trivial_bounds(self):
        cnf = CNF()
        x = cnf.new_var()
        pb_le(cnf, [PBTerm(1, x)], 5)  # always satisfied
        assert len(cnf) == 0
        pb_le(cnf, [PBTerm(1, x)], -1)  # never satisfiable
        assert not solve_cnf(cnf).is_sat

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            pb_le(cnf, [PBTerm(1, 0)], 1)


class TestPbGeEq:
    def test_ge(self):
        project(pb_ge, [2, 3, 4], [True, True, True], 6)

    def test_ge_with_negative(self):
        project(pb_ge, [-1, 4], [True, True], 2)

    def test_eq(self):
        project(pb_eq, [1, 2, 3], [True, True, True], 3)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(-5, 6), min_size=1, max_size=5),
    st.data(),
)
def test_randomized_projection(coeffs, data):
    signs = data.draw(st.lists(
        st.booleans(), min_size=len(coeffs), max_size=len(coeffs)
    ))
    bound = data.draw(st.integers(-8, 15))
    project(pb_le, coeffs, signs, bound)
