"""Correctness tests for the CDCL solver.

The heavy lifting is the randomized cross-check against brute-force
enumeration -- every status and every model is validated.  Structured
instances (pigeonhole, chains that force long implication sequences,
XOR-ish gadgets) exercise conflict analysis, backjumping and restarts.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.sat.cdcl import CdclSolver, SatStatus, solve_cnf, _luby
from repro.sat.cnf import CNF


def brute_force_sat(cnf: CNF) -> bool:
    for bits in range(1 << cnf.num_vars):
        assignment = {
            v: bool((bits >> (v - 1)) & 1) for v in range(1, cnf.num_vars + 1)
        }
        if cnf.evaluate(assignment):
            return True
    return False


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8
        ]


class TestBasics:
    def test_empty_formula_sat(self):
        assert solve_cnf(CNF()).is_sat

    def test_empty_clause_unsat(self):
        cnf = CNF()
        cnf.add_clause([])
        assert solve_cnf(cnf).status is SatStatus.UNSAT

    def test_unit_propagation_chain(self):
        cnf = CNF()
        vs = [cnf.new_var() for _ in range(50)]
        cnf.add_clause([vs[0]])
        for a, b in zip(vs, vs[1:]):
            cnf.add_implication(a, b)
        result = solve_cnf(cnf)
        assert result.is_sat
        assert all(result.model[v] for v in vs)
        assert result.decisions == 0  # everything follows by propagation

    def test_contradicting_units(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_clause([v])
        cnf.add_clause([-v])
        assert solve_cnf(cnf).status is SatStatus.UNSAT

    def test_model_satisfies(self):
        cnf = CNF()
        a, b, c = (cnf.new_var() for _ in range(3))
        cnf.add_clause([a, b])
        cnf.add_clause([-a, c])
        cnf.add_clause([-b, -c])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert cnf.evaluate(result.model)


class TestStructured:
    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_pigeonhole_unsat(self, holes):
        """PHP(n+1, n): classically hard for resolution at scale, easy
        here at small n; must be UNSAT."""
        pigeons = holes + 1
        cnf = CNF()
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[p, h] = cnf.new_var()
        for p in range(pigeons):
            cnf.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1, p2 in itertools.combinations(range(pigeons), 2):
                cnf.add_clause([-var[p1, h], -var[p2, h]])
        result = solve_cnf(cnf)
        assert result.status is SatStatus.UNSAT
        assert result.conflicts > 0

    def test_forced_backjump(self):
        """A gadget where early decisions must be undone en masse."""
        cnf = CNF()
        vs = [cnf.new_var() for _ in range(12)]
        # Independent free variables first; then a tight UNSAT core on
        # the last three that only conflicts after propagation.
        a, b, c = vs[-3], vs[-2], vs[-1]
        cnf.add_clause([a, b])
        cnf.add_clause([a, -b])
        cnf.add_clause([-a, c])
        cnf.add_clause([-a, -c])
        assert solve_cnf(cnf).status is SatStatus.UNSAT


class TestAssumptions:
    def test_assumption_forces_value(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_implication(a, b)
        result = solve_cnf(cnf, assumptions=[a])
        assert result.is_sat
        assert result.model[a] and result.model[b]

    def test_conflicting_assumption_unsat(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause([-a])
        assert solve_cnf(cnf, assumptions=[a]).status is SatStatus.UNSAT

    def test_assumptions_do_not_mutate_formula(self):
        cnf = CNF()
        a = cnf.new_var()
        assert solve_cnf(cnf, assumptions=[-a]).is_sat
        assert solve_cnf(cnf, assumptions=[a]).is_sat


class TestBudget:
    def test_conflict_budget_reports_unknown(self):
        """A hard UNSAT instance with a tiny budget must say UNKNOWN."""
        holes = 6
        pigeons = holes + 1
        cnf = CNF()
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[p, h] = cnf.new_var()
        for p in range(pigeons):
            cnf.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1, p2 in itertools.combinations(range(pigeons), 2):
                cnf.add_clause([-var[p1, h], -var[p2, h]])
        result = solve_cnf(cnf, max_conflicts=5)
        assert result.status is SatStatus.UNKNOWN


class TestRandomizedCrossCheck:
    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_with_brute_force(self, seed):
        rng = random.Random(seed)
        for _ in range(80):
            cnf = CNF()
            n = rng.randint(1, 10)
            for _ in range(n):
                cnf.new_var()
            for _ in range(rng.randint(1, int(4.0 * n))):
                width = rng.randint(1, 3)
                clause = [
                    rng.choice([1, -1]) * rng.randint(1, n) for _ in range(width)
                ]
                cnf.add_clause(clause)
            result = solve_cnf(cnf)
            assert result.is_sat == brute_force_sat(cnf)
            if result.is_sat:
                assert cnf.evaluate(result.model)


class TestClauseDeletion:
    """Aggressive learnt-DB reduction must never change answers."""

    @pytest.mark.parametrize("seed", range(3))
    def test_tiny_database_still_correct(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            cnf = CNF()
            n = rng.randint(4, 10)
            for _ in range(n):
                cnf.new_var()
            for _ in range(rng.randint(8, int(4.2 * n))):
                clause = [
                    rng.choice([1, -1]) * rng.randint(1, n) for _ in range(3)
                ]
                cnf.add_clause(clause)
            solver = CdclSolver(cnf, max_learnts=4)
            result = solver.solve()
            assert result.is_sat == brute_force_sat(cnf)
            if result.is_sat:
                assert cnf.evaluate(result.model)

    def test_reductions_actually_happen(self):
        """A pigeonhole proof under a tiny budget must trigger the
        reducer (and still conclude UNSAT)."""
        holes = 5
        pigeons = holes + 1
        cnf = CNF()
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[p, h] = cnf.new_var()
        for p in range(pigeons):
            cnf.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1, p2 in itertools.combinations(range(pigeons), 2):
                cnf.add_clause([-var[p1, h], -var[p2, h]])
        solver = CdclSolver(cnf, max_learnts=8)
        result = solver.solve()
        assert result.status is SatStatus.UNSAT
        assert solver.reductions > 0
