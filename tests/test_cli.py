"""Tests for the command-line interface (direct main() invocation)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def instance_file(tmp_path):
    path = tmp_path / "instance.json"
    code = main([
        "generate", "--k", "4", "--paths", "12", "--rules", "8",
        "--capacity", "40", "--ingresses", "4", "--seed", "5",
        "-o", str(path),
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_creates_valid_json(self, instance_file):
        data = json.loads(instance_file.read_text())
        assert data["schema_version"] == 1
        assert len(data["policies"]) == 4
        assert len(data["routing"]) == 12

    def test_blacklist_and_slicing_flags(self, tmp_path):
        path = tmp_path / "instance.json"
        code = main([
            "generate", "--k", "4", "--paths", "8", "--rules", "5",
            "--ingresses", "2", "--blacklist", "2", "--slice",
            "-o", str(path),
        ])
        assert code == 0
        data = json.loads(path.read_text())
        assert all(p["flow"] is not None for p in data["routing"])
        assert all(len(p["rules"]) == 7 for p in data["policies"])


class TestSolveVerifyReport:
    def test_solve_ilp(self, instance_file, tmp_path, capsys):
        out = tmp_path / "placement.json"
        code = main(["solve", str(instance_file), "-o", str(out)])
        assert code == 0
        assert "optimal" in capsys.readouterr().out
        assert json.loads(out.read_text())["status"] == "optimal"

    def test_solve_backend_bnb(self, instance_file, tmp_path, capsys):
        out = tmp_path / "placement.json"
        code = main(["solve", str(instance_file), "-o", str(out),
                     "--backend", "bnb", "--time-limit", "60"])
        assert code == 0
        assert json.loads(out.read_text())["status"] == "optimal"

    def test_solve_backend_portfolio_with_deadline(self, instance_file,
                                                   tmp_path, capsys):
        out = tmp_path / "placement.json"
        code = main(["solve", str(instance_file), "-o", str(out),
                     "--backend", "portfolio", "--deadline", "60"])
        assert code == 0
        text = capsys.readouterr().out
        assert "portfolio winner:" in text
        data = json.loads(out.read_text())
        assert data["status"] == "optimal"
        telemetry = data["solver_stats"]["portfolio"]
        assert telemetry["winner"] in ("highs", "bnb", "satopt")
        assert telemetry["deadline"] == 60.0
        assert set(telemetry["engines"]) == {"highs", "bnb", "satopt"}

    def test_solve_portfolio_engine_subset(self, instance_file, tmp_path):
        out = tmp_path / "placement.json"
        code = main(["solve", str(instance_file), "-o", str(out),
                     "--backend", "portfolio", "--deadline", "60",
                     "--engines", "highs,bnb"])
        assert code == 0
        telemetry = json.loads(out.read_text())["solver_stats"]["portfolio"]
        assert set(telemetry["engines"]) == {"highs", "bnb"}

    def test_solve_sat_engine(self, instance_file, tmp_path, capsys):
        out = tmp_path / "placement.json"
        code = main(["solve", str(instance_file), "-o", str(out),
                     "--engine", "sat"])
        assert code == 0
        assert json.loads(out.read_text())["status"] == "feasible"

    def test_solve_infeasible_exit_code(self, tmp_path):
        inst = tmp_path / "tight.json"
        main(["generate", "--k", "4", "--paths", "12", "--rules", "10",
              "--capacity", "0", "--ingresses", "4", "-o", str(inst)])
        out = tmp_path / "placement.json"
        assert main(["solve", str(inst), "-o", str(out)]) == 2

    def test_verify_good(self, instance_file, tmp_path, capsys):
        out = tmp_path / "placement.json"
        main(["solve", str(instance_file), "-o", str(out)])
        code = main(["verify", str(instance_file), str(out), "--simulate"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_detects_corruption(self, instance_file, tmp_path, capsys):
        out = tmp_path / "placement.json"
        main(["solve", str(instance_file), "-o", str(out)])
        data = json.loads(out.read_text())
        # Drop a placed rule entirely.
        data["placed"] = data["placed"][1:]
        out.write_text(json.dumps(data))
        code = main(["verify", str(instance_file), str(out)])
        assert code == 1
        assert "VIOLATION" in capsys.readouterr().err

    def test_report(self, instance_file, tmp_path, capsys):
        out = tmp_path / "placement.json"
        main(["solve", str(instance_file), "-o", str(out)])
        capsys.readouterr()
        assert main(["report", str(instance_file), str(out)]) == 0
        text = capsys.readouterr().out
        assert "utilization" in text
        assert "ingress" in text

    def test_report_instance_only(self, instance_file, capsys):
        assert main(["report", str(instance_file)]) == 0
        assert "Instance:" in capsys.readouterr().out


class TestExportLp:
    def test_writes_lp(self, instance_file, tmp_path):
        out = tmp_path / "model.lp"
        assert main(["export-lp", str(instance_file), "-o", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("\\ Model:")
        assert "Binaries" in text

    def test_merging_flag(self, tmp_path):
        inst = tmp_path / "instance.json"
        main(["generate", "--k", "4", "--paths", "8", "--rules", "5",
              "--ingresses", "3", "--blacklist", "2", "-o", str(inst)])
        out = tmp_path / "model.lp"
        assert main(["export-lp", str(inst), "-o", str(out), "--merging"]) == 0
        assert "vm[" in out.read_text()


class TestPolicies:
    def test_prints_text_form(self, instance_file, capsys):
        assert main(["policies", str(instance_file)]) == 0
        text = capsys.readouterr().out
        assert "# policy for ingress" in text
        assert "deny" in text or "permit" in text

    def test_ingress_filter(self, instance_file, capsys):
        import json

        data = json.loads(instance_file.read_text())
        first = data["policies"][0]["ingress"]
        assert main(["policies", str(instance_file), "--ingress", first]) == 0
        text = capsys.readouterr().out
        assert text.count("# policy for ingress") == 1


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_objective_choices(self, instance_file, tmp_path):
        out = tmp_path / "placement.json"
        for objective in ("rules", "upstream", "combined"):
            assert main(["solve", str(instance_file), "-o", str(out),
                         "--objective", objective]) == 0


class TestChaos:
    def test_chaos_converges(self, instance_file, capsys):
        code = main([
            "chaos", str(instance_file), "--seeds", "3", "--horizon", "15",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "3/3 schedules converged fail-closed" in out
        assert "digest=" in out

    def test_chaos_with_saved_placement(self, instance_file, tmp_path,
                                        capsys):
        placement = tmp_path / "placement.json"
        assert main(["solve", str(instance_file), "-o", str(placement)]) == 0
        capsys.readouterr()
        code = main([
            "chaos", str(instance_file), str(placement),
            "--seeds", "2", "--horizon", "12",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "2/2 schedules converged fail-closed" in out

    def test_chaos_no_fail_secure_detects_violations(self, instance_file,
                                                     capsys):
        """Sanity for the oracle: disabling the fail-secure safety net
        across enough seeds must surface at least one violation."""
        code = main([
            "chaos", str(instance_file), "--seeds", "15",
            "--no-fail-secure",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out
