"""Smoke tests: every shipped example must run cleanly end to end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their findings"


def test_examples_exist():
    """The deliverable requires at least three runnable examples."""
    assert len(EXAMPLES) >= 3


def test_package_doctest():
    """The quickstart in the package docstring must stay true."""
    import doctest

    import repro

    failures, _tests = doctest.testmod(repro, verbose=False)
    assert failures == 0
