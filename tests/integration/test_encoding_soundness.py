"""Bidirectional soundness of the ILP encoding on random instances.

The encodings and the verifier were written independently; these
properties tie them together in both directions:

* **soundness**: any 0/1 assignment the model accepts decodes to a
  placement the exact verifier certifies;
* **completeness**: any placement the verifier certifies encodes to an
  assignment the model accepts (so "infeasible" can never hide a
  verifier-approved solution).

Together with the engines' exactness this is the paper's "no false
negatives" claim, stated as a machine-checked property.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.ilp import build_encoding
from repro.core.instance import PlacementInstance
from repro.core.objectives import TotalRules, apply_objective
from repro.core.placement import Placement, RulePlacer
from repro.core.verify import verify_placement
from repro.milp.model import SolveStatus
from repro.net.routing import Path, Routing
from repro.net.topology import Topology
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch

WIDTH = 4


def tiny_instance(seed: int, capacity: int) -> PlacementInstance:
    rng = random.Random(seed)
    topo = Topology()
    for name in ("x", "y", "z"):
        topo.add_switch(name, capacity)
    topo.add_link("x", "y")
    topo.add_link("y", "z")
    topo.add_entry_port("in", "x")
    topo.add_entry_port("out", "z")
    rules = []
    for priority in range(rng.randint(1, 4), 0, -1):
        mask = rng.getrandbits(WIDTH)
        rules.append(Rule(
            TernaryMatch(WIDTH, mask, rng.getrandbits(WIDTH) & mask),
            Action.DROP if rng.random() < 0.5 else Action.PERMIT,
            priority,
        ))
    policies = PolicySet([Policy("in", rules)])
    routing = Routing([Path("in", "out", ("x", "y", "z"))])
    return PlacementInstance(topo, routing, policies)


def decode(encoding, values) -> Placement:
    placed = {}
    for (key, switch), var in encoding.var_of.items():
        if values.get(var.index, 0.0) > 0.5:
            placed.setdefault(key, set()).add(switch)
    return Placement(
        encoding.instance, SolveStatus.FEASIBLE,
        {k: frozenset(v) for k, v in placed.items()},
    )


def encode(encoding, placement) -> dict:
    return {
        var.index: 1.0 if switch in placement.switches_of(key) else 0.0
        for (key, switch), var in encoding.var_of.items()
    }


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 100_000), st.sampled_from([1, 2, 4]))
def test_model_solutions_verify(seed, capacity):
    """Soundness: every feasible assignment decodes to a certified
    placement -- checked on all assignments via exhaustive enumeration
    of the (tiny) variable space."""
    instance = tiny_instance(seed, capacity)
    encoding = build_encoding(instance)
    apply_objective(encoding, TotalRules())
    n = encoding.model.num_variables()
    if n > 12:
        # Keep enumeration tiny; the solver-path property below covers
        # larger spaces.
        n_checked = 0
        result = encoding.model.solve()
        if result.status.has_solution:
            placement = decode(encoding, result.values)
            verify_placement(placement).raise_on_error()
        return
    for bits in range(1 << n):
        values = {i: float((bits >> i) & 1) for i in range(n)}
        if not encoding.model.check_solution(values):
            continue
        placement = decode(encoding, values)
        report = verify_placement(placement)
        assert report.ok, (seed, capacity, bits, report.errors[:2])


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 100_000), st.sampled_from([2, 4, 8]))
def test_verified_placements_satisfy_model(seed, capacity):
    """Completeness: a certified placement's indicator assignment is
    model-feasible.  Uses solver outputs of a *different* objective and
    hand-perturbed variants (adding copies never breaks feasibility
    semantically, and must not break the model when capacity allows)."""
    instance = tiny_instance(seed, capacity)
    base = RulePlacer().place(instance)
    if not base.is_feasible:
        return
    encoding = build_encoding(instance)
    apply_objective(encoding, TotalRules())
    values = encode(encoding, base)
    assert encoding.model.check_solution(values)

    # Perturb: duplicate one placed rule onto another domain switch.
    rng = random.Random(seed)
    keys = [k for k in base.placed if base.placed[k]]
    if not keys:
        return
    key = rng.choice(keys)
    domain = [s for (k, s) in encoding.var_of if k == key]
    extra = rng.choice(domain)
    perturbed = Placement(
        instance, SolveStatus.FEASIBLE,
        {**base.placed, key: base.placed[key] | {extra}},
    )
    # Only claim model-feasibility when the verifier still certifies it
    # and capacity is not exceeded (Eq. 1 may require co-located
    # permits the perturbation did not add).
    report = verify_placement(perturbed)
    if report.ok:
        assert encoding.model.check_solution(encode(encoding, perturbed))
