"""Property-based tests for transition planning and the controller on
randomized instance/objective pairs."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.controller import Controller
from repro.core.instance import PlacementInstance
from repro.core.objectives import Combined, TotalRules, UpstreamDrops, WeightedSwitches
from repro.core.placement import PlacerConfig, RulePlacer
from repro.core.transition import apply_plan, plan_transition
from repro.net.routing import Path, Routing
from repro.net.topology import Topology
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch

WIDTH = 5


def random_instance(seed: int, capacity: int) -> PlacementInstance:
    rng = random.Random(seed)
    topo = Topology()
    for name in ("i1", "i2", "m1", "m2", "d"):
        topo.add_switch(name, capacity)
    topo.add_link("i1", "m1")
    topo.add_link("i1", "m2")
    topo.add_link("i2", "m1")
    topo.add_link("i2", "m2")
    topo.add_link("m1", "d")
    topo.add_link("m2", "d")
    topo.add_entry_port("a", "i1")
    topo.add_entry_port("b", "i2")
    topo.add_entry_port("o", "d")

    def policy(ingress: str) -> Policy:
        rules = []
        for priority in range(rng.randint(2, 5), 0, -1):
            mask = rng.getrandbits(WIDTH)
            rules.append(Rule(
                TernaryMatch(WIDTH, mask, rng.getrandbits(WIDTH) & mask),
                Action.DROP if rng.random() < 0.5 else Action.PERMIT,
                priority,
            ))
        return Policy(ingress, rules)

    routing = Routing([
        Path("a", "o", ("i1", rng.choice(["m1", "m2"]), "d")),
        Path("a", "o", ("i1", rng.choice(["m1", "m2"]), "d"))
        if rng.random() < 0.5 else Path("a", "o", ("i1", "m1", "d")),
        Path("b", "o", ("i2", rng.choice(["m1", "m2"]), "d")),
    ][:2 + rng.randint(0, 1)])
    # Deduplicate identical paths (Routing allows them, keep it simple).
    seen = set()
    unique = Routing()
    for path in routing.all_paths():
        key = (path.ingress, path.switches)
        if key not in seen:
            seen.add(key)
            unique.add_path(path)
    return PlacementInstance(
        topo, unique, PolicySet([policy("a"), policy("b")])
    )


def objective_for(pick: int):
    return [
        TotalRules(),
        UpstreamDrops(),
        WeightedSwitches.from_dict({"m1": 0.5, "d": 3.0}),
        Combined(((1.0, TotalRules()), (0.01, UpstreamDrops()))),
    ][pick % 4]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000), st.integers(0, 3), st.integers(0, 3))
def test_transition_reaches_target_and_stays_safe(seed, pick_a, pick_b):
    instance = random_instance(seed, capacity=6)
    a = RulePlacer(PlacerConfig(objective=objective_for(pick_a))).place(instance)
    b = RulePlacer(PlacerConfig(objective=objective_for(pick_b))).place(instance)
    if not (a.is_feasible and b.is_feasible):
        return
    plan = plan_transition(a, b)
    final = apply_plan(plan, a)
    assert final == {k: v for k, v in b.placed.items() if v}
    # Peak accounting is an upper bound on both endpoints.
    for switch, peak in plan.peak_occupancy.items():
        assert peak >= a.switch_loads().get(switch, 0)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000))
def test_controller_conformant_after_random_transition(seed):
    instance = random_instance(seed, capacity=8)
    a = RulePlacer().place(instance)
    b = RulePlacer(PlacerConfig(objective=UpstreamDrops())).place(instance)
    if not (a.is_feasible and b.is_feasible):
        return
    controller = Controller(instance)
    controller.deploy(a)
    controller.transition(b)
    mismatches = controller.dataplane.check_routing_sampled(
        list(instance.policies), instance.routing, seed=seed,
        samples_per_rule=4,
    )
    assert mismatches == []
    assert controller.total_entries() == b.total_installed()
