"""Full-pipeline integration tests on fat-tree instances.

Everything a user would do in sequence: generate, place, verify
symbolically, synthesize tables, simulate packets, adapt incrementally
-- plus cross-checks between the ILP and SAT engines and all baselines.
"""

from __future__ import annotations

import pytest

from repro import (
    IncrementalDeployer,
    PlacementInstance,
    PlacerConfig,
    RulePlacer,
    SatPlacer,
    ShortestPathRouter,
    fattree,
    generate_policy_set,
    place_all_at_ingress,
    place_greedy,
    place_replicated,
    synthesize,
    verify_placement,
)
from repro.experiments import ExperimentConfig, build_instance
from repro.milp.model import SolveStatus


@pytest.fixture(scope="module")
def medium_instance():
    return build_instance(ExperimentConfig(
        k=4, num_paths=24, rules_per_policy=15, capacity=40,
        num_ingresses=8, seed=6, drop_fraction=0.5, nested_fraction=0.5,
    ))


class TestFullPipeline:
    def test_place_verify_synthesize_simulate(self, medium_instance):
        placement = RulePlacer().place(medium_instance)
        assert placement.status is SolveStatus.OPTIMAL
        report = verify_placement(placement, simulate=True)
        assert report.ok, report.errors
        dataplane = synthesize(placement)
        assert dataplane.total_installed() == placement.total_installed()

    def test_merging_never_hurts(self):
        instance = build_instance(ExperimentConfig(
            k=4, num_paths=24, rules_per_policy=12, capacity=40,
            num_ingresses=8, seed=6, blacklist_rules=4,
        ))
        plain = RulePlacer().place(instance)
        merged = RulePlacer(PlacerConfig(enable_merging=True)).place(instance)
        assert plain.is_feasible and merged.is_feasible
        assert merged.total_installed() <= plain.total_installed()
        assert verify_placement(merged, simulate=True).ok

    def test_slicing_preserves_semantics_and_reduces_rules(self):
        base = ExperimentConfig(
            k=4, num_paths=24, rules_per_policy=12, capacity=40,
            num_ingresses=8, seed=8,
        )
        dense = RulePlacer().place(build_instance(base))
        sliced_cfg = ExperimentConfig(**{**base.__dict__, "flow_slicing": True})
        sliced = RulePlacer().place(build_instance(sliced_cfg))
        assert dense.is_feasible and sliced.is_feasible
        assert sliced.total_installed() <= dense.total_installed()
        assert verify_placement(sliced).ok

    def test_sat_and_ilp_agree_and_verify(self, medium_instance):
        ilp = RulePlacer().place(medium_instance)
        sat = SatPlacer().place(medium_instance)
        assert ilp.status.has_solution == sat.status.has_solution
        assert verify_placement(sat).ok
        assert sat.total_installed() >= ilp.total_installed()

    def test_baseline_ordering(self, medium_instance):
        """ILP optimum <= greedy <= replicate-everything copies."""
        ilp = RulePlacer().place(medium_instance)
        greedy = place_greedy(medium_instance)
        replicated = place_replicated(medium_instance)
        assert ilp.total_installed() <= greedy.total_installed()
        assert (greedy.total_installed()
                <= replicated.solver_stats["copies_installed"])

    def test_incremental_journey(self, medium_instance):
        """Deploy, install a new tenant, reroute it, remove it."""
        base = RulePlacer().place(medium_instance)
        deployer = IncrementalDeployer(base)
        topo = medium_instance.topology
        ports = [p.name for p in topo.entry_ports]
        router = ShortestPathRouter(topo, seed=99)
        free_port = next(
            p for p in ports if p not in medium_instance.policies
        )
        tenant = generate_policy_set([free_port], rules_per_policy=8, seed=50)[free_port]
        install = deployer.install_policy(
            tenant, [router.shortest_path(free_port, ports[0])]
        )
        assert install.is_feasible
        assert verify_placement(deployer.as_placement()).ok

        reroute = deployer.reroute_policy(
            free_port, [router.shortest_path(free_port, ports[1])]
        )
        assert reroute.is_feasible
        assert verify_placement(deployer.as_placement()).ok

        freed = deployer.remove_policy(free_port)
        assert freed > 0
        assert verify_placement(deployer.as_placement()).ok


class TestFeasibilityCliff:
    """The paper's central scalability observation: tight capacity
    instances are hard near the boundary and quickly infeasible past
    it, while loose instances stay easy."""

    def test_cliff_exists(self):
        base = dict(k=4, num_paths=24, rules_per_policy=25,
                    num_ingresses=16, seed=3,
                    drop_fraction=0.5, nested_fraction=0.5)
        loose = RulePlacer().place(build_instance(
            ExperimentConfig(**base, capacity=150)
        ))
        tight = RulePlacer().place(build_instance(
            ExperimentConfig(**base, capacity=10)
        ))
        assert loose.status is SolveStatus.OPTIMAL
        assert tight.status is SolveStatus.INFEASIBLE

    def test_tightness_increases_duplication(self):
        base = dict(k=4, num_paths=32, rules_per_policy=25,
                    num_ingresses=16, seed=3,
                    drop_fraction=0.5, nested_fraction=0.5)
        loose = RulePlacer().place(build_instance(
            ExperimentConfig(**base, capacity=150)
        ))
        tight = RulePlacer().place(build_instance(
            ExperimentConfig(**base, capacity=30)
        ))
        assert loose.is_feasible and tight.is_feasible
        assert tight.duplication_overhead() >= loose.duplication_overhead()
