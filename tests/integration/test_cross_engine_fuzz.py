"""Cross-engine fuzzing over randomized topologies and workloads.

One seeded campaign exercises the whole stack end to end: a random
topology family (fat-tree / leaf-spine / ring / random graph), random
routing with optional flow slicing, ClassBench-style policies with
optional shared blacklists -- then every engine and baseline runs on the
same instance and all pairwise consistency obligations are checked:

* ILP (HiGHS), ILP (own B&B on small instances), and SAT agree on
  feasibility;
* every feasible answer passes exact verification;
* objective ordering holds: merged ILP <= plain ILP <= greedy;
* table synthesis + sampled packet replay agree with the policies.

This is the repository's "everything is consistent with everything"
safety net; each seed is an independent scenario.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import place_greedy
from repro.core.instance import PlacementInstance
from repro.core.placement import PlacerConfig, RulePlacer
from repro.core.satenc import SatPlacer
from repro.core.verify import verify_placement
from repro.experiments.generators import attach_flow_descriptors
from repro.milp.bnb import BranchAndBoundBackend
from repro.net.fattree import fattree
from repro.net.generators import leaf_spine, random_graph, ring
from repro.net.routing import ShortestPathRouter
from repro.policy.classbench import PolicyGeneratorConfig, generate_policy_set


def build_random_scenario(seed: int) -> PlacementInstance:
    rng = random.Random(seed)
    kind = rng.choice(["fattree", "leaf_spine", "ring", "random"])
    capacity = rng.choice([6, 10, 18, 40])
    if kind == "fattree":
        topo = fattree(4, capacity=capacity)
    elif kind == "leaf_spine":
        topo = leaf_spine(rng.randint(3, 5), rng.randint(2, 3),
                          capacity=capacity)
    elif kind == "ring":
        topo = ring(rng.randint(4, 7), capacity=capacity)
    else:
        topo = random_graph(rng.randint(6, 10), degree=3,
                            capacity=capacity, seed=seed)
    ports = [p.name for p in topo.entry_ports]
    num_ingresses = rng.randint(2, min(5, len(ports) - 1))
    ingresses = rng.sample(ports, num_ingresses)
    router = ShortestPathRouter(topo, seed=seed)
    routing = router.random_routing(
        rng.randint(num_ingresses, 3 * num_ingresses), ingresses=ingresses
    )
    if rng.random() < 0.4:
        routing = attach_flow_descriptors(routing, seed=seed)
    config = PolicyGeneratorConfig(
        num_rules=rng.randint(4, 12),
        drop_fraction=rng.uniform(0.3, 0.7),
        nested_fraction=rng.uniform(0.2, 0.7),
    )
    policies = generate_policy_set(
        ingresses, rules_per_policy=config.num_rules, seed=seed,
        config=config,
        blacklist_rules=rng.choice([0, 0, 2]),
    )
    return PlacementInstance(topo, routing, policies)


@pytest.mark.parametrize("seed", range(24))
def test_cross_engine_consistency(seed):
    instance = build_random_scenario(seed)

    ilp = RulePlacer().place(instance)
    merged = RulePlacer(PlacerConfig(enable_merging=True)).place(instance)
    sat = SatPlacer().place(instance)
    greedy = place_greedy(instance)

    # Feasibility agreement between exact engines.
    assert ilp.status.has_solution == sat.status.has_solution, instance.summary()
    # Merging can only help.
    assert merged.status.has_solution >= ilp.status.has_solution

    if not ilp.is_feasible:
        # Greedy may not find what doesn't exist.
        assert not greedy.is_feasible
        return

    # Every feasible result verifies exactly.
    for label, placement in (("ilp", ilp), ("merged", merged), ("sat", sat)):
        report = verify_placement(placement)
        assert report.ok, (seed, label, report.errors[:2])

    # Objective ordering.
    assert merged.total_installed() <= ilp.total_installed()
    assert sat.total_installed() >= ilp.total_installed()
    if greedy.is_feasible:
        assert verify_placement(greedy).ok
        assert greedy.total_installed() >= ilp.total_installed()

    # Own B&B agrees with HiGHS on small encodings.
    if ilp.num_variables <= 300:
        bnb = RulePlacer(
            PlacerConfig(backend=BranchAndBoundBackend(time_limit=60))
        ).place(instance)
        assert bnb.is_feasible
        assert bnb.objective_value == pytest.approx(ilp.objective_value)

    # Synthesized tables replay correctly.
    from repro.core.tags import synthesize

    dataplane = synthesize(ilp)
    mismatches = dataplane.check_routing_sampled(
        list(instance.policies), instance.routing, seed=seed,
        samples_per_rule=4,
    )
    assert mismatches == [], (seed, str(mismatches[0]))
