"""Cross-engine fuzzing over randomized topologies and workloads.

One seeded campaign exercises the whole stack end to end: a random
topology family (fat-tree / leaf-spine / ring / random graph), random
routing with optional flow slicing, ClassBench-style policies with
optional shared blacklists -- then every engine and baseline runs on the
same instance and all pairwise consistency obligations are checked:

* ILP (HiGHS), ILP (own B&B on small instances), and SAT agree on
  feasibility;
* every feasible answer passes exact verification;
* objective ordering holds: merged ILP <= plain ILP <= greedy;
* table synthesis + sampled packet replay agree with the policies.

This is the repository's "everything is consistent with everything"
safety net; each seed is an independent scenario.

A second campaign (``TestPortfolioDifferential``) uses the portfolio
solver as a differential oracle: on randomized *small* instances every
individual backend's proven optimum must equal the portfolio's answer,
in both inline and process execution.  Seeds are fixed and printed in
every assertion message, so a failure is reproducible with::

    python -c "from tests.integration.test_cross_engine_fuzz import \
               build_small_scenario; print(build_small_scenario(SEED).summary())"

Environment knobs (used by CI's quick profile):

* ``REPRO_FUZZ_QUICK=1`` -- trim both campaigns to a fast subset;
* ``REPRO_FUZZ_SEEDS=N`` -- explicit differential seed count.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.baselines import place_greedy
from repro.core.instance import PlacementInstance
from repro.core.placement import PlacerConfig, RulePlacer
from repro.core.satenc import SatPlacer
from repro.core.satopt import SatOptimizer
from repro.core.verify import verify_placement
from repro.experiments.generators import attach_flow_descriptors
from repro.milp.bnb import BranchAndBoundBackend
from repro.milp.model import SolveStatus
from repro.net.fattree import fattree
from repro.net.generators import leaf_spine, random_graph, ring
from repro.net.routing import ShortestPathRouter
from repro.policy.classbench import PolicyGeneratorConfig, generate_policy_set

_QUICK = os.environ.get("REPRO_FUZZ_QUICK") == "1"
_CAMPAIGN_SEEDS = range(8) if _QUICK else range(24)
_DIFF_SEEDS = range(int(os.environ.get("REPRO_FUZZ_SEEDS",
                                       "6" if _QUICK else "14")))


def build_random_scenario(seed: int) -> PlacementInstance:
    rng = random.Random(seed)
    kind = rng.choice(["fattree", "leaf_spine", "ring", "random"])
    capacity = rng.choice([6, 10, 18, 40])
    if kind == "fattree":
        topo = fattree(4, capacity=capacity)
    elif kind == "leaf_spine":
        topo = leaf_spine(rng.randint(3, 5), rng.randint(2, 3),
                          capacity=capacity)
    elif kind == "ring":
        topo = ring(rng.randint(4, 7), capacity=capacity)
    else:
        topo = random_graph(rng.randint(6, 10), degree=3,
                            capacity=capacity, seed=seed)
    ports = [p.name for p in topo.entry_ports]
    num_ingresses = rng.randint(2, min(5, len(ports) - 1))
    ingresses = rng.sample(ports, num_ingresses)
    router = ShortestPathRouter(topo, seed=seed)
    routing = router.random_routing(
        rng.randint(num_ingresses, 3 * num_ingresses), ingresses=ingresses
    )
    if rng.random() < 0.4:
        routing = attach_flow_descriptors(routing, seed=seed)
    config = PolicyGeneratorConfig(
        num_rules=rng.randint(4, 12),
        drop_fraction=rng.uniform(0.3, 0.7),
        nested_fraction=rng.uniform(0.2, 0.7),
    )
    policies = generate_policy_set(
        ingresses, rules_per_policy=config.num_rules, seed=seed,
        config=config,
        blacklist_rules=rng.choice([0, 0, 2]),
    )
    return PlacementInstance(topo, routing, policies)


@pytest.mark.parametrize("seed", _CAMPAIGN_SEEDS)
def test_cross_engine_consistency(seed):
    instance = build_random_scenario(seed)

    ilp = RulePlacer().place(instance)
    merged = RulePlacer(PlacerConfig(enable_merging=True)).place(instance)
    sat = SatPlacer().place(instance)
    greedy = place_greedy(instance)

    # Feasibility agreement between exact engines.
    assert ilp.status.has_solution == sat.status.has_solution, instance.summary()
    # Merging can only help.
    assert merged.status.has_solution >= ilp.status.has_solution

    if not ilp.is_feasible:
        # Greedy may not find what doesn't exist.
        assert not greedy.is_feasible
        return

    # Every feasible result verifies exactly.
    for label, placement in (("ilp", ilp), ("merged", merged), ("sat", sat)):
        report = verify_placement(placement)
        assert report.ok, (seed, label, report.errors[:2])

    # Objective ordering.
    assert merged.total_installed() <= ilp.total_installed()
    assert sat.total_installed() >= ilp.total_installed()
    if greedy.is_feasible:
        assert verify_placement(greedy).ok
        assert greedy.total_installed() >= ilp.total_installed()

    # Own B&B agrees with HiGHS on small encodings.
    if ilp.num_variables <= 300:
        bnb = RulePlacer(
            PlacerConfig(backend=BranchAndBoundBackend(time_limit=60))
        ).place(instance)
        assert bnb.is_feasible
        assert bnb.objective_value == pytest.approx(ilp.objective_value)

    # Synthesized tables replay correctly.
    from repro.core.tags import synthesize

    dataplane = synthesize(ilp)
    mismatches = dataplane.check_routing_sampled(
        list(instance.policies), instance.routing, seed=seed,
        samples_per_rule=4,
    )
    assert mismatches == [], (seed, str(mismatches[0]))


# ---------------------------------------------------------------------------
# Portfolio as differential oracle
# ---------------------------------------------------------------------------


def build_small_scenario(seed: int) -> PlacementInstance:
    """Like :func:`build_random_scenario` but sized so *every* exact
    backend (including pure-Python B&B and the SAT optimizer) proves
    its optimum in well under a second."""
    rng = random.Random(10_000 + seed)
    capacity = rng.choice([4, 6, 10])
    kind = rng.choice(["leaf_spine", "ring", "random"])
    if kind == "leaf_spine":
        topo = leaf_spine(rng.randint(2, 3), 2, capacity=capacity)
    elif kind == "ring":
        topo = ring(rng.randint(4, 5), capacity=capacity)
    else:
        topo = random_graph(rng.randint(5, 7), degree=3,
                            capacity=capacity, seed=seed)
    ports = [p.name for p in topo.entry_ports]
    ingresses = rng.sample(ports, rng.randint(2, min(3, len(ports))))
    router = ShortestPathRouter(topo, seed=seed)
    routing = router.random_routing(
        rng.randint(len(ingresses), 2 * len(ingresses)), ingresses=ingresses
    )
    config = PolicyGeneratorConfig(
        num_rules=rng.randint(3, 7),
        drop_fraction=rng.uniform(0.3, 0.6),
        nested_fraction=rng.uniform(0.2, 0.5),
    )
    policies = generate_policy_set(
        ingresses, rules_per_policy=config.num_rules, seed=seed, config=config,
    )
    return PlacementInstance(topo, routing, policies)


class TestPortfolioDifferential:
    """Every individual backend vs the portfolio, seed by seed."""

    @pytest.mark.parametrize("seed", _DIFF_SEEDS)
    def test_portfolio_matches_every_backend(self, seed):
        instance = build_small_scenario(seed)
        ctx = f"seed={seed} instance={instance.summary()!r}"

        highs = RulePlacer().place(instance)
        bnb = RulePlacer(
            PlacerConfig(backend=BranchAndBoundBackend(time_limit=120))
        ).place(instance)
        sat = SatOptimizer().minimize(instance).placement

        # Each backend individually reaches a conclusive answer.
        for label, single in (("highs", highs), ("bnb", bnb), ("satopt", sat)):
            assert single.status in (
                SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE
            ), f"{ctx}: {label} was not conclusive: {single.status}"

        # All agree on feasibility.
        assert highs.is_feasible == bnb.is_feasible == sat.is_feasible, (
            f"{ctx}: feasibility disagreement "
            f"(highs={highs.status}, bnb={bnb.status}, sat={sat.status})"
        )

        # Race the same instance: inline (deterministic order) and
        # process (true concurrency) must both reproduce the optimum.
        executors = ("inline", "process") if seed % 2 == 0 else ("inline",)
        for executor in executors:
            portfolio = RulePlacer(PlacerConfig(
                backend="portfolio", deadline=120.0, executor=executor,
            )).place(instance)
            assert portfolio.status is highs.status, (
                f"{ctx}: portfolio[{executor}] status {portfolio.status} "
                f"!= single-backend {highs.status} "
                f"(winner={portfolio.winner})"
            )
            if not highs.is_feasible:
                continue
            for label, single in (("highs", highs), ("bnb", bnb), ("satopt", sat)):
                assert portfolio.objective_value == pytest.approx(
                    single.objective_value
                ), (
                    f"{ctx}: portfolio[{executor}] objective "
                    f"{portfolio.objective_value} != {label} optimum "
                    f"{single.objective_value} (winner={portfolio.winner})"
                )
            assert portfolio.total_installed() == highs.total_installed(), ctx
            report = verify_placement(portfolio)
            assert report.ok, f"{ctx}: {report.errors[:2]}"

    @pytest.mark.parametrize("seed", [s for s in _DIFF_SEEDS][:3])
    def test_portfolio_survives_hostile_engine(self, seed):
        """A crash-injected engine must never change the answer."""
        from repro.solve.portfolio import EngineSpec

        def hostile(task):
            raise RuntimeError(f"hostile engine, seed {seed}")

        instance = build_small_scenario(seed)
        reference = RulePlacer().place(instance)
        placement = RulePlacer(PlacerConfig(
            backend="portfolio", deadline=120.0, executor="inline",
            engines=(EngineSpec("hostile", hostile), "highs", "bnb", "satopt"),
        )).place(instance)
        assert placement.status is reference.status, f"seed={seed}"
        assert placement.objective_value == reference.objective_value, (
            f"seed={seed}: {placement.objective_value} "
            f"!= {reference.objective_value}"
        )
        telemetry = placement.solver_stats["portfolio"]
        assert telemetry["engines"]["hostile"]["outcome"] == "crashed", (
            f"seed={seed}"
        )


# ---------------------------------------------------------------------------
# Warm-session axis: warm patched models vs cold re-encodes
# ---------------------------------------------------------------------------

_WARM_SEEDS = (_CAMPAIGN_SEEDS
               if os.environ.get("REPRO_FUZZ_WARM") == "1"
               else range(5))


class TestWarmSessionAxis:
    """The fuzz campaign's warm-vs-cold axis (``REPRO_FUZZ_WARM=1``
    widens it to every campaign seed): on the *large* random scenario
    family -- fat-trees, flow slicing, shared blacklists -- a warm
    :class:`~repro.solve.session.SolverSession` must answer every
    incremental delta exactly like the cold re-encoding path."""

    @pytest.mark.parametrize("seed", _WARM_SEEDS)
    def test_warm_session_matches_cold_deltas(self, seed):
        from repro.core.incremental import IncrementalDeployer
        from repro.core.verify import verify_placement
        from repro.solve.session import SolverSession

        rng = random.Random(90_000 + seed)
        instance = build_random_scenario(seed)
        base = RulePlacer().place(instance)
        if not base.is_feasible:
            pytest.skip(f"seed {seed}: base instance infeasible")

        session = SolverSession()
        warm = IncrementalDeployer(base)
        warm.attach_session(session)
        cold = IncrementalDeployer(base)
        router = ShortestPathRouter(instance.topology, seed=seed + 7)

        steps = 0
        for _ in range(6):
            ingresses = list(warm._state)
            if not ingresses:
                break
            ingress = rng.choice(ingresses)
            routing = router.random_routing(rng.randint(1, 3),
                                            ingresses=[ingress])
            new_paths = routing.paths(ingress)
            if not new_paths:
                continue
            try_greedy = rng.random() < 0.5
            warm_r = warm.preview_reroute(ingress, new_paths,
                                          try_greedy=try_greedy)
            cold_r = cold.preview_reroute(ingress, new_paths,
                                          try_greedy=try_greedy)
            ctx = f"seed={seed} ingress={ingress!r}"
            assert (warm_r.status.has_solution
                    == cold_r.status.has_solution), (
                f"{ctx}: warm={warm_r.status} cold={cold_r.status}")
            if (warm_r.is_feasible and warm_r.method == "ilp"
                    and cold_r.method == "ilp"):
                assert warm_r.installed_rules == cold_r.installed_rules, ctx
            if warm_r.is_feasible:
                warm.apply_reroute(ingress, new_paths, warm_r.placed)
                cold.apply_reroute(ingress, new_paths, warm_r.placed)
                steps += 1
        if steps:
            assert verify_placement(warm.as_placement()).ok
        telemetry = session.telemetry()
        assert telemetry["fallbacks"] == 0, (seed, telemetry)
