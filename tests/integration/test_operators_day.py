"""One narrative integration test: a day in the life of the network.

Chains every subsystem in the order an operator would touch them:

  morning   -- capacity-plan the fabric, deploy the optimal placement;
  10:00     -- a new tenant onboards (incremental install, text policy);
  11:30     -- security pushes a blacklist update (policy modification);
  14:00     -- a link fails; routing heals; rules follow incrementally;
  15:00     -- traffic engineering re-optimizes for upstream drops; the
               controller transitions the live tables hitlessly;
  end of day-- audit: message log replays to the exact dataplane, the
               Big Switch spec is still refined, books balance.

Each step asserts its own invariants; a failure pinpoints the broken
subsystem interaction.
"""

from __future__ import annotations

import pytest

from repro import (
    BigSwitch,
    Controller,
    IncrementalDeployer,
    PlacementInstance,
    PlacerConfig,
    RulePlacer,
    ShortestPathRouter,
    UpstreamDrops,
    check_refinement,
    fail_link,
    fattree,
    generate_policy_set,
    reroute_after_failure,
    verify_placement,
)
from repro.core.capacity import min_uniform_capacity
from repro.dataplane.messages import replay
from repro.policy.textfmt import parse_policy


def test_operators_day():
    # ---- morning: plan and deploy -------------------------------------
    topo = fattree(4, capacity=100)
    ports = [p.name for p in topo.entry_ports]
    tenants = ports[:6]
    router = ShortestPathRouter(topo, seed=9)
    routing = router.random_routing(12, ingresses=tenants)
    policies = generate_policy_set(tenants, rules_per_policy=10, seed=9)
    instance = PlacementInstance(topo, routing, policies)

    plan = min_uniform_capacity(instance, hi=100)
    assert plan.found
    # Provision 2x headroom over the bare minimum.
    provisioned = max(2 * plan.minimum_capacity, 20)
    topo.set_uniform_capacity(provisioned)
    instance = PlacementInstance(topo, routing, policies)

    placement = RulePlacer().place(instance)
    assert placement.is_feasible
    spec = BigSwitch(policies, routing)
    assert check_refinement(spec, instance, placement).ok

    controller = Controller(instance)
    controller.deploy(placement)
    deployer = IncrementalDeployer(placement)

    # ---- 10:00: tenant onboarding from a text policy -------------------
    newcomer = ports[10]
    tenant_policy = parse_policy(
        """
        permit src 10.7.0.0/16 dport 443 proto tcp
        permit src 10.7.0.0/16 dport 53 proto udp
        deny   src 10.7.0.0/16
        """,
        newcomer,
    )
    path = router.shortest_path(newcomer, ports[0])
    install = deployer.install_policy(tenant_policy, [path])
    assert install.is_feasible
    assert verify_placement(deployer.as_placement()).ok

    # ---- 11:30: security update to an existing tenant ------------------
    target = tenants[0]
    updated = generate_policy_set([target], rules_per_policy=14, seed=99)[target]
    security = deployer.modify_policy(updated)
    assert security.is_feasible
    midday = deployer.as_placement()
    assert verify_placement(midday).ok
    assert midday.instance.policies[target] is updated

    # ---- 14:00: link failure and repair ---------------------------------
    current_routing = midday.instance.routing
    victim = next(p for p in current_routing.all_paths()
                  if len(p.switches) >= 3)
    failure = fail_link(topo, victim.switches[0], victim.switches[1])
    outcome = reroute_after_failure(
        deployer, topo, current_routing, failure
    )
    assert not outcome.disconnected
    afternoon = deployer.as_placement()
    assert verify_placement(afternoon).ok
    for path in afternoon.instance.routing.all_paths():
        for a, b in zip(path.switches, path.switches[1:]):
            assert topo.graph.has_edge(a, b)

    # ---- 15:00: re-optimize for upstream drops, transition live ---------
    te_placement = RulePlacer(
        PlacerConfig(objective=UpstreamDrops())
    ).place(afternoon.instance)
    assert te_placement.is_feasible
    controller.transition(te_placement)
    mismatches = controller.dataplane.check_routing_sampled(
        list(afternoon.instance.policies),
        afternoon.instance.routing, seed=1, samples_per_rule=4,
    )
    assert mismatches == []

    # ---- end of day: audit ----------------------------------------------
    replayed = {
        name: table
        for name, table in replay(
            controller.log, dict(afternoon.instance.capacities)
        ).items()
        if table.occupancy()
    }
    live = {
        name: table for name, table in controller.dataplane.tables.items()
        if table.occupancy()
    }
    assert set(replayed) == set(live)
    for name in live:
        assert set(replayed[name].entries) == set(live[name].entries)

    closing_spec = BigSwitch(
        afternoon.instance.policies, afternoon.instance.routing
    )
    assert check_refinement(
        closing_spec, afternoon.instance, te_placement
    ).ok
    # Books balance: controller entry count equals the placement's.
    assert controller.total_entries() == te_placement.total_installed()
    # No switch over capacity anywhere, all day long.
    assert te_placement.capacity_violations() == {}
