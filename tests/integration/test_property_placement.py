"""Property-based integration tests: on randomized small instances the
ILP engine's answers are always certified by the independent verifier,
and agree with the SAT engine and (on feasibility) the greedy baseline.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.instance import PlacementInstance
from repro.core.placement import PlacerConfig, RulePlacer
from repro.core.satenc import SatPlacer
from repro.core.verify import verify_placement
from repro.baselines import place_greedy
from repro.net.routing import Path, Routing
from repro.net.topology import Topology
from repro.policy.policy import Policy, PolicySet
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch

WIDTH = 5


def random_instance(seed: int, capacity: int) -> PlacementInstance:
    """A random 2-ingress diamond network with random 5-bit policies."""
    rng = random.Random(seed)
    topo = Topology()
    for name in ("ia", "ib", "m1", "m2", "d"):
        topo.add_switch(name, capacity)
    topo.add_link("ia", "m1")
    topo.add_link("ia", "m2")
    topo.add_link("ib", "m1")
    topo.add_link("ib", "m2")
    topo.add_link("m1", "d")
    topo.add_link("m2", "d")
    topo.add_entry_port("a", "ia")
    topo.add_entry_port("b", "ib")
    topo.add_entry_port("o", "d")

    def random_policy(ingress: str) -> Policy:
        rules = []
        for priority in range(rng.randint(1, 6), 0, -1):
            mask = rng.getrandbits(WIDTH)
            value = rng.getrandbits(WIDTH) & mask
            action = Action.DROP if rng.random() < 0.5 else Action.PERMIT
            rules.append(Rule(TernaryMatch(WIDTH, mask, value), action, priority))
        return Policy(ingress, rules)

    policies = PolicySet([random_policy("a"), random_policy("b")])
    routing = Routing()
    for ingress, first in (("a", "ia"), ("b", "ib")):
        for mid in rng.sample(["m1", "m2"], rng.randint(1, 2)):
            routing.add_path(Path(ingress, "o", (first, mid, "d")))
    return PlacementInstance(topo, routing, policies)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000), st.sampled_from([1, 2, 3, 8]))
def test_ilp_placements_always_verify(seed, capacity):
    instance = random_instance(seed, capacity)
    placement = RulePlacer().place(instance)
    if placement.is_feasible:
        verify_placement(placement, simulate=True).raise_on_error()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000), st.sampled_from([1, 2, 3, 8]))
def test_sat_agrees_with_ilp(seed, capacity):
    instance = random_instance(seed, capacity)
    ilp = RulePlacer().place(instance)
    sat = SatPlacer().place(instance)
    assert ilp.status.has_solution == sat.status.has_solution
    if sat.is_feasible:
        verify_placement(sat).raise_on_error()
        assert sat.total_installed() >= ilp.total_installed()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000), st.sampled_from([2, 3, 8]))
def test_greedy_feasible_implies_ilp_feasible(seed, capacity):
    """Greedy success is a witness; the exact engine must agree, and
    never with a worse optimum."""
    instance = random_instance(seed, capacity)
    greedy = place_greedy(instance)
    if greedy.is_feasible:
        ilp = RulePlacer().place(instance)
        assert ilp.is_feasible
        assert ilp.total_installed() <= greedy.total_installed()
        verify_placement(greedy).raise_on_error()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000))
def test_merging_never_increases_optimum(seed):
    instance = random_instance(seed, capacity=8)
    plain = RulePlacer().place(instance)
    merged = RulePlacer(PlacerConfig(enable_merging=True)).place(instance)
    assert plain.status.has_solution <= merged.status.has_solution
    if plain.is_feasible and merged.is_feasible:
        assert merged.total_installed() <= plain.total_installed()
        verify_placement(merged).raise_on_error()
