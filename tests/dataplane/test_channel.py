"""Tests for the seeded unreliable control channel."""

from __future__ import annotations

import pytest

from repro.dataplane.channel import (
    ChannelConfig,
    ControlChannel,
    SwitchAgent,
)
from repro.dataplane.messages import (
    Barrier,
    BarrierReply,
    FlowAck,
    FlowMod,
    FlowModCommand,
    FlowModFailed,
    SetDefaultAction,
    TableStatsReply,
    TableStatsRequest,
)
from repro.dataplane.switch import SwitchTable, TableAction
from repro.policy.ternary import TernaryMatch


def _mod(switch: str, xid: int, pattern: str = "1***", priority: int = 10,
         action: TableAction = TableAction.DROP) -> FlowMod:
    return FlowMod(switch, FlowModCommand.ADD,
                   TernaryMatch.from_string(pattern), priority, action,
                   xid=xid)


def _channel(**rates) -> ControlChannel:
    channel = ControlChannel(ChannelConfig(**rates))
    channel.attach("s1", SwitchTable("s1", 10))
    return channel


class TestChannelConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ChannelConfig(drop_rate=1.0)
        with pytest.raises(ValueError):
            ChannelConfig(reorder_rate=-0.1)
        with pytest.raises(ValueError):
            ChannelConfig(max_delay=-1)

    def test_perfect_by_default(self):
        assert not ChannelConfig().is_faulty
        assert ChannelConfig(drop_rate=0.1).is_faulty


class TestPerfectDelivery:
    def test_flow_mod_applied_and_acked(self):
        channel = _channel()
        channel.send(_mod("s1", xid=1))
        replies = channel.drain()
        assert replies == [FlowAck("s1", 1)]
        assert channel.tables()["s1"].occupancy() == 1

    def test_barrier_and_stats_replies(self):
        channel = _channel()
        channel.send(Barrier("s1", xid=2))
        channel.send(TableStatsRequest("s1", xid=3))
        replies = channel.drain()
        assert BarrierReply("s1", 2) in replies
        assert any(isinstance(r, TableStatsReply) for r in replies)

    def test_routing_requires_switch(self):
        channel = _channel()
        with pytest.raises(ValueError):
            channel.send(object())

    def test_set_default_action(self):
        channel = _channel()
        channel.send(SetDefaultAction("s1", TableAction.DROP, xid=4))
        channel.drain()
        assert channel.tables()["s1"].default_action is TableAction.DROP


class TestFaultLottery:
    def test_drops_are_seeded_and_deterministic(self):
        def run(seed):
            channel = ControlChannel(ChannelConfig(drop_rate=0.5, seed=seed))
            channel.attach("s1", SwitchTable("s1", 100))
            pattern = []
            for xid in range(1, 41):
                channel.send(_mod("s1", xid=xid, priority=xid))
                pattern.append(channel.stats.dropped)
            channel.drain()
            return pattern

        assert run(7) == run(7)
        assert run(7) != run(8)
        assert run(7)[-1] > 0

    def test_duplicates_reach_agent_once(self):
        channel = ControlChannel(ChannelConfig(duplicate_rate=0.9, seed=3))
        channel.attach("s1", SwitchTable("s1", 100))
        for xid in range(1, 21):
            channel.send(_mod("s1", xid=xid, priority=xid))
        channel.drain()
        agent = channel.agent("s1")
        assert channel.stats.duplicated > 0
        assert agent.applied == 20
        assert agent.deduped + channel.stats.redelivered > 0
        assert channel.tables()["s1"].occupancy() == 20

    def test_reorder_never_reaches_agent_out_of_sequence(self):
        """The in-order layer: whatever the wire does, first delivery at
        the agent follows the send order."""
        applied = []
        channel = ControlChannel(ChannelConfig(
            reorder_rate=0.8, max_delay=4, seed=11,
        ))
        channel.attach("s1", SwitchTable("s1", 100))
        channel.on_deliver = lambda m: applied.append(m.xid)
        for xid in range(1, 31):
            channel.send(_mod("s1", xid=xid, priority=xid))
        channel.drain(max_rounds=128)
        assert channel.stats.reordered > 0
        first_seen = list(dict.fromkeys(applied))
        assert first_seen == sorted(first_seen)

    def test_retransmission_fills_the_gap(self):
        """A dropped message blocks later ones (hold-back); resending it
        with the same xid releases the held messages in order."""
        channel = ControlChannel(ChannelConfig(seed=0))
        channel.attach("s1", SwitchTable("s1", 100))
        mods = [_mod("s1", xid=x, priority=x) for x in (1, 2, 3)]
        channel.send(mods[0])
        channel.drain()
        # Simulate a drop of xid=2 by never having sent it, then send 3:
        # sequence 2 is consumed by the "lost" send below.
        lost = _mod("s1", xid=2, priority=2)
        channel.reconfigure(drop_rate=0.999999)
        channel.send(lost)
        channel.reconfigure(drop_rate=0.0)
        channel.send(mods[2])
        channel.drain()
        # xid=3 arrived early and is held, not applied: only xid=1 is in.
        assert channel.tables()["s1"].occupancy() == 1
        assert channel.stats.held_for_order == 1
        # Retransmit the lost message: same xid, same sequence slot.
        channel.send(lost)
        channel.drain()
        assert channel.tables()["s1"].occupancy() == 3
        applied = sorted(e.priority for e in channel.tables()["s1"].entries)
        assert applied == [1, 2, 3]


class TestPartitionsAndReboots:
    def test_partition_eats_both_directions(self):
        channel = _channel()
        channel.partition("s1")
        channel.send(_mod("s1", xid=1))
        assert channel.drain() == []
        assert channel.stats.partition_drops > 0
        assert channel.tables()["s1"].occupancy() == 0
        channel.heal("s1")
        channel.send(_mod("s1", xid=1))
        assert channel.drain() == [FlowAck("s1", 1)]

    def test_heal_all(self):
        channel = _channel()
        channel.attach("s2", SwitchTable("s2", 10))
        channel.partition("s1")
        channel.partition("s2")
        channel.heal()
        assert channel.partitioned == set()

    def test_reboot_fail_secure(self):
        channel = _channel()
        channel.send(_mod("s1", xid=1))
        channel.drain()
        channel.reboot("s1")
        table = channel.tables()["s1"]
        assert table.occupancy() == 0
        assert table.default_action is TableAction.DROP
        assert channel.agent("s1").reboots == 1

    def test_reboot_clears_dedup_so_retransmit_reapplies(self):
        channel = _channel()
        mod = _mod("s1", xid=1)
        channel.send(mod)
        channel.drain()
        channel.reboot("s1")
        channel.send(mod)
        channel.drain()
        assert channel.tables()["s1"].occupancy() == 1

    def test_reboot_severs_in_flight(self):
        channel = ControlChannel(ChannelConfig(max_delay=5, seed=2))
        channel.attach("s1", SwitchTable("s1", 10))
        for xid in range(1, 6):
            channel.send(_mod("s1", xid=xid, priority=xid))
        channel.reboot("s1")
        channel.drain(max_rounds=32)
        assert channel.tables()["s1"].occupancy() == 0


class TestAgent:
    def test_table_full_reported_not_raised(self):
        agent = SwitchAgent(SwitchTable("s1", 1))
        ok = agent.receive(_mod("s1", xid=1, priority=1))
        full = agent.receive(_mod("s1", xid=2, pattern="0***", priority=2))
        assert ok == [FlowAck("s1", 1)]
        assert full == [FlowModFailed("s1", 2, "table-full")]
        assert agent.rejected == 1

    def test_duplicate_xid_reacked_not_reapplied(self):
        agent = SwitchAgent(SwitchTable("s1", 10))
        mod = _mod("s1", xid=1)
        assert agent.receive(mod) == [FlowAck("s1", 1)]
        assert agent.receive(mod) == [FlowAck("s1", 1)]
        assert agent.applied == 1
        assert agent.deduped == 1

    def test_non_fail_secure_reboot_keeps_forwarding(self):
        agent = SwitchAgent(SwitchTable("s1", 10), fail_secure=False)
        agent.reboot()
        assert agent.table.default_action is TableAction.FORWARD


class TestDeterminism:
    def test_full_storm_is_bit_reproducible(self):
        def run():
            channel = ControlChannel(ChannelConfig(
                drop_rate=0.3, duplicate_rate=0.2, reorder_rate=0.3,
                max_delay=3, seed=99,
            ))
            channel.attach("s1", SwitchTable("s1", 100))
            channel.attach("s2", SwitchTable("s2", 100))
            for xid in range(1, 31):
                channel.send(_mod("s1" if xid % 2 else "s2", xid=xid,
                                  priority=xid))
            # Retransmit everything once, as a lossy controller would.
            for xid in range(1, 31):
                channel.send(_mod("s1" if xid % 2 else "s2", xid=xid,
                                  priority=xid))
            channel.drain(max_rounds=128)
            state = {
                name: sorted(e.priority for e in table.entries)
                for name, table in channel.tables().items()
            }
            return state, channel.stats.as_dict()

        assert run() == run()
