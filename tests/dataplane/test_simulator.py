"""Tests for end-to-end dataplane simulation."""

from __future__ import annotations

import random

import pytest

from repro.dataplane.simulator import Dataplane, Verdict
from repro.dataplane.switch import SwitchTable, TableAction, TcamEntry
from repro.net.routing import Path, Routing
from repro.policy.policy import Policy
from repro.policy.rule import Action, Rule
from repro.policy.ternary import TernaryMatch


def entry(pattern: str, action: TableAction, priority: int, tags=None) -> TcamEntry:
    return TcamEntry(
        TernaryMatch.from_string(pattern), action, priority,
        None if tags is None else frozenset(tags),
    )


@pytest.fixture
def simple_dataplane():
    """Two switches: t1 drops 1*0* unless 11** (permit); t2 drops 0***."""
    t1 = SwitchTable("s1", 4)
    t1.install(entry("11**", TableAction.FORWARD, 2))
    t1.install(entry("1*0*", TableAction.DROP, 1))
    t2 = SwitchTable("s2", 4)
    t2.install(entry("0***", TableAction.DROP, 1))
    return Dataplane({"s1": t1, "s2": t2}, ingress_tags={"in": 0})


class TestSend:
    def test_dropped_at_first_switch(self, simple_dataplane):
        path = Path("in", "out", ("s1", "s2"))
        verdict, trace = simple_dataplane.send(path, 0b1000, 4)
        assert verdict is Verdict.DROPPED
        assert [t.switch for t in trace] == ["s1"]
        assert trace[-1].action is TableAction.DROP

    def test_dropped_downstream(self, simple_dataplane):
        path = Path("in", "out", ("s1", "s2"))
        verdict, trace = simple_dataplane.send(path, 0b0000, 4)
        assert verdict is Verdict.DROPPED
        assert [t.switch for t in trace] == ["s1", "s2"]

    def test_delivered(self, simple_dataplane):
        path = Path("in", "out", ("s1", "s2"))
        assert simple_dataplane.verdict(path, 0b1100, 4) is Verdict.DELIVERED
        assert simple_dataplane.verdict(path, 0b1010, 4) is Verdict.DELIVERED

    def test_switch_without_table_forwards(self, simple_dataplane):
        path = Path("in", "out", ("s9", "s2"))
        assert simple_dataplane.verdict(path, 0b1111, 4) is Verdict.DELIVERED

    def test_total_installed(self, simple_dataplane):
        assert simple_dataplane.total_installed() == 3


class TestConformance:
    def test_matching_tables_pass(self, simple_dataplane):
        policy = Policy("in", [
            Rule(TernaryMatch.from_string("11**"), Action.PERMIT, 3),
            Rule(TernaryMatch.from_string("1*0*"), Action.DROP, 2),
            Rule(TernaryMatch.from_string("0***"), Action.DROP, 1),
        ])
        routing = Routing([Path("in", "out", ("s1", "s2"))])
        mismatches = simple_dataplane.check_routing_sampled(
            [policy], routing, seed=0, samples_per_rule=16
        )
        assert mismatches == []

    def test_detects_missing_drop(self, simple_dataplane):
        """A policy expecting more drops than installed must mismatch."""
        policy = Policy("in", [
            Rule(TernaryMatch.from_string("****"), Action.DROP, 1),
        ])
        routing = Routing([Path("in", "out", ("s1", "s2"))])
        mismatches = simple_dataplane.check_routing_sampled(
            [policy], routing, seed=0, samples_per_rule=16
        )
        assert mismatches
        assert mismatches[0].expected is Verdict.DROPPED
        assert mismatches[0].actual is Verdict.DELIVERED

    def test_detects_wrongful_drop(self, simple_dataplane):
        policy = Policy("in", [
            Rule(TernaryMatch.from_string("11**"), Action.PERMIT, 3),
            Rule(TernaryMatch.from_string("0***"), Action.DROP, 1),
        ])  # 1*0* should NOT be dropped under this policy
        routing = Routing([Path("in", "out", ("s1", "s2"))])
        mismatches = simple_dataplane.check_routing_sampled(
            [policy], routing, seed=0, samples_per_rule=32
        )
        assert any(m.actual is Verdict.DROPPED for m in mismatches)

    def test_flow_descriptor_restricts_probes(self, simple_dataplane):
        """With a flow excluding the mismatch region, the check passes."""
        policy = Policy("in", [
            Rule(TernaryMatch.from_string("11**"), Action.PERMIT, 3),
            Rule(TernaryMatch.from_string("1*0*"), Action.DROP, 2),
            Rule(TernaryMatch.from_string("0***"), Action.DROP, 1),
        ])
        flow = TernaryMatch.from_string("1***")
        # s2's 0*** drop is now unreachable by this path's packets.
        routing = Routing([Path("in", "out", ("s1",), flow=flow)])
        mismatches = simple_dataplane.check_routing_sampled(
            [policy], routing, seed=0, samples_per_rule=16
        )
        assert mismatches == []
