"""Tests for the OpenFlow-style message layer and controller audit log."""

from __future__ import annotations

import pytest

from repro.core.controller import Controller
from repro.core.objectives import UpstreamDrops
from repro.core.placement import PlacerConfig, RulePlacer
from repro.dataplane.messages import (
    Barrier,
    FlowMod,
    FlowModCommand,
    MessageLog,
    PacketIn,
    apply_flow_mod,
    replay,
)
from repro.dataplane.switch import SwitchTable, TableAction
from repro.experiments import ExperimentConfig, build_instance
from repro.policy.ternary import TernaryMatch


def add_mod(switch="s1", pattern="1***", priority=1,
            action=TableAction.DROP, xid=0) -> FlowMod:
    return FlowMod(switch, FlowModCommand.ADD,
                   TernaryMatch.from_string(pattern), priority, action,
                   xid=xid)


class TestApplyFlowMod:
    def test_add_installs(self):
        table = SwitchTable("s1", 4)
        apply_flow_mod(table, add_mod())
        assert table.occupancy() == 1

    def test_add_respects_capacity(self):
        from repro.dataplane.switch import TableFullError

        table = SwitchTable("s1", 0)
        with pytest.raises(TableFullError):
            apply_flow_mod(table, add_mod())

    def test_delete_strict_exact_only(self):
        table = SwitchTable("s1", 4)
        apply_flow_mod(table, add_mod(priority=1))
        apply_flow_mod(table, add_mod(priority=2))
        delete = FlowMod("s1", FlowModCommand.DELETE_STRICT,
                         TernaryMatch.from_string("1***"), 1)
        apply_flow_mod(table, delete)
        assert table.occupancy() == 1
        assert table.entries[0].priority == 2

    def test_delete_missing_is_noop(self):
        table = SwitchTable("s1", 4)
        delete = FlowMod("s1", FlowModCommand.DELETE_STRICT,
                         TernaryMatch.from_string("1***"), 9)
        apply_flow_mod(table, delete)
        assert table.occupancy() == 0

    def test_describe(self):
        text = add_mod(xid=7).describe()
        assert "xid=7" in text and "add" in text


class TestMessageLog:
    def test_ordering_and_counts(self):
        log = MessageLog()
        log.record(add_mod(xid=log.next_xid()))
        log.record(Barrier("s1", xid=log.next_xid()))
        log.record(PacketIn("s1", header=3, width=4))
        assert len(log) == 3
        assert log.counts() == {"FlowMod": 1, "Barrier": 1, "PacketIn": 1}
        assert len(log.flow_mods()) == 1
        assert len(log.for_switch("s1")) == 3

    def test_xids_monotonic(self):
        log = MessageLog()
        assert log.next_xid() < log.next_xid() < log.next_xid()

    def test_replay_builds_tables(self):
        log = MessageLog()
        log.record(add_mod("s1", "1***", 2))
        log.record(add_mod("s1", "0***", 1))
        log.record(add_mod("s2", "****", 1))
        log.record(FlowMod("s1", FlowModCommand.DELETE_STRICT,
                           TernaryMatch.from_string("0***"), 1))
        tables = replay(log, {"s1": 4, "s2": 4})
        assert tables["s1"].occupancy() == 1
        assert tables["s2"].occupancy() == 1


class TestControllerAudit:
    """The audit property: replaying the controller's log reconstructs
    its dataplane exactly -- across deploy and live transitions."""

    @pytest.fixture(scope="class")
    def scenario(self):
        instance = build_instance(ExperimentConfig(
            k=4, num_paths=12, rules_per_policy=8, capacity=30,
            num_ingresses=4, seed=12, drop_fraction=0.5, nested_fraction=0.5,
        ))
        a = RulePlacer().place(instance)
        b = RulePlacer(PlacerConfig(objective=UpstreamDrops())).place(instance)
        return instance, a, b

    @staticmethod
    def assert_replay_matches(controller):
        capacities = dict(controller.instance.capacities)
        replayed = {
            name: table
            for name, table in replay(controller.log, capacities).items()
            if table.occupancy()
        }
        live = {
            name: table for name, table in controller.dataplane.tables.items()
            if table.occupancy()
        }
        assert set(replayed) == set(live)
        for name in live:
            assert set(replayed[name].entries) == set(live[name].entries), name

    def test_after_deploy(self, scenario):
        instance, a, _ = scenario
        controller = Controller(instance)
        controller.deploy(a)
        self.assert_replay_matches(controller)
        # Barriers bracket the rollout.
        assert any(isinstance(m, Barrier) for m in controller.log.messages)

    def test_after_transition(self, scenario):
        instance, a, b = scenario
        controller = Controller(instance)
        controller.deploy(a)
        controller.transition(b)
        self.assert_replay_matches(controller)

    def test_after_round_trip(self, scenario):
        instance, a, b = scenario
        controller = Controller(instance)
        controller.deploy(a)
        controller.transition(b)
        controller.transition(a)
        self.assert_replay_matches(controller)

    def test_log_counts_match_stats(self, scenario):
        instance, a, b = scenario
        controller = Controller(instance)
        controller.deploy(a)
        controller.transition(b)
        adds = sum(
            1 for m in controller.log.flow_mods()
            if m.command is FlowModCommand.ADD
        )
        deletes = sum(
            1 for m in controller.log.flow_mods()
            if m.command is FlowModCommand.DELETE_STRICT
        )
        assert adds == controller.stats.installs_sent
        assert deletes == controller.stats.deletes_sent


class TestXidAssignment:
    """Satellite of the reliability work: no message leaves the log
    with the unassigned sentinel xid 0, and no xid repeats."""

    def test_record_assigns_missing_xid(self):
        log = MessageLog()
        recorded = log.record(add_mod())
        assert recorded.xid > 0
        assert log.messages[0] is recorded

    def test_record_preserves_explicit_xid(self):
        log = MessageLog()
        recorded = log.record(add_mod(xid=77))
        assert recorded.xid == 77

    def test_record_refuses_duplicate_xid(self):
        log = MessageLog()
        log.record(add_mod(xid=5))
        with pytest.raises(ValueError):
            log.record(Barrier("s1", xid=5))

    def test_assigned_xids_are_unique(self):
        log = MessageLog()
        xids = {log.record(add_mod(priority=i)).xid for i in range(50)}
        assert len(xids) == 50
        assert 0 not in xids


class TestAddOverwrite:
    def test_add_overwrites_same_slot(self):
        """OpenFlow ADD semantics: same (match, priority) replaces the
        entry in place, making duplicated deliveries idempotent."""
        table = SwitchTable("s1", 1)
        apply_flow_mod(table, add_mod(action=TableAction.DROP))
        # Re-adding into the only slot must not raise TableFullError.
        apply_flow_mod(table, add_mod(action=TableAction.FORWARD))
        assert table.occupancy() == 1
        assert table.entries[0].action is TableAction.FORWARD

    def test_add_different_slot_still_installs(self):
        table = SwitchTable("s1", 4)
        apply_flow_mod(table, add_mod(priority=1))
        apply_flow_mod(table, add_mod(priority=2))
        assert table.occupancy() == 2
