"""Tests for the TCAM table model."""

from __future__ import annotations

import pytest

from repro.dataplane.packet import Packet
from repro.dataplane.switch import SwitchTable, TableAction, TableFullError, TcamEntry
from repro.policy.ternary import TernaryMatch


def entry(pattern: str, action: TableAction, priority: int,
          tags=None, origin=()) -> TcamEntry:
    return TcamEntry(
        TernaryMatch.from_string(pattern), action, priority,
        None if tags is None else frozenset(tags), tuple(origin),
    )


class TestPacket:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            Packet(0b10000, 4)

    def test_with_tag(self):
        packet = Packet(0b1010, 4)
        assert packet.tag is None
        tagged = packet.with_tag(3)
        assert tagged.tag == 3
        assert tagged.header == packet.header


class TestCapacity:
    def test_install_respects_capacity(self):
        table = SwitchTable("s1", 1)
        table.install(entry("1***", TableAction.DROP, 1))
        with pytest.raises(TableFullError):
            table.install(entry("0***", TableAction.DROP, 2))

    def test_occupancy_and_free(self):
        table = SwitchTable("s1", 3)
        table.install(entry("1***", TableAction.DROP, 1))
        assert table.occupancy() == 1
        assert table.free_slots() == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SwitchTable("s1", -1)


class TestClassification:
    def test_first_match_by_priority(self):
        table = SwitchTable("s1", 4)
        table.install(entry("1*0*", TableAction.DROP, 1))
        table.install(entry("1***", TableAction.FORWARD, 2))
        # The permit has higher priority: 1x0x forwards.
        assert table.classify(Packet(0b1000, 4)) is TableAction.FORWARD

    def test_default_forward(self):
        table = SwitchTable("s1", 4)
        table.install(entry("1***", TableAction.DROP, 1))
        assert table.classify(Packet(0b0000, 4)) is TableAction.FORWARD

    def test_install_order_irrelevant(self):
        specs = [("1***", TableAction.FORWARD, 3), ("1*0*", TableAction.DROP, 1),
                 ("***1", TableAction.DROP, 2)]
        results = []
        for order in (specs, specs[::-1]):
            table = SwitchTable("s1", 4)
            for pattern, action, priority in order:
                table.install(entry(pattern, action, priority))
            results.append([table.classify(Packet(h, 4)) for h in range(16)])
        assert results[0] == results[1]

    def test_tag_matching(self):
        table = SwitchTable("s1", 4)
        table.install(entry("****", TableAction.DROP, 1, tags={1, 2}))
        assert table.classify(Packet(0, 4, tag=1)) is TableAction.DROP
        assert table.classify(Packet(0, 4, tag=3)) is TableAction.FORWARD
        # Untagged packets never match a tagged entry.
        assert table.classify(Packet(0, 4)) is TableAction.FORWARD

    def test_tagless_entry_matches_any_tag(self):
        table = SwitchTable("s1", 4)
        table.install(entry("****", TableAction.DROP, 1))
        assert table.classify(Packet(0, 4, tag=9)) is TableAction.DROP

    def test_matching_entry(self):
        table = SwitchTable("s1", 4)
        e = entry("1***", TableAction.DROP, 1)
        table.install(e)
        assert table.matching_entry(Packet(0b1000, 4)) == e
        assert table.matching_entry(Packet(0b0000, 4)) is None


class TestOriginBookkeeping:
    def test_remove_by_origin(self):
        table = SwitchTable("s1", 4)
        table.install(entry("1***", TableAction.DROP, 1, origin=["a.r0"]))
        table.install(entry("0***", TableAction.DROP, 2, origin=["b.r0"]))
        table.install(entry("**1*", TableAction.DROP, 3, origin=["a.r1", "b.r1"]))
        freed = table.remove_by_origin("a")
        assert freed == 1  # only the pure-a entry goes; the shared stays
        assert table.occupancy() == 2
