"""The churn harness: traffic in, deltas out, hit-rate and oracle back.

One ``run_churn`` call is a full closed loop: a seeded
:class:`~repro.traffic.generator.TrafficGenerator` replays packets
against the dataplane materialized from the *cached* deployment; per-
rule hit counters feed the
:class:`~repro.traffic.cache.RuleCacheController`; the controller's
promotion/eviction rounds issue batched deltas through a churn driver
(direct :class:`~repro.core.incremental.IncrementalDeployer`, or the
service's journaled delta path); after every round the structural
oracle re-checks the closure invariants and the per-packet oracle
compares each *hit* verdict against the full policy.

The report is what the benchmark and the CI gate consume: overall and
flash-window hit-rates, verdict/closure violation counts (the hard
zero gates), controller round stats, and deployment state digests.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from ..core.incremental import IncrementalDeployer
from ..core.placement import Placement
from ..core.tags import synthesize
from ..dataplane.packet import Packet
from ..dataplane.switch import TableAction
from ..experiments.generators import ExperimentConfig, build_instance
from ..milp.model import SolveStatus
from ..policy.rule import Action
from .cache import (CacheConfig, LocalChurnDriver, RuleCacheController,
                    ServiceChurnDriver)
from .generator import TrafficConfig, TrafficGenerator

__all__ = ["ChurnConfig", "run_churn", "run_churn_matrix"]


@dataclass
class ChurnConfig:
    """One churn run: instance shape x traffic shape x cache policy."""

    seed: int = 0
    #: Traffic ticks to simulate.
    ticks: int = 96
    # Instance shape (fat-tree, one policy per edge switch).
    k: int = 4
    num_paths: int = 8
    rules_per_policy: int = 24
    #: Physical per-switch TCAM capacity.
    capacity: int = 48
    drop_fraction: float = 0.5
    nested_fraction: float = 0.5
    # Cache policy.
    budget: int = 12
    strategy: str = "popularity"
    half_life: float = 12.0
    control_interval: int = 4
    hysteresis: float = 1.25
    warmup_ticks: int = 12
    # Traffic shape.
    flows_per_ingress: int = 48
    packets_per_tick: int = 96
    zipf_skew: float = 1.2
    drift_period: int = 64
    flash_start: Optional[int] = 48
    flash_length: int = 24
    flash_flows: int = 4
    flash_boost: float = 40.0
    mean_flow_lifetime: int = 48
    rule_bias: float = 0.9
    #: Drive deltas through a service instead of a local deployer.
    service: bool = False
    backend: str = "highs"

    def traffic_config(self) -> TrafficConfig:
        return TrafficConfig(
            seed=self.seed,
            flows_per_ingress=self.flows_per_ingress,
            packets_per_tick=self.packets_per_tick,
            zipf_skew=self.zipf_skew,
            drift_period=self.drift_period,
            flash_start=self.flash_start,
            flash_length=self.flash_length,
            flash_flows=self.flash_flows,
            flash_boost=self.flash_boost,
            mean_flow_lifetime=self.mean_flow_lifetime,
            rule_bias=self.rule_bias,
        )

    def cache_config(self) -> CacheConfig:
        return CacheConfig(
            budget=self.budget,
            strategy=self.strategy,
            half_life=self.half_life,
            control_interval=self.control_interval,
            hysteresis=self.hysteresis,
            warmup_ticks=self.warmup_ticks,
        )

    def experiment_config(self) -> ExperimentConfig:
        return ExperimentConfig(
            k=self.k, num_paths=self.num_paths,
            rules_per_policy=self.rules_per_policy,
            capacity=self.capacity, seed=self.seed,
            drop_fraction=self.drop_fraction,
            nested_fraction=self.nested_fraction,
        )


@dataclass
class _TickSample:
    tick: int
    packets: int = 0
    hits: int = 0
    flash: bool = False


def _empty_base(instance) -> Placement:
    """A feasible zero-policy placement over the instance's network.

    The churn loop starts cold: same topology, routing, and capacities,
    but nothing deployed -- every cached rule arrives as a delta.
    """
    from ..core.instance import PlacementInstance
    from ..policy.policy import PolicySet

    boot = PlacementInstance(instance.topology, instance.routing,
                             PolicySet(), dict(instance.capacities))
    return Placement(instance=boot, status=SolveStatus.FEASIBLE, placed={})


def run_churn(config: Optional[ChurnConfig] = None,
              service=None) -> Dict[str, Any]:
    """Run one churn loop; returns the JSON-able report.

    ``service`` (a :class:`~repro.service.daemon.PlacementService` or
    anything with a compatible ``handle``) switches delta issuing to
    the journaled service path with a digest-checked local shadow;
    ``config.service=True`` spins up a private in-process service.
    """
    config = config or ChurnConfig()
    instance = build_instance(config.experiment_config())
    policies = list(instance.policies)
    paths = {policy.ingress: instance.routing.paths(policy.ingress)
             for policy in policies}

    own_service = None
    if service is None and config.service:
        from ..service.daemon import PlacementService, ServiceConfig
        own_service = PlacementService(ServiceConfig(
            executor="inline", max_workers=2, dispatchers=1))
        service = own_service
    try:
        if service is not None:
            driver = ServiceChurnDriver.bootstrap(
                lambda request, timeout: service.handle(request,
                                                        timeout=timeout),
                instance, deployment=f"churn-{config.seed}",
                backend=config.backend)
        else:
            driver = LocalChurnDriver(IncrementalDeployer(
                _empty_base(instance)))

        controller = RuleCacheController(policies, paths,
                                         config.cache_config())
        generator = TrafficGenerator(policies, instance.routing,
                                     config.traffic_config())
        policy_of = {policy.ingress: policy for policy in policies}

        samples: List[_TickSample] = []
        verdict_violations: List[str] = []
        closure_violations: List[str] = []
        # Cold start: nothing cached, everything falls through.
        dataplane = synthesize(driver.as_placement())

        for _ in range(config.ticks):
            batch = generator.tick()
            sample = _TickSample(tick=generator.current_tick - 1,
                                 flash=generator.flash_active(
                                     generator.current_tick - 1))
            for pkt in batch:
                policy = policy_of[pkt.ingress]
                tag = dataplane.ingress_tags.get(pkt.ingress)
                packet = Packet(pkt.header, pkt.width, tag)
                matched = False
                dropped = False
                for switch in pkt.path.switches:
                    table = dataplane.tables.get(switch)
                    if table is None:
                        continue
                    entry = table.matching_entry(packet)
                    if entry is None:
                        continue
                    matched = True
                    if entry.action is TableAction.DROP:
                        dropped = True
                        break
                expected = policy.evaluate(pkt.header)
                sample.packets += 1
                if matched:
                    sample.hits += 1
                    actual = Action.DROP if dropped else Action.PERMIT
                    if actual is not expected:
                        verdict_violations.append(
                            f"tick {sample.tick} {pkt.ingress} "
                            f"0x{pkt.header:x}: cache says {actual.value}, "
                            f"policy says {expected.value}")
                # Misses fall through to the controller slow path, which
                # evaluates the full policy: correct by construction.
                first = policy.matching_rule(pkt.header)
                if first is not None:
                    controller.observe(pkt.ingress, first.priority)
            samples.append(sample)
            round_stats = controller.tick(driver)
            if round_stats is not None:
                closure_violations.extend(controller.verify(driver))
                dataplane = synthesize(driver.as_placement())

        return _report(config, controller, driver, samples,
                       verdict_violations, closure_violations)
    finally:
        if own_service is not None:
            own_service.close()


def _hit_rate(samples: Sequence[_TickSample]) -> float:
    packets = sum(s.packets for s in samples)
    hits = sum(s.hits for s in samples)
    return hits / packets if packets else 0.0


def _report(config: ChurnConfig, controller: RuleCacheController,
            driver, samples: List[_TickSample],
            verdict_violations: List[str],
            closure_violations: List[str]) -> Dict[str, Any]:
    flash = [s for s in samples if s.flash]
    post_warmup = [s for s in samples if s.tick >= config.warmup_ticks]
    report: Dict[str, Any] = {
        "config": asdict(config),
        "packets": sum(s.packets for s in samples),
        "hit_rate": _hit_rate(samples),
        "hit_rate_steady": _hit_rate(post_warmup),
        "hit_rate_flash": _hit_rate(flash) if flash else None,
        "verdict_violations": len(verdict_violations),
        "closure_violations": len(closure_violations),
        "violation_examples": (verdict_violations + closure_violations)[:5],
        "rounds": len(controller.rounds),
        "promotions": sum(r.promotions for r in controller.rounds),
        "evictions": sum(r.evictions for r in controller.rounds),
        "deltas": sum(r.deltas for r in controller.rounds),
        "trims": sum(r.trims for r in controller.rounds),
        "cached_rules": controller.cached_rule_count(),
        "state_digest": driver.state_digest(),
    }
    mismatches = getattr(driver, "digest_mismatches", None)
    if mismatches is not None:
        report["digest_mismatches"] = len(mismatches)
    return report


def run_churn_matrix(config: Optional[ChurnConfig] = None,
                     seeds: Sequence[int] = range(8)) -> Dict[str, Any]:
    """The seed-matrix oracle run: zero violations across every seed.

    This is the CI gate's entry point (``REPRO_CHURN_SEEDS`` controls
    the matrix width): each seed reshapes the instance, the policies,
    and the traffic, and every run must finish with zero verdict and
    zero closure violations.
    """
    config = config or ChurnConfig()
    runs: List[Dict[str, Any]] = []
    for seed in seeds:
        report = run_churn(replace(config, seed=seed))
        runs.append({
            "seed": seed,
            "hit_rate": report["hit_rate"],
            "verdict_violations": report["verdict_violations"],
            "closure_violations": report["closure_violations"],
            "digest_mismatches": report.get("digest_mismatches", 0),
            "deltas": report["deltas"],
        })
    violations = sum(r["verdict_violations"] + r["closure_violations"]
                     for r in runs)
    return {
        "seeds": len(runs),
        "total_violations": violations,
        "digest_mismatches": sum(r["digest_mismatches"] for r in runs),
        "mean_hit_rate": (sum(r["hit_rate"] for r in runs) / len(runs)
                          if runs else 0.0),
        "runs": runs,
    }
