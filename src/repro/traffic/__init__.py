"""Traffic-driven rule caching: TCAM as a cache under a live stream.

The continuous-churn workload (FDRC framing, PAPERS.md): a seeded
Zipf/drift/flash-crowd traffic generator (:mod:`.generator`) feeds
decayed per-rule popularity counters (:mod:`.counters`); a cache
controller (:mod:`.cache`) promotes and evicts whole dependency-closure
units through batched incremental deltas; the harness (:mod:`.harness`)
closes the loop against the dataplane and gates on the caching
correctness oracle.
"""

from .cache import (CacheConfig, LocalChurnDriver, RuleCacheController,
                    ServiceChurnDriver, cacheable_units, closure_violations)
from .counters import EwmaCounters, PopularityTracker, SpaceSavingTopK
from .generator import FlowPacket, TrafficConfig, TrafficGenerator
from .harness import ChurnConfig, run_churn, run_churn_matrix

__all__ = [
    "CacheConfig",
    "ChurnConfig",
    "EwmaCounters",
    "FlowPacket",
    "LocalChurnDriver",
    "PopularityTracker",
    "RuleCacheController",
    "ServiceChurnDriver",
    "SpaceSavingTopK",
    "TrafficConfig",
    "TrafficGenerator",
    "cacheable_units",
    "closure_violations",
    "run_churn",
    "run_churn_matrix",
]
