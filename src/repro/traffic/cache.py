"""TCAM-as-a-cache: the promotion/eviction controller and its oracle.

FDRC's framing: switch TCAM is too scarce for the whole rule set, so
treat it as a *cache* -- install the rules hot traffic actually hits,
answer the rest from the controller slow path (default-route
fallthrough).  The semantics only survive partial installation because
of two invariants this module owns:

**The caching dependency closure.**  A cached rule is safe to answer
from only when every *transitively* reachable higher-priority
overlapping rule with a different action is cached too
(:func:`repro.core.depgraph.caching_closures`).  Eq. 1 stops at a
DROP's direct PERMIT shields; a cache must also carry the even-higher
DROPs that carve into each shield, or a packet in the ancestor's region
gets the shield's verdict.  Cacheable *units* are therefore a DROP plus
its full ancestor closure, promoted and evicted atomically.

**Fallthrough on miss.**  A packet matching no cached entry anywhere on
its path is answered by the controller from the full policy
(``policy.evaluate``) -- correct by construction, just slow.  Together
with ancestor-closed cached sets and the deployer's per-switch Eq. 1
co-location, every *hit* verdict equals the full-policy verdict: a
different-action ancestor is always cached (closure) and dropping
anywhere on the path wins, so a shield PERMIT firing on one switch
cannot outrun a cached ancestor DROP further along.  Pure PERMITs need
no caching at all under a PERMIT default -- only drop regions and their
shields occupy TCAM, exactly like the underlying placement model.

:func:`closure_violations` is the structural oracle the churn harness
gates on; :class:`RuleCacheController` runs the scoring/greedy
selection loop; the two drivers issue the resulting batched deltas
through :class:`~repro.core.incremental.IncrementalDeployer` directly
(:class:`LocalChurnDriver`) or through the service's journaled delta
path with a digest-checked local shadow (:class:`ServiceChurnDriver`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.depgraph import build_dependency_graph, caching_closures
from ..core.incremental import IncrementalDeployer
from ..net.routing import Path
from ..policy.policy import Policy
from ..policy.rule import Rule
from .counters import PopularityTracker

__all__ = [
    "CacheConfig",
    "LocalChurnDriver",
    "RuleCacheController",
    "ServiceChurnDriver",
    "cacheable_units",
    "closure_violations",
]

STRATEGIES = ("popularity", "lru", "lfu", "static")


@dataclass
class CacheConfig:
    """Knobs of the eviction/promotion loop."""

    #: Max cached rules per ingress (the per-edge TCAM budget the
    #: controller aims for; real switch capacity is still enforced by
    #: the deployer, with trim-and-retry on infeasible previews).
    budget: int = 16
    #: Scoring strategy: ``popularity`` (EWMA), ``lru`` (last hit),
    #: ``lfu`` (cumulative count), ``static`` (top-k frozen after
    #: warmup).  All four share the same closure-aware unit machinery,
    #: so the comparison isolates the *scoring* policy.
    strategy: str = "popularity"
    #: EWMA half-life in ticks (``popularity`` only).
    half_life: float = 16.0
    #: Ticks between controller rounds.
    control_interval: int = 4
    #: Score bonus multiplier for already-cached units (anti-thrash).
    hysteresis: float = 1.25
    #: Tick at which ``static`` freezes its ranking.
    warmup_ticks: int = 8
    #: Space-saving sketch capacity per ingress.
    monitored: int = 1024

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; known: {STRATEGIES}")
        if self.budget < 0:
            raise ValueError("budget must be >= 0")
        if self.control_interval < 1:
            raise ValueError("control_interval must be >= 1")


def cacheable_units(policy: Policy) -> Dict[int, FrozenSet[int]]:
    """Atomic promotion units: each DROP plus its ancestor closure.

    Only drop-anchored units exist: under a PERMIT default a permit
    that shields no cached drop is dataplane-inert, so the cache never
    spends TCAM on one.  Unit membership is ancestor-closed by
    construction (the closure relation is transitive), hence any union
    of units is ancestor-closed -- the invariant
    :func:`closure_violations` checks.
    """
    closures = caching_closures(policy)
    return {
        rule.priority: frozenset((rule.priority,) + closures[rule.priority])
        for rule in policy.rules if rule.is_drop
    }


def closure_violations(policy: Policy,
                       cached: FrozenSet[int],
                       placed: Dict[Tuple[str, int], FrozenSet[str]],
                       paths: Sequence[Path]) -> List[str]:
    """Structural oracle over one ingress's cached deployment.

    Returns human-readable violation strings (empty = safe):

    1. *Ancestor closure*: the cached set contains every transitive
       different-action ancestor of each of its members.
    2. *Per-path drop coverage*: every cached DROP relevant to a path
       (overlapping its flow slice, or all when unsliced) is installed
       on at least one switch of that path.
    3. *Per-switch shield co-location* (Eq. 1): wherever a DROP is
       installed, its cached PERMIT shields sit on the same switch.
    """
    violations: List[str] = []
    closures = caching_closures(policy)
    for priority in sorted(cached):
        missing = [a for a in closures.get(priority, ()) if a not in cached]
        if missing:
            violations.append(
                f"{policy.ingress}: rule {priority} cached without "
                f"ancestors {missing}")

    cached_rules = {p: policy.rule_by_priority(p) for p in cached}
    drops = {p: r for p, r in cached_rules.items() if r.is_drop}
    switches_of = {
        priority: placed.get((policy.ingress, priority), frozenset())
        for priority in cached
    }
    for path in paths:
        on_path = set(path.switches)
        for priority, rule in sorted(drops.items()):
            if path.flow is not None and not rule.match.intersects(path.flow):
                continue
            if not (switches_of[priority] & on_path):
                violations.append(
                    f"{policy.ingress}: drop {priority} not installed on "
                    f"path {'->'.join(path.switches)}")

    graph = build_dependency_graph(policy)
    for priority, rule in sorted(drops.items()):
        shields = [d for d in graph.dependencies_of(priority) if d in cached]
        for switch in sorted(switches_of[priority]):
            for shield in shields:
                if switch not in switches_of[shield]:
                    violations.append(
                        f"{policy.ingress}: drop {priority} on {switch} "
                        f"without shield {shield}")
    return violations


# ---------------------------------------------------------------------------
# Churn drivers: how controller decisions become deployed deltas
# ---------------------------------------------------------------------------


class LocalChurnDriver:
    """Apply cache deltas straight onto an :class:`IncrementalDeployer`.

    The preview/commit split is preserved: an infeasible preview leaves
    the deployed state untouched and reports ``False`` so the
    controller can trim its selection and retry.
    """

    def __init__(self, deployer: IncrementalDeployer) -> None:
        self.deployer = deployer

    def apply(self, ingress: str, cached_policy: Optional[Policy],
              paths: Sequence[Path]) -> bool:
        deployer = self.deployer
        if cached_policy is None or not cached_policy.rules:
            if deployer.has_policy(ingress):
                deployer.remove_policy(ingress)
            return True
        if not deployer.has_policy(ingress):
            result = deployer.preview_install(cached_policy, paths)
            if not result.is_feasible:
                return False
            deployer.commit_install(cached_policy, paths, result.placed)
            return True
        result = deployer.preview_modify(cached_policy)
        if not result.is_feasible:
            return False
        deployer.apply_modify(cached_policy, result.placed)
        return True

    def placed_of(self, ingress: str) -> Dict[Tuple[str, int], FrozenSet[str]]:
        if not self.deployer.has_policy(ingress):
            return {}
        return self.deployer.placed_of(ingress)

    def as_placement(self):
        return self.deployer.as_placement()

    def state_digest(self) -> str:
        return self.deployer.state_digest()


class ServiceChurnDriver:
    """Route cache deltas through the service's journaled delta path.

    Every promotion/eviction becomes a :class:`DeltaRequest` against a
    named deployment, so warm sessions, the write-ahead journal, and
    the metrics all see the churn.  A local *shadow* deployer applies
    the same operations in lock-step; after each committed delta the
    service's returned ``state_digest`` must equal the shadow's --
    the same oracle the crash-recovery harness uses -- which both
    verifies the service and gives the harness a dataplane to replay
    packets against without round-tripping table state.
    """

    def __init__(self, handle, deployment: str,
                 shadow: IncrementalDeployer,
                 timeout: float = 60.0) -> None:
        #: ``handle(request, timeout) -> Response`` -- an in-process
        #: ``PlacementService.handle`` or a ``ServiceClient.call``.
        self._handle = handle
        self.deployment = deployment
        self.shadow = shadow
        self.timeout = timeout
        self.digest_mismatches: List[str] = []
        self._local = LocalChurnDriver(shadow)

    @classmethod
    def bootstrap(cls, handle, instance, deployment: str,
                  backend: str = "highs",
                  timeout: float = 60.0) -> "ServiceChurnDriver":
        """Create the named deployment from an empty-policy instance.

        The churn loop starts from a cold cache: solve (trivially) an
        instance with no policies, register it as a live deployment,
        and grow the cached state purely through deltas.
        """
        from ..core.instance import PlacementInstance
        from ..core.placement import Placement
        from ..milp.model import SolveStatus
        from ..policy.policy import PolicySet
        from ..service.protocol import SolveRequest

        boot = PlacementInstance(instance.topology, instance.routing,
                                 PolicySet(), dict(instance.capacities))
        response = handle(SolveRequest(instance=boot, backend=backend,
                                       deploy_as=deployment), timeout)
        if not response.ok:
            raise RuntimeError(
                f"churn bootstrap failed: {response.status} "
                f"{response.error or ''}")
        base = Placement(instance=boot, status=SolveStatus.FEASIBLE,
                         placed={})
        return cls(handle, deployment, IncrementalDeployer(base),
                   timeout=timeout)

    def apply(self, ingress: str, cached_policy: Optional[Policy],
              paths: Sequence[Path]) -> bool:
        from .. import io as repro_io
        from ..net.routing import Routing
        from ..service.protocol import DeltaRequest, ResponseStatus

        shadow = self.shadow
        if cached_policy is None or not cached_policy.rules:
            if not shadow.has_policy(ingress):
                return True
            request = DeltaRequest(deployment=self.deployment, op="remove",
                                   ingress=ingress)
        elif not shadow.has_policy(ingress):
            request = DeltaRequest(
                deployment=self.deployment, op="install",
                policy=repro_io.policy_to_dict(cached_policy),
                paths=repro_io.routing_to_dict(Routing(paths)),
            )
        else:
            request = DeltaRequest(
                deployment=self.deployment, op="modify",
                policy=repro_io.policy_to_dict(cached_policy),
            )
        response = self._handle(request, self.timeout)
        if response.status == ResponseStatus.INFEASIBLE:
            return False
        if not response.ok:
            raise RuntimeError(
                f"delta {request.op} on {ingress!r} failed: "
                f"{response.status} {response.error or ''}")
        ok = self._local.apply(ingress, cached_policy, paths)
        if not ok:
            # The service committed but the shadow could not: the two
            # have diverged and every later digest check is noise.
            raise RuntimeError(
                f"shadow infeasible after service commit on {ingress!r}")
        remote = (response.result or {}).get("state_digest")
        local = shadow.state_digest()
        if remote is not None and remote != local:
            self.digest_mismatches.append(
                f"{request.op}:{ingress}: service {remote[:12]} != "
                f"shadow {local[:12]}")
        return True

    def placed_of(self, ingress: str) -> Dict[Tuple[str, int], FrozenSet[str]]:
        return self._local.placed_of(ingress)

    def as_placement(self):
        return self.shadow.as_placement()

    def state_digest(self) -> str:
        return self.shadow.state_digest()


# ---------------------------------------------------------------------------
# The controller
# ---------------------------------------------------------------------------


@dataclass
class RoundStats:
    """What one control round did."""

    tick: int
    promotions: int = 0
    evictions: int = 0
    deltas: int = 0
    trims: int = 0
    cached_rules: int = 0


class RuleCacheController:
    """Popularity-aware eviction/promotion over the cached rule sets.

    Scores the full policy's rules from observed traffic, greedily
    packs whole closure units under the per-ingress budget (marginal
    gain per marginal slot, hysteresis for incumbents), and issues the
    resulting batched deltas through a churn driver.  An infeasible
    preview (switch capacity, not budget) trims the weakest selected
    unit and retries, so the controller degrades gracefully when the
    physical TCAM is tighter than its budget.
    """

    def __init__(self, policies: Sequence[Policy],
                 routing_paths: Dict[str, Sequence[Path]],
                 config: Optional[CacheConfig] = None) -> None:
        self.config = config or CacheConfig()
        self._policies: Dict[str, Policy] = {
            policy.ingress: policy for policy in policies
        }
        self._paths = {
            ingress: tuple(routing_paths[ingress])
            for ingress in self._policies
        }
        self._units: Dict[str, Dict[int, FrozenSet[int]]] = {
            ingress: cacheable_units(policy)
            for ingress, policy in self._policies.items()
        }
        self._trackers: Dict[str, PopularityTracker] = {
            ingress: PopularityTracker(self.config.half_life,
                                       self.config.monitored)
            for ingress in self._policies
        }
        self._cached: Dict[str, FrozenSet[int]] = {
            ingress: frozenset() for ingress in self._policies
        }
        #: ``static`` ranking, frozen at ``warmup_ticks``.
        self._frozen_scores: Optional[Dict[str, Dict[int, float]]] = None
        self._tick = 0
        self.rounds: List[RoundStats] = []

    # -- observation ---------------------------------------------------

    def observe(self, ingress: str, priority: int) -> None:
        """Account one packet to its first-match rule.

        Fed from both sides of the cache: switch per-entry counters for
        hits, the controller's own punt stream for misses -- idealized
        here as the full policy's first-match priority.
        """
        self._trackers[ingress].record(priority)

    def cached_set(self, ingress: str) -> FrozenSet[int]:
        return self._cached[ingress]

    def cached_rule_count(self) -> int:
        return sum(len(s) for s in self._cached.values())

    @property
    def current_tick(self) -> int:
        return self._tick

    # -- scoring -------------------------------------------------------

    def _score(self, ingress: str, priority: int) -> float:
        tracker = self._trackers[ingress]
        strategy = self.config.strategy
        if strategy == "popularity":
            return tracker.score(priority)
        if strategy == "lfu":
            return float(tracker.count(priority))
        if strategy == "lru":
            last = tracker.last_seen(priority)
            # +1 so a rule hit at tick 0 still outranks one never hit.
            return 0.0 if last is None else float(last + 1)
        # static: cumulative counts frozen at the warmup boundary.
        if self._frozen_scores is not None:
            return self._frozen_scores[ingress].get(priority, 0.0)
        return float(tracker.count(priority))

    def _maybe_freeze(self) -> None:
        if (self.config.strategy == "static"
                and self._frozen_scores is None
                and self._tick >= self.config.warmup_ticks):
            self._frozen_scores = {
                ingress: {
                    rule.priority: float(
                        self._trackers[ingress].count(rule.priority))
                    for rule in policy.rules
                }
                for ingress, policy in self._policies.items()
            }

    # -- selection -----------------------------------------------------

    def _select(self, ingress: str,
                budget: int,
                excluded: FrozenSet[int] = frozenset()
                ) -> Tuple[FrozenSet[int], List[int]]:
        """Greedy unit packing under ``budget`` cached rules.

        Returns the selected rule set and the anchor drops in pick
        order (weakest last -- the trim order on infeasible previews).
        Marginal-gain greedy: shared closure members make later units
        cheaper, so ratios are recomputed against the running set.
        """
        units = {
            anchor: members
            for anchor, members in self._units[ingress].items()
            if anchor not in excluded
        }
        incumbent = self._cached[ingress]
        selected: set = set()
        order: List[int] = []
        remaining = dict(units)
        while remaining:
            best_anchor = None
            best_rank: Tuple[float, int] = (0.0, 0)
            for anchor, members in remaining.items():
                new = members - selected
                cost = len(new)
                if cost == 0:
                    # Fully absorbed by earlier picks: claim for free.
                    best_anchor, best_rank = anchor, (float("inf"), -anchor)
                    break
                if len(selected) + cost > budget:
                    continue
                gain = sum(self._score(ingress, p) for p in members)
                if anchor in incumbent and members <= incumbent:
                    gain *= self.config.hysteresis
                rank = (gain / cost, -anchor)
                if best_anchor is None or rank > best_rank:
                    best_anchor, best_rank = anchor, rank
            if best_anchor is None:
                break
            members = remaining.pop(best_anchor)
            if best_rank[0] <= 0.0:
                # Zero-score unit: caching cold rules buys nothing.
                continue
            selected |= members
            order.append(best_anchor)
        return frozenset(selected), order

    def _cached_policy(self, ingress: str,
                       selected: FrozenSet[int]) -> Optional[Policy]:
        if not selected:
            return None
        policy = self._policies[ingress]
        rules: List[Rule] = [rule for rule in policy.sorted_rules()
                             if rule.priority in selected]
        return Policy(ingress=ingress, rules=rules,
                      default_action=policy.default_action)

    # -- the control round ---------------------------------------------

    def tick(self, driver=None) -> Optional[RoundStats]:
        """Advance controller time; run a control round when due.

        Called once per traffic tick.  Returns the round's stats when a
        round ran, else ``None``.
        """
        self._tick += 1
        for tracker in self._trackers.values():
            tracker.tick()
        self._maybe_freeze()
        if driver is None or self._tick % self.config.control_interval:
            return None
        return self.control_round(driver)

    def control_round(self, driver) -> RoundStats:
        stats = RoundStats(tick=self._tick)
        for ingress in sorted(self._policies):
            excluded: set = set()
            while True:
                selected, order = self._select(
                    ingress, self.config.budget, frozenset(excluded))
                if selected == self._cached[ingress]:
                    break
                cached_policy = self._cached_policy(ingress, selected)
                if driver.apply(ingress, cached_policy,
                                self._paths[ingress]):
                    old = self._cached[ingress]
                    stats.promotions += len(selected - old)
                    stats.evictions += len(old - selected)
                    stats.deltas += 1
                    self._cached[ingress] = selected
                    break
                # Physical capacity tighter than the budget: drop the
                # weakest unit (last pick) and retry the preview.
                if not order:
                    break
                excluded.add(order[-1])
                stats.trims += 1
        stats.cached_rules = self.cached_rule_count()
        self.rounds.append(stats)
        return stats

    # -- oracle --------------------------------------------------------

    def verify(self, driver) -> List[str]:
        """Run the structural oracle over every ingress's cached state."""
        violations: List[str] = []
        for ingress, policy in sorted(self._policies.items()):
            violations.extend(closure_violations(
                policy, self._cached[ingress],
                driver.placed_of(ingress), self._paths[ingress]))
        return violations
