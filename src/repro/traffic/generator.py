"""Seeded synthetic traffic: Zipf flow popularity under drift.

The churn workload needs a packet stream whose *rule* popularity skews
and shifts the way FDRC assumes real traffic does: a heavy head (a few
flows carry most packets), a long tail, slow diurnal movement of which
flows are hot, occasional flash crowds, and flow churn (flows arrive,
live a while, expire).  Everything here is a pure function of the seed:
same seed, same packet sequence, bit for bit -- the generator is a
REP-SEED subsystem and CI replays multi-seed matrices by digest.

Model
-----
Per ingress, a fixed number of *flow slots*.  Each slot holds a flow: a
concrete header (sampled inside a random rule's match region with
probability ``rule_bias``, uniformly otherwise, so popularity lands on
*rules*, not just raw headers) and one routed path of the ingress.
Slot ``i`` carries Zipf weight ``(i+1)^-skew``; diurnal drift rotates
the slot->weight mapping over ``drift_period`` ticks so the hot slots
move; a flash crowd temporarily boosts a band of tail slots to
head-class weight; flow expiry resamples a slot's flow in place
(geometric lifetimes), so even a stable slot's *header* churns.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..net.routing import Path, Routing
from ..policy.policy import Policy

__all__ = ["TrafficConfig", "FlowPacket", "TrafficGenerator"]


@dataclass
class TrafficConfig:
    """Shape of the synthetic stream (all deterministic in ``seed``)."""

    seed: int = 0
    #: Flow slots per ingress (the active-flow working set).
    flows_per_ingress: int = 48
    #: Packets emitted per :meth:`TrafficGenerator.tick`.
    packets_per_tick: int = 60
    #: Zipf skew ``s``: slot ``i`` has weight ``(i+1)^-s``.
    zipf_skew: float = 1.1
    #: Ticks for one full rotation of the popularity ranks (0 = static).
    drift_period: int = 0
    #: First tick of the flash crowd (``None`` = no flash crowd).
    flash_start: Optional[int] = None
    #: Flash crowd duration in ticks.
    flash_length: int = 0
    #: Number of tail slots the flash crowd ignites.
    flash_flows: int = 4
    #: Weight multiplier (relative to the rank-0 weight) per flash slot.
    flash_boost: float = 40.0
    #: Mean flow lifetime in ticks (0 = flows never expire).
    mean_flow_lifetime: int = 0
    #: Probability a flow's header is sampled inside a rule's region.
    rule_bias: float = 0.9


@dataclass(frozen=True)
class FlowPacket:
    """One generated packet: where it enters, how it routes, its header."""

    ingress: str
    path: Path
    header: int
    width: int
    #: Stable id of the generating flow (changes when the slot's flow
    #: expires and is resampled).
    flow_id: int


@dataclass
class _Flow:
    flow_id: int
    header: int
    path: Path


class TrafficGenerator:
    """Replayable packet source over a policy set and its routing."""

    def __init__(self, policies: Sequence[Policy], routing: Routing,
                 config: Optional[TrafficConfig] = None) -> None:
        self.config = config or TrafficConfig()
        if self.config.flows_per_ingress < 1:
            raise ValueError("flows_per_ingress must be >= 1")
        if self.config.packets_per_tick < 1:
            raise ValueError("packets_per_tick must be >= 1")
        self._rng = random.Random(self.config.seed)
        self._policies: Dict[str, Policy] = {}
        self._paths: Dict[str, Tuple[Path, ...]] = {}
        for policy in policies:
            paths = routing.paths(policy.ingress)
            if not paths:
                continue  # unrouted policies see no traffic
            self._policies[policy.ingress] = policy
            self._paths[policy.ingress] = paths
        if not self._policies:
            raise ValueError("no routed policies to generate traffic for")
        self._ingresses: Tuple[str, ...] = tuple(sorted(self._policies))
        self._next_flow_id = 0
        self._tick = 0
        #: Per-ingress flow slots, index = popularity rank slot.
        self._slots: Dict[str, List[_Flow]] = {
            ingress: [self._new_flow(ingress)
                      for _ in range(self.config.flows_per_ingress)]
            for ingress in self._ingresses
        }
        n = self.config.flows_per_ingress
        self._zipf = [(rank + 1) ** -self.config.zipf_skew
                      for rank in range(n)]
        #: Flash slots: a deterministic band at the tail of the slot
        #: space -- cold under the base Zipf ranking, so the flash is a
        #: genuine popularity reversal, not a boost of existing heat.
        flash = min(self.config.flash_flows, n)
        self._flash_slots = tuple(range(n - flash, n))

    # ------------------------------------------------------------------

    @property
    def ingresses(self) -> Tuple[str, ...]:
        return self._ingresses

    @property
    def current_tick(self) -> int:
        return self._tick

    def _new_flow(self, ingress: str) -> _Flow:
        policy = self._policies[ingress]
        width = policy.width or 1
        rng = self._rng
        rules = policy.rules
        if rules and rng.random() < self.config.rule_bias:
            rule = rules[rng.randrange(len(rules))]
            header = rule.match.sample(rng)
        else:
            header = rng.getrandbits(width)
        paths = self._paths[ingress]
        compatible = [p for p in paths
                      if p.flow is None or p.flow.matches(header)]
        path = (compatible or list(paths))[rng.randrange(
            len(compatible) if compatible else len(paths))]
        flow = _Flow(self._next_flow_id, header, path)
        self._next_flow_id += 1
        return flow

    def _weights(self, ingress: str, tick: int) -> List[float]:
        config = self.config
        n = config.flows_per_ingress
        if config.drift_period > 0:
            offset = (n * (tick % config.drift_period)) // config.drift_period
        else:
            offset = 0
        weights = [self._zipf[(slot + offset) % n] for slot in range(n)]
        if (config.flash_start is not None
                and config.flash_start <= tick
                < config.flash_start + config.flash_length):
            boost = config.flash_boost * self._zipf[0]
            for slot in self._flash_slots:
                weights[slot] += boost
        return weights

    def flash_active(self, tick: Optional[int] = None) -> bool:
        """Whether the flash crowd burns at ``tick`` (default: now)."""
        if tick is None:
            tick = self._tick
        start = self.config.flash_start
        return (start is not None
                and start <= tick < start + self.config.flash_length)

    def _expire(self) -> None:
        lifetime = self.config.mean_flow_lifetime
        if lifetime <= 0:
            return
        rate = 1.0 / lifetime
        rng = self._rng
        for ingress in self._ingresses:
            slots = self._slots[ingress]
            for index in range(len(slots)):
                if rng.random() < rate:
                    slots[index] = self._new_flow(ingress)

    # ------------------------------------------------------------------

    def tick(self) -> List[FlowPacket]:
        """Generate one tick's packet batch and advance time."""
        tick = self._tick
        self._tick += 1
        self._expire()
        rng = self._rng
        cumulative: Dict[str, List[float]] = {}
        for ingress in self._ingresses:
            total = 0.0
            acc: List[float] = []
            for weight in self._weights(ingress, tick):
                total += weight
                acc.append(total)
            cumulative[ingress] = acc
        packets: List[FlowPacket] = []
        for _ in range(self.config.packets_per_tick):
            ingress = self._ingresses[rng.randrange(len(self._ingresses))]
            acc = cumulative[ingress]
            slot = bisect_left(acc, rng.random() * acc[-1])
            slot = min(slot, len(acc) - 1)
            flow = self._slots[ingress][slot]
            width = self._policies[ingress].width or 1
            packets.append(FlowPacket(ingress, flow.path, flow.header,
                                      width, flow.flow_id))
        return packets
