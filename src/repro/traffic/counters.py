"""Per-rule popularity accounting for the cache controller.

Two estimators feed the promotion/eviction loop:

* :class:`EwmaCounters` -- exponentially-decayed per-key hit rates with
  a configurable half-life (in ticks).  Recency-weighted frequency: a
  rule hot an hour ago but cold now decays toward zero, which is what
  lets the controller track diurnal drift and flash crowds.
* :class:`SpaceSavingTopK` -- the classic Metwally/Agrawal/El Abbadi
  space-saving sketch: bounded memory, guaranteed superset of the true
  top-k, per-key overestimation error tracked explicitly.  Used to cap
  tracker state on long streams so controller memory stays O(k) even
  when the flow/rule universe is unbounded.

Both are plain deterministic data structures (no randomness, no wall
clock); ties break on the key so behaviour is reproducible across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

__all__ = ["EwmaCounters", "SpaceSavingTopK", "PopularityTracker"]

Key = Hashable


class EwmaCounters:
    """Exponentially decayed counters over discrete ticks.

    ``record(key)`` adds weight to a key within the current tick;
    ``tick()`` closes the tick, multiplying every score by
    ``0.5 ** (1 / half_life)`` so a key's score halves after
    ``half_life`` idle ticks.  Scores are folded lazily per key (each
    key stores the tick its score was last normalized to), so ``tick``
    is O(1), not O(keys).
    """

    def __init__(self, half_life: float = 16.0) -> None:
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.half_life = half_life
        self._decay = 0.5 ** (1.0 / half_life)
        self._tick = 0
        #: key -> (score at ``_stamp[key]``, cumulative raw count)
        self._scores: Dict[Key, float] = {}
        self._stamps: Dict[Key, int] = {}
        self._counts: Dict[Key, int] = {}
        self._last_seen: Dict[Key, int] = {}

    def _fold(self, key: Key) -> float:
        score = self._scores.get(key, 0.0)
        stamp = self._stamps.get(key, self._tick)
        if stamp != self._tick:
            score *= self._decay ** (self._tick - stamp)
            self._scores[key] = score
            self._stamps[key] = self._tick
        return score

    def record(self, key: Key, weight: float = 1.0) -> None:
        self._scores[key] = self._fold(key) + weight
        self._stamps[key] = self._tick
        self._counts[key] = self._counts.get(key, 0) + 1
        self._last_seen[key] = self._tick

    def tick(self) -> None:
        """Close the current tick (decay applies lazily from here on)."""
        self._tick += 1

    def score(self, key: Key) -> float:
        """Decayed popularity of ``key`` as of the current tick."""
        score = self._scores.get(key)
        if score is None:
            return 0.0
        stamp = self._stamps[key]
        return score * self._decay ** (self._tick - stamp)

    def count(self, key: Key) -> int:
        """Cumulative (undecayed) hit count of ``key``."""
        return self._counts.get(key, 0)

    def last_seen(self, key: Key) -> Optional[int]:
        """Tick of the key's most recent hit, or ``None`` if never."""
        return self._last_seen.get(key)

    def keys(self) -> Tuple[Key, ...]:
        return tuple(self._scores)

    def drop(self, key: Key) -> None:
        """Forget a key entirely (evicted from the tracked set)."""
        self._scores.pop(key, None)
        self._stamps.pop(key, None)
        self._counts.pop(key, None)
        self._last_seen.pop(key, None)

    @property
    def current_tick(self) -> int:
        return self._tick


@dataclass(frozen=True)
class TopKEntry:
    key: Key
    count: int
    #: Maximum overestimation of ``count`` (0 = exact).
    error: int


class SpaceSavingTopK:
    """Space-saving heavy-hitter sketch with deterministic eviction.

    Holds at most ``capacity`` monitored keys.  An unmonitored arrival
    evicts the minimum-count key (ties broken by ``repr`` of the key,
    so runs are reproducible) and inherits its count as the new key's
    error bound.  Guarantees: every key with true count >
    ``total / capacity`` is monitored, and ``count - error`` is a lower
    bound on the true count.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._counts: Dict[Key, int] = {}
        self._errors: Dict[Key, int] = {}
        self._total = 0

    def record(self, key: Key) -> None:
        self._total += 1
        if key in self._counts:
            self._counts[key] += 1
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = 1
            self._errors[key] = 0
            return
        victim = min(self._counts,
                     key=lambda k: (self._counts[k], repr(k)))
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = floor + 1
        self._errors[key] = floor

    def top(self, k: Optional[int] = None) -> List[TopKEntry]:
        """Monitored keys by decreasing count (then key repr)."""
        ranked = sorted(self._counts,
                        key=lambda key: (-self._counts[key], repr(key)))
        if k is not None:
            ranked = ranked[:k]
        return [TopKEntry(key, self._counts[key], self._errors[key])
                for key in ranked]

    def __contains__(self, key: Key) -> bool:
        return key in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    @property
    def total(self) -> int:
        return self._total


class PopularityTracker:
    """EWMA scores bounded by a space-saving monitored set.

    The composition the controller consumes: every hit feeds both the
    sketch (which decides *which* keys deserve state) and the EWMA
    (which scores the monitored ones); keys the sketch evicts are
    dropped from the EWMA too, so total state is O(sketch capacity)
    regardless of stream length.
    """

    def __init__(self, half_life: float = 16.0,
                 monitored: int = 1024) -> None:
        self.ewma = EwmaCounters(half_life)
        self.sketch = SpaceSavingTopK(monitored)

    def record(self, key: Key, weight: float = 1.0) -> None:
        before = set(self.sketch._counts) if len(
            self.sketch) >= self.sketch.capacity else None
        self.sketch.record(key)
        if before is not None:
            evicted = before - set(self.sketch._counts)
            for gone in evicted:
                self.ewma.drop(gone)
        self.ewma.record(key, weight)

    def tick(self) -> None:
        self.ewma.tick()

    def score(self, key: Key) -> float:
        return self.ewma.score(key)

    def count(self, key: Key) -> int:
        return self.ewma.count(key)

    def last_seen(self, key: Key) -> Optional[int]:
        return self.ewma.last_seen(key)

    @property
    def current_tick(self) -> int:
        return self.ewma.current_tick
