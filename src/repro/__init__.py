"""repro: a reproduction of "An Adaptable Rule Placement for
Software-Defined Networks" (Zhang et al., DSN 2014).

The package implements the paper's ILP- and satisfiability-based
distributed firewall rule placement for SDNs, together with every
substrate it relies on: ternary-match policy algebra, ClassBench-style
policy synthesis, fat-tree topologies and shortest-path routing, a TCAM
dataplane simulator, a MILP modeling layer with exact backends, and a
from-scratch CDCL SAT solver with cardinality/pseudo-Boolean encodings.

Quickstart
----------
>>> from repro import fattree, ShortestPathRouter, generate_policy_set
>>> from repro import PlacementInstance, RulePlacer, verify_placement
>>> topo = fattree(4, capacity=60)
>>> router = ShortestPathRouter(topo, seed=1)
>>> ingresses = [p.name for p in topo.entry_ports][:4]
>>> routing = router.random_routing(8, ingresses=ingresses)
>>> policies = generate_policy_set(ingresses, rules_per_policy=12, seed=1)
>>> placement = RulePlacer().place(PlacementInstance(topo, routing, policies))
>>> placement.is_feasible and verify_placement(placement).ok
True
"""

from .policy import (
    TernaryMatch,
    RegionSet,
    Action,
    Rule,
    FiveTuple,
    Policy,
    PolicySet,
    PolicyGenerator,
    PolicyGeneratorConfig,
    generate_policy_set,
    remove_redundant_rules,
)
from .net import (
    Topology,
    Switch,
    EntryPort,
    fattree,
    Path,
    Routing,
    ShortestPathRouter,
)
from .dataplane import (
    Dataplane,
    Packet,
    SwitchTable,
    TcamEntry,
    Verdict,
    ChannelConfig,
    ControlChannel,
    SwitchAgent,
)
from .milp import Model, SolveStatus, ScipyMilpBackend, BranchAndBoundBackend
from .net import (
    line,
    ring,
    star,
    leaf_spine,
    random_graph,
    fail_link,
    fail_switch,
    restore,
    reroute_after_failure,
)
from .core import (
    PlacementInstance,
    RulePlacer,
    PlacerConfig,
    Placement,
    SatPlacer,
    SatOptimizer,
    MonitorSpec,
    monitoring_pins,
    validate_monitoring,
    plan_transition,
    apply_plan,
    TransitionPlan,
    instance_report,
    placement_report,
    TotalRules,
    UpstreamDrops,
    WeightedSwitches,
    SwitchCount,
    Combined,
    build_dependency_graph,
    build_merge_plan,
    verify_placement,
    synthesize,
    IncrementalDeployer,
    Controller,
    TransitionAborted,
    SwitchDeadError,
    Reconciler,
    ReconcileStage,
    BigSwitch,
    check_refinement,
)
from .chaos import ChaosConfig, ChaosHarness, ChaosReport, run_chaos
from .baselines import (
    place_all_at_ingress,
    place_replicated,
    replication_rule_count,
    place_greedy,
)

from . import io

__version__ = "1.0.0"

__all__ = [
    "io",
    "line",
    "ring",
    "star",
    "leaf_spine",
    "random_graph",
    "SatOptimizer",
    "MonitorSpec",
    "monitoring_pins",
    "validate_monitoring",
    "plan_transition",
    "apply_plan",
    "TransitionPlan",
    "instance_report",
    "placement_report",
    "Controller",
    "TransitionAborted",
    "SwitchDeadError",
    "Reconciler",
    "ReconcileStage",
    "ChannelConfig",
    "ControlChannel",
    "SwitchAgent",
    "ChaosConfig",
    "ChaosHarness",
    "ChaosReport",
    "run_chaos",
    "BigSwitch",
    "check_refinement",
    "fail_link",
    "fail_switch",
    "restore",
    "reroute_after_failure",
    "TernaryMatch",
    "RegionSet",
    "Action",
    "Rule",
    "FiveTuple",
    "Policy",
    "PolicySet",
    "PolicyGenerator",
    "PolicyGeneratorConfig",
    "generate_policy_set",
    "remove_redundant_rules",
    "Topology",
    "Switch",
    "EntryPort",
    "fattree",
    "Path",
    "Routing",
    "ShortestPathRouter",
    "Dataplane",
    "Packet",
    "SwitchTable",
    "TcamEntry",
    "Verdict",
    "Model",
    "SolveStatus",
    "ScipyMilpBackend",
    "BranchAndBoundBackend",
    "PlacementInstance",
    "RulePlacer",
    "PlacerConfig",
    "Placement",
    "SatPlacer",
    "TotalRules",
    "UpstreamDrops",
    "WeightedSwitches",
    "SwitchCount",
    "Combined",
    "build_dependency_graph",
    "build_merge_plan",
    "verify_placement",
    "synthesize",
    "IncrementalDeployer",
    "place_all_at_ingress",
    "place_replicated",
    "replication_rule_count",
    "place_greedy",
]
