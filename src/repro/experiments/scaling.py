"""Analytic encoding-size model (the paper's Section V discussion).

The paper reports concrete encoding sizes -- "for the case with k=8,
r=100, p=1024, we have about 290K variables and 520K constraints ...
for k=32, about 500K variables and 940K constraints" -- and explains
them structurally: *"the total number of variables is proportional to
the total number of rules and switches.  The number of constraints is
proportional to the number of paths, switches, and correlated with the
number of rules (dependency constraints)."*

This module computes those counts exactly from an instance *without
building the model* (closed-form over the dependency graphs, path sets
and domains), so scaling studies can predict solver input sizes cheaply
and the benchmark suite can assert that predicted == actual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.depgraph import DependencyGraph, build_dependency_graph
from ..core.instance import PlacementInstance
from ..core.merging import build_merge_plan
from ..core.slicing import build_slices

__all__ = ["EncodingSize", "predict_encoding_size"]


@dataclass(frozen=True)
class EncodingSize:
    """Predicted ILP encoding dimensions for one instance."""

    placement_variables: int
    merge_variables: int
    dependency_constraints: int
    path_constraints: int
    capacity_constraints: int
    merge_constraints: int

    @property
    def variables(self) -> int:
        return self.placement_variables + self.merge_variables

    @property
    def constraints(self) -> int:
        return (self.dependency_constraints + self.path_constraints
                + self.capacity_constraints + self.merge_constraints)

    def summary(self) -> str:
        return (
            f"{self.variables} variables "
            f"({self.placement_variables} placement + {self.merge_variables} merge), "
            f"{self.constraints} constraints "
            f"({self.dependency_constraints} dep + {self.path_constraints} path + "
            f"{self.capacity_constraints} cap + {self.merge_constraints} merge)"
        )


def predict_encoding_size(instance: PlacementInstance,
                          enable_merging: bool = False) -> EncodingSize:
    """Closed-form prediction matching ``build_encoding`` exactly.

    * placement variables: one per (rule, switch-in-domain);
    * dependency rows (Eq. 1): one per (drop, permit-dependency,
      switch-in-drop-domain);
    * path rows (Eq. 2): one per (path, path-relevant drop);
    * capacity rows (Eq. 3): one per switch hosting any variable;
    * merge variables/rows (Eq. 4-5): one variable and two rows per
      (group, switch) pair with >= 2 members.
    """
    depgraphs: Dict[str, DependencyGraph] = {
        policy.ingress: build_dependency_graph(policy)
        for policy in instance.policies
    }
    slices = build_slices(instance, depgraphs)

    placement_variables = slices.num_variables()

    dependency_constraints = 0
    for policy in instance.policies:
        graph = depgraphs[policy.ingress]
        for drop_priority in graph.drop_priorities():
            domain = slices.domain((policy.ingress, drop_priority))
            dependency_constraints += (
                len(graph.dependencies_of(drop_priority)) * len(domain)
            )

    path_constraints = 0
    for policy in instance.policies:
        for path_index, _path in enumerate(instance.routing.paths(policy.ingress)):
            path_constraints += len(
                slices.drops_for_path(policy.ingress, path_index)
            )

    switches_used = {
        switch for switches in slices.domains.values() for switch in switches
    }
    capacity_constraints = len(switches_used)

    merge_variables = 0
    merge_constraints = 0
    if enable_merging:
        plan = build_merge_plan(instance, slices)
        merge_variables = len(plan.members_at)
        merge_constraints = 2 * len(plan.members_at)

    return EncodingSize(
        placement_variables=placement_variables,
        merge_variables=merge_variables,
        dependency_constraints=dependency_constraints,
        path_constraints=path_constraints,
        capacity_constraints=capacity_constraints,
        merge_constraints=merge_constraints,
    )
