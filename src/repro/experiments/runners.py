"""Experiment runners: one measured data point per call.

Each runner builds an instance, runs the placement pipeline with the
experiment's settings, optionally verifies the result, and returns a
flat :class:`Record` -- the unit the benchmark harnesses aggregate into
the paper's tables and figure series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.placement import PlacerConfig, RulePlacer
from ..core.verify import verify_placement
from ..milp.model import SolveStatus
from .generators import ExperimentConfig, build_instance

__all__ = ["Record", "run_point", "run_averaged", "sweep", "winner_distribution"]


@dataclass
class Record:
    """One measured experimental data point."""

    config: ExperimentConfig
    status: SolveStatus
    runtime_seconds: float
    build_seconds: float = 0.0
    installed_rules: Optional[int] = None
    required_rules: Optional[int] = None
    overhead: Optional[float] = None
    num_variables: int = 0
    num_constraints: int = 0
    verified: Optional[bool] = None
    #: Portfolio solves only: which engine produced the answer, whether
    #: the shared deadline expired, and the per-engine telemetry record.
    winner: Optional[str] = None
    deadline_hit: Optional[bool] = None
    engine_stats: Optional[Dict[str, object]] = None

    @property
    def feasible(self) -> bool:
        return self.status.has_solution or self.installed_rules is not None

    def row(self) -> str:
        status = self.status.value
        installed = "-" if self.installed_rules is None else str(self.installed_rules)
        overhead = "-" if self.overhead is None else f"{self.overhead:+.0%}"
        winner = "" if self.winner is None else f" [{self.winner}]"
        return (
            f"{self.config.describe():<40} {status:<11} "
            f"{self.runtime_seconds * 1000:>9.1f}ms {installed:>7} {overhead:>7}"
            f"{winner}"
        )


def run_point(
    config: ExperimentConfig,
    enable_merging: bool = False,
    time_limit: Optional[float] = None,
    verify: bool = False,
    placer_config: Optional[PlacerConfig] = None,
) -> Record:
    """Generate + solve one configuration; optionally verify exactly."""
    instance = build_instance(config)
    if placer_config is None:
        placer_config = PlacerConfig(
            enable_merging=enable_merging, time_limit=time_limit
        )
    placer = RulePlacer(placer_config)
    placement = placer.place(instance)
    record = Record(
        config=config,
        status=placement.status,
        runtime_seconds=placement.solve_seconds,
        build_seconds=placement.build_seconds,
        num_variables=placement.num_variables,
        num_constraints=placement.num_constraints,
    )
    portfolio = placement.solver_stats.get("portfolio")
    if isinstance(portfolio, dict):
        record.winner = portfolio.get("winner")
        record.deadline_hit = portfolio.get("deadline_hit")
        record.engine_stats = portfolio.get("engines")
    if placement.is_feasible:
        record.installed_rules = placement.total_installed()
        record.required_rules = placement.required_rules()
        record.overhead = placement.duplication_overhead()
        if verify:
            record.verified = verify_placement(placement).ok
    return record


def run_averaged(
    config: ExperimentConfig,
    instances: int = 3,
    enable_merging: bool = False,
    time_limit: Optional[float] = None,
) -> List[Record]:
    """The paper's variance treatment: several random instances per
    x-axis point (5 in the paper; configurable here), distinct seeds."""
    records = []
    for offset in range(instances):
        point = ExperimentConfig(**{**config.__dict__, "seed": config.seed + offset})
        records.append(
            run_point(point, enable_merging=enable_merging, time_limit=time_limit)
        )
    return records


def winner_distribution(records: Sequence[Record]) -> Dict[str, int]:
    """How often each engine won across a sweep of portfolio solves --
    the headline statistic for EXPERIMENTS portfolio tables."""
    counts: Dict[str, int] = {}
    for record in records:
        if record.winner is not None:
            counts[record.winner] = counts.get(record.winner, 0) + 1
    return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))


def sweep(
    base: ExperimentConfig,
    parameter: str,
    values: Sequence,
    instances: int = 3,
    enable_merging: bool = False,
    time_limit: Optional[float] = None,
) -> Dict[object, List[Record]]:
    """Sweep one generation parameter, several instances per point."""
    results: Dict[object, List[Record]] = {}
    for value in values:
        point = ExperimentConfig(**{**base.__dict__, parameter: value})
        results[value] = run_averaged(
            point, instances=instances,
            enable_merging=enable_merging, time_limit=time_limit,
        )
    return results
