"""Experiment harness: instance generation, runners, and reporting for
the paper's Section V evaluation."""

from .generators import ExperimentConfig, build_instance, attach_flow_descriptors
from .runners import Record, run_point, run_averaged, sweep
from .reporting import figure_series, format_figure, format_table2_cell, banner
from .scaling import EncodingSize, predict_encoding_size

__all__ = [
    "EncodingSize",
    "predict_encoding_size",
    "ExperimentConfig",
    "build_instance",
    "attach_flow_descriptors",
    "Record",
    "run_point",
    "run_averaged",
    "sweep",
    "figure_series",
    "format_figure",
    "format_table2_cell",
    "banner",
]
