"""Plain-text rendering of experiment results in the paper's shapes.

The benchmark harnesses print these tables so a run of
``pytest benchmarks/ --benchmark-only -s`` regenerates, row for row,
the series behind each figure and table of Section V (see
EXPERIMENTS.md for the paper-vs-measured record).
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional

from .runners import Record

__all__ = ["figure_series", "format_figure", "format_table2_cell", "banner"]


def banner(title: str) -> str:
    rule = "=" * max(60, len(title) + 4)
    return f"\n{rule}\n  {title}\n{rule}"


def figure_series(results: Dict[object, List[Record]]) -> List[dict]:
    """Aggregate a sweep into (x, mean/min/max runtime, feasibility) rows."""
    rows = []
    for x, records in results.items():
        runtimes = [r.runtime_seconds for r in records]
        rows.append({
            "x": x,
            "mean_ms": statistics.mean(runtimes) * 1000,
            "min_ms": min(runtimes) * 1000,
            "max_ms": max(runtimes) * 1000,
            "feasible": sum(1 for r in records if r.feasible),
            "total": len(records),
            "mean_installed": (
                statistics.mean(r.installed_rules for r in records if r.feasible)
                if any(r.feasible for r in records) else None
            ),
        })
    return rows


def format_figure(title: str, xlabel: str,
                  results: Dict[object, List[Record]]) -> str:
    """A paper-figure-like text table: runtime vs the swept parameter."""
    lines = [banner(title)]
    lines.append(
        f"{xlabel:>10} | {'mean':>10} {'min':>10} {'max':>10} | feasible | rules"
    )
    lines.append("-" * 66)
    for row in figure_series(results):
        installed = (
            "-" if row["mean_installed"] is None else f"{row['mean_installed']:.0f}"
        )
        lines.append(
            f"{row['x']!s:>10} | {row['mean_ms']:>8.1f}ms {row['min_ms']:>8.1f}ms "
            f"{row['max_ms']:>8.1f}ms |   {row['feasible']}/{row['total']}    | {installed}"
        )
    return "\n".join(lines)


def format_table2_cell(installed: Optional[int], overhead: Optional[float]) -> str:
    """One Table-II cell: 'total-rules overhead%' or '- Inf'."""
    if installed is None:
        return "   -    Inf"
    return f"{installed:>5} {overhead:>5.0%}"
