"""Instance generation for the paper's experiments (Section V).

The evaluation recipe: a fat-tree topology, randomly generated
shortest-path routing, and one ClassBench-style policy per network
ingress; knobs are the fat-tree arity ``k``, the number of paths ``p``,
the rules per policy ``r``, and the uniform switch capacity ``C``.
``build_instance`` reproduces that recipe deterministically from a
seed; DESIGN.md documents how the paper's CPLEX-scale parameter ranges
map onto the laptop-scale defaults used by ``benchmarks/``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..net.fattree import fattree
from ..net.routing import Routing, ShortestPathRouter
from ..policy.classbench import PolicyGeneratorConfig, generate_policy_set
from ..policy.rule import FiveTuple
from ..policy.ternary import TernaryMatch
from ..core.instance import PlacementInstance

__all__ = ["ExperimentConfig", "build_instance", "attach_flow_descriptors"]


@dataclass
class ExperimentConfig:
    """One experimental data point's generation parameters."""

    k: int = 4
    num_paths: int = 32
    rules_per_policy: int = 20
    capacity: int = 100
    num_ingresses: Optional[int] = None
    blacklist_rules: int = 0
    flow_slicing: bool = False
    seed: int = 0
    drop_fraction: float = 0.35
    nested_fraction: float = 0.4

    def describe(self) -> str:
        return (
            f"k={self.k} p={self.num_paths} r={self.rules_per_policy} "
            f"C={self.capacity} seed={self.seed}"
        )


def attach_flow_descriptors(routing: Routing, seed: int = 0) -> Routing:
    """Annotate each path with a destination-prefix flow descriptor.

    Models the Section IV-C setting (Fig. 6): each egress serves a
    distinct dst-IP /24, so the packets taking a route match only the
    slice of the ingress policy overlapping that prefix.  Prefixes are
    assigned per egress deterministically.
    """
    rng = random.Random(seed)
    egress_prefix: dict[str, TernaryMatch] = {}
    sliced = Routing()
    for path in routing.all_paths():
        prefix = egress_prefix.get(path.egress)
        if prefix is None:
            base = rng.getrandbits(32)
            dst = TernaryMatch.from_prefix(32, base, 24)
            prefix = FiveTuple(dst_ip=dst).to_match()
            egress_prefix[path.egress] = prefix
        sliced.add_path(path.with_flow(prefix))
    return sliced


def build_instance(config: ExperimentConfig) -> PlacementInstance:
    """Generate one deterministic instance from the experiment knobs."""
    topo = fattree(config.k, capacity=config.capacity)
    ports = [p.name for p in topo.entry_ports]
    if config.num_ingresses is None:
        # Default: one policy per edge switch's first host, bounding the
        # number of policies at k (pods) * k/2 (edges) while the path
        # count scales independently -- mirroring "p paths, one policy
        # per ingress" in the paper.
        ingresses = [p for p in ports if p.endswith("_0")]
    else:
        ingresses = ports[: config.num_ingresses]
    router = ShortestPathRouter(topo, seed=config.seed)
    routing = router.random_routing(config.num_paths, ingresses=ingresses)
    if config.flow_slicing:
        routing = attach_flow_descriptors(routing, seed=config.seed)
    generator_config = PolicyGeneratorConfig(
        num_rules=config.rules_per_policy,
        drop_fraction=config.drop_fraction,
        nested_fraction=config.nested_fraction,
    )
    policies = generate_policy_set(
        ingresses,
        rules_per_policy=config.rules_per_policy,
        seed=config.seed,
        config=generator_config,
        blacklist_rules=config.blacklist_rules,
    )
    return PlacementInstance(topo, routing, policies)
