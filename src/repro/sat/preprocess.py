"""CNF preprocessing: unit propagation and pure-literal elimination.

The placement encodings contain many unit clauses (incremental pins)
and one-sided variables (auxiliary counter bits appearing with one
polarity).  Running the textbook simplifications once before CDCL
shrinks the formula and, more importantly for correctness tooling,
yields a *model-completion* recipe: a model of the simplified formula
extends to the original by replaying the eliminated assignments.

Satisfiability is preserved exactly; tests cross-check against the
unpreprocessed solver on random formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .cnf import CNF

__all__ = ["PreprocessResult", "preprocess", "extend_model"]


@dataclass
class PreprocessResult:
    """A simplified CNF plus the bookkeeping to extend its models."""

    cnf: Optional[CNF]                     # None when UNSAT was proven
    #: var -> value for variables decided during preprocessing.
    assigned: Dict[int, bool] = field(default_factory=dict)
    #: variables eliminated as pure, with the satisfying polarity.
    pure: Dict[int, bool] = field(default_factory=dict)
    unsat: bool = False
    clauses_removed: int = 0
    #: original variable count (simplified CNF keeps the numbering).
    num_vars: int = 0


def preprocess(cnf: CNF) -> PreprocessResult:
    """Apply unit propagation + pure-literal elimination to fixpoint."""
    result = PreprocessResult(cnf=None, num_vars=cnf.num_vars)
    clauses: List[Tuple[int, ...]] = list(cnf.clauses)
    assigned: Dict[int, bool] = {}
    pure: Dict[int, bool] = {}

    def value_of(lit: int) -> Optional[bool]:
        var = abs(lit)
        if var in assigned:
            return assigned[var] == (lit > 0)
        if var in pure:
            return pure[var] == (lit > 0)
        return None

    changed = True
    while changed:
        changed = False

        # --- unit propagation --------------------------------------------
        simplified: List[Tuple[int, ...]] = []
        for clause in clauses:
            keep: List[int] = []
            satisfied = False
            for lit in clause:
                val = value_of(lit)
                if val is True:
                    satisfied = True
                    break
                if val is None:
                    keep.append(lit)
            if satisfied:
                changed = True
                continue
            if not keep:
                result.unsat = True
                result.assigned = assigned
                result.pure = pure
                return result
            if len(keep) == 1:
                lit = keep[0]
                assigned[abs(lit)] = lit > 0
                changed = True
                continue
            if len(keep) != len(clause):
                changed = True
            simplified.append(tuple(keep))
        clauses = simplified

        # --- pure literals -------------------------------------------------
        # Only variables with no value yet are candidates: a variable
        # assigned by unit propagation earlier in this same iteration
        # may still appear in not-yet-resimplified clauses, and treating
        # it as pure would contradict the assignment.
        polarity: Dict[int, Set[bool]] = {}
        for clause in clauses:
            for lit in clause:
                var = abs(lit)
                if var in assigned or var in pure:
                    continue
                polarity.setdefault(var, set()).add(lit > 0)
        new_pure = {
            var: next(iter(signs)) for var, signs in polarity.items()
            if len(signs) == 1
        }
        if new_pure:
            changed = True
            pure.update(new_pure)
            clauses = [
                clause for clause in clauses
                if not any(abs(lit) in new_pure for lit in clause)
            ]

    out = CNF()
    out.num_vars = cnf.num_vars
    out.clauses = clauses
    result.cnf = out
    result.assigned = assigned
    result.pure = pure
    result.clauses_removed = len(cnf.clauses) - len(clauses)
    return result


def extend_model(result: PreprocessResult,
                 model: Dict[int, bool]) -> Dict[int, bool]:
    """Extend a simplified-formula model to the original variables.

    Preprocessing-decided variables take their forced/pure values;
    variables absent everywhere default to False.
    """
    full = {var: False for var in range(1, result.num_vars + 1)}
    full.update(model)
    full.update(result.pure)
    full.update(result.assigned)
    return full
