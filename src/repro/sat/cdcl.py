"""A from-scratch CDCL SAT solver.

The paper's Section IV-D proposes solving the rule-placement constraint
system with an SMT or Pseudo-Boolean solver.  No such solver is
available offline, so we implement the decision core ourselves:
conflict-driven clause learning with

* two-watched-literal unit propagation,
* first-UIP conflict analysis with non-chronological backjumping,
* VSIDS-style variable activities with exponential decay,
* Luby-sequence restarts, and
* phase saving.

The solver is exact and complete; it is validated against brute-force
enumeration on random formulas in the test suite.
"""

from __future__ import annotations

import enum
import time
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from .cnf import CNF

__all__ = ["SatStatus", "SatResult", "CdclSolver", "solve_cnf"]


class SatStatus(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"  # conflict budget exhausted


class SatResult:
    """Outcome of a SAT solve: status, model, and search statistics."""

    def __init__(self, status: SatStatus, model: Optional[Dict[int, bool]] = None,
                 conflicts: int = 0, decisions: int = 0, restarts: int = 0) -> None:
        self.status = status
        self.model = model or {}
        self.conflicts = conflicts
        self.decisions = decisions
        self.restarts = restarts

    @property
    def is_sat(self) -> bool:
        return self.status is SatStatus.SAT

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SatResult({self.status.value}, conflicts={self.conflicts}, "
            f"decisions={self.decisions}, restarts={self.restarts})"
        )


def _luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (1-indexed).

    If ``i == 2^k - 1`` the value is ``2^(k-1)``; otherwise recurse on
    ``i - (2^(k-1) - 1)`` for the smallest ``k`` with ``2^k - 1 >= i``.
    """
    k = 1
    while (1 << k) - 1 < i:
        k += 1
    while (1 << k) - 1 != i:
        i -= (1 << (k - 1)) - 1
        k = 1
        while (1 << k) - 1 < i:
            k += 1
    return 1 << (k - 1)


class CdclSolver:
    """One-shot CDCL solver over a :class:`~repro.sat.cnf.CNF`.

    ``max_learnts`` caps the learnt-clause database; exceeding it
    triggers an activity-based reduction (lowered in tests to stress
    the deletion machinery; the default suits placement encodings).
    """

    def __init__(self, cnf: CNF, max_learnts: int = 2000) -> None:
        self.n = cnf.num_vars
        self.clauses: List[List[int]] = []
        self.watches: Dict[int, List[int]] = defaultdict(list)
        # values[v]: 0 unassigned, +1 true, -1 false.
        self.values = [0] * (self.n + 1)
        self.levels = [0] * (self.n + 1)
        self.reasons: List[Optional[int]] = [None] * (self.n + 1)
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.activity = [0.0] * (self.n + 1)
        self.var_inc = 1.0
        self.var_decay = 1.0 / 0.95
        self.phase = [False] * (self.n + 1)
        self.ok = True
        self.conflicts = 0
        self.decisions = 0
        self.restarts = 0
        self.reductions = 0
        for clause in cnf.clauses:
            self._attach_clause(list(clause))
        #: Clause indices below this are original; learnt otherwise.
        self.first_learnt = len(self.clauses)
        self.clause_activity: Dict[int, float] = {}
        self.clause_inc = 1.0
        self.clause_decay = 1.0 / 0.999
        self.live_learnts = 0
        self.max_learnts = max_learnts

    # ------------------------------------------------------------------
    # Assignment plumbing
    # ------------------------------------------------------------------

    @property
    def decision_level(self) -> int:
        return len(self.trail_lim)

    def _value(self, lit: int) -> int:
        v = self.values[abs(lit)]
        return v if lit > 0 else -v

    def _enqueue(self, lit: int, reason: Optional[int]) -> None:
        var = abs(lit)
        self.values[var] = 1 if lit > 0 else -1
        self.levels[var] = self.decision_level
        self.reasons[var] = reason
        self.trail.append(lit)

    def _attach_clause(self, clause: List[int]) -> None:
        """Install an original clause, handling empty/unit specially."""
        if not self.ok:
            return
        if not clause:
            self.ok = False
            return
        if len(clause) == 1:
            lit = clause[0]
            val = self._value(lit)
            if val == -1:
                self.ok = False
            elif val == 0:
                self._enqueue(lit, None)
            return
        idx = len(self.clauses)
        self.clauses.append(clause)
        self.watches[clause[0]].append(idx)
        self.watches[clause[1]].append(idx)

    # ------------------------------------------------------------------
    # Unit propagation (two watched literals)
    # ------------------------------------------------------------------

    def _propagate(self) -> Optional[int]:
        """Propagate the trail; returns a conflicting clause index or None."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            false_lit = -lit
            watching = self.watches[false_lit]
            kept: List[int] = []
            i = 0
            while i < len(watching):
                ci = watching[i]
                i += 1
                clause = self.clauses[ci]
                if clause is None:
                    continue  # deleted learnt: drop this watch lazily
                # Normalize: the falsified watch sits at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    kept.append(ci)
                    continue
                # Search a replacement watch.
                moved = False
                for j in range(2, len(clause)):
                    if self._value(clause[j]) != -1:
                        clause[1], clause[j] = clause[j], clause[1]
                        self.watches[clause[1]].append(ci)
                        moved = True
                        break
                if moved:
                    continue
                # No replacement: clause is unit or conflicting.
                kept.append(ci)
                if self._value(first) == -1:
                    kept.extend(watching[i:])
                    self.watches[false_lit] = kept
                    return ci
                self._enqueue(first, ci)
            self.watches[false_lit] = kept
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.n + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, confl: int) -> Tuple[List[int], int]:
        """Derive the 1-UIP learnt clause and its backjump level."""
        learnt: List[int] = [0]
        seen = [False] * (self.n + 1)
        counter = 0
        p: Optional[int] = None
        idx = len(self.trail) - 1
        self._bump_clause(confl)
        reason_clause = self.clauses[confl]
        while True:
            for q in reason_clause:
                if p is not None and q == p:
                    continue
                var = abs(q)
                if not seen[var] and self.levels[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.levels[var] == self.decision_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self.trail[idx])]:
                idx -= 1
            p = self.trail[idx]
            idx -= 1
            var = abs(p)
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            reason = self.reasons[var]
            assert reason is not None, "non-decision literal must have a reason"
            self._bump_clause(reason)
            reason_clause = self.clauses[reason]
        learnt[0] = -p
        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest level in the clause; move that
        # literal to watch position 1.
        max_i = 1
        for i in range(2, len(learnt)):
            if self.levels[abs(learnt[i])] > self.levels[abs(learnt[max_i])]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self.levels[abs(learnt[1])]

    def _backjump(self, level: int) -> None:
        while self.trail and self.decision_level > level:
            limit = self.trail_lim[-1]
            while len(self.trail) > limit:
                lit = self.trail.pop()
                var = abs(lit)
                self.phase[var] = lit > 0
                self.values[var] = 0
                self.reasons[var] = None
            self.trail_lim.pop()
        self.qhead = len(self.trail)

    def _record_learnt(self, learnt: List[int]) -> None:
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        idx = len(self.clauses)
        self.clauses.append(learnt)
        self.watches[learnt[0]].append(idx)
        self.watches[learnt[1]].append(idx)
        self.clause_activity[idx] = self.clause_inc
        self.live_learnts += 1
        self._enqueue(learnt[0], idx)

    def _bump_clause(self, idx: int) -> None:
        """VSIDS-style activity for learnt clauses (originals ignored)."""
        if idx < self.first_learnt:
            return
        activity = self.clause_activity.get(idx)
        if activity is None:
            return
        activity += self.clause_inc
        self.clause_activity[idx] = activity
        if activity > 1e100:
            for key in self.clause_activity:
                self.clause_activity[key] *= 1e-100
            self.clause_inc *= 1e-100

    def _reduce_db(self) -> None:
        """Delete the low-activity half of the learnt clauses.

        Clauses currently serving as propagation reasons are locked;
        binary clauses are kept (cheap, high-value).  Deletion is a
        tombstone -- watch lists skip and shed dead indices lazily.
        """
        locked = {
            reason for reason in self.reasons
            if reason is not None and reason >= self.first_learnt
        }
        candidates = [
            idx for idx, activity in self.clause_activity.items()
            if idx not in locked and self.clauses[idx] is not None
            and len(self.clauses[idx]) > 2
        ]
        if not candidates:
            self.max_learnts = int(self.max_learnts * 1.3) + 16
            return
        candidates.sort(key=lambda idx: self.clause_activity[idx])
        for idx in candidates[: len(candidates) // 2]:
            self.clauses[idx] = None
            del self.clause_activity[idx]
            self.live_learnts -= 1
        self.reductions += 1
        self.max_learnts = int(self.max_learnts * 1.1) + 16

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _decide(self) -> Optional[int]:
        best_var = 0
        best_act = -1.0
        for var in range(1, self.n + 1):
            if self.values[var] == 0 and self.activity[var] > best_act:
                best_var, best_act = var, self.activity[var]
        if best_var == 0:
            return None
        return best_var if self.phase[best_var] else -best_var

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (),
              max_conflicts: Optional[int] = None,
              time_limit: Optional[float] = None) -> SatResult:
        """Decide satisfiability (optionally under unit assumptions).

        ``time_limit`` bounds wall-clock seconds; like ``max_conflicts``
        it returns :class:`SatStatus.UNKNOWN` on expiry (checked once
        per conflict, so expiry is detected within one conflict's work).
        """
        if not self.ok:
            return SatResult(SatStatus.UNSAT)
        deadline = (
            None if time_limit is None else time.perf_counter() + time_limit
        )
        confl = self._propagate()
        if confl is not None:
            return SatResult(SatStatus.UNSAT)

        restart_unit = 64
        next_restart = restart_unit * _luby(self.restarts + 1)
        conflicts_since_restart = 0

        while True:
            confl = self._propagate()
            if confl is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if self.decision_level == 0:
                    return SatResult(
                        SatStatus.UNSAT, None,
                        self.conflicts, self.decisions, self.restarts,
                    )
                learnt, bt_level = self._analyze(confl)
                self._backjump(bt_level)
                self._record_learnt(learnt)
                self.var_inc *= self.var_decay
                self.clause_inc *= self.clause_decay
                if self.live_learnts > self.max_learnts:
                    self._reduce_db()
                if max_conflicts is not None and self.conflicts >= max_conflicts:
                    return SatResult(
                        SatStatus.UNKNOWN, None,
                        self.conflicts, self.decisions, self.restarts,
                    )
                if deadline is not None and time.perf_counter() >= deadline:
                    return SatResult(
                        SatStatus.UNKNOWN, None,
                        self.conflicts, self.decisions, self.restarts,
                    )
                continue

            if conflicts_since_restart >= next_restart:
                self.restarts += 1
                conflicts_since_restart = 0
                next_restart = restart_unit * _luby(self.restarts + 1)
                self._backjump(0)
                continue

            # Honour assumptions before free decisions.
            lit = None
            for assumption in assumptions:
                val = self._value(assumption)
                if val == -1:
                    return SatResult(
                        SatStatus.UNSAT, None,
                        self.conflicts, self.decisions, self.restarts,
                    )
                if val == 0:
                    lit = assumption
                    break
            if lit is None:
                lit = self._decide()
            if lit is None:
                model = {v: self.values[v] > 0 for v in range(1, self.n + 1)}
                return SatResult(
                    SatStatus.SAT, model,
                    self.conflicts, self.decisions, self.restarts,
                )
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit, None)


def solve_cnf(cnf: CNF, assumptions: Sequence[int] = (),
              max_conflicts: Optional[int] = None,
              time_limit: Optional[float] = None) -> SatResult:
    """Convenience wrapper: build a solver and run it once."""
    return CdclSolver(cnf).solve(assumptions, max_conflicts, time_limit)
