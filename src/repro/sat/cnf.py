"""CNF formulas with DIMACS-style signed-integer literals.

Variables are positive integers ``1..n``; a literal is ``+v`` or ``-v``.
This is the input language of the CDCL solver and the target of the
cardinality / pseudo-Boolean encodings used for the paper's
satisfiability formulation (Section IV-D).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["CNF"]


class CNF:
    """A growable CNF formula plus a variable-name registry."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[Tuple[int, ...]] = []
        self._names: Dict[str, int] = {}
        self._by_var: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    def new_var(self, name: str = "") -> int:
        """Allocate a fresh variable, optionally registering a name."""
        self.num_vars += 1
        var = self.num_vars
        if name:
            if name in self._names:
                raise ValueError(f"duplicate variable name {name!r}")
            self._names[name] = var
            self._by_var[var] = name
        return var

    def var(self, name: str) -> int:
        return self._names[name]

    def name_of(self, var: int) -> Optional[str]:
        return self._by_var.get(var)

    # ------------------------------------------------------------------
    # Clauses
    # ------------------------------------------------------------------

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause; validates literals and drops duplicates.

        A clause containing both ``l`` and ``-l`` is a tautology and is
        skipped.  An empty clause makes the formula trivially UNSAT and
        is kept so the solver reports it.
        """
        seen: set[int] = set()
        clause: List[int] = []
        for lit in literals:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} out of range (n={self.num_vars})")
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        self.clauses.append(tuple(clause))

    def add_implication(self, antecedent: int, consequent: int) -> None:
        """``antecedent -> consequent`` (paper Eq. 6 shape)."""
        self.add_clause([-antecedent, consequent])

    def add_at_least_one(self, literals: Sequence[int]) -> None:
        """``l1 | l2 | ... `` (paper Eq. 7 shape)."""
        self.add_clause(literals)

    def add_equivalence_and(self, target: int, conjuncts: Sequence[int]) -> None:
        """``target <-> AND(conjuncts)`` (paper Eq. 8 shape)."""
        for lit in conjuncts:
            self.add_clause([-target, lit])
        self.add_clause([target] + [-lit for lit in conjuncts])

    # ------------------------------------------------------------------

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """Does a (total) assignment satisfy every clause?"""
        for clause in self.clauses:
            if not any(
                assignment.get(abs(lit), False) == (lit > 0) for lit in clause
            ):
                return False
        return True

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        return iter(self.clauses)

    def to_dimacs(self) -> str:
        """Standard DIMACS text, for portability/debugging."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(map(str, clause)) + " 0")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CNF({self.num_vars} vars, {len(self.clauses)} clauses)"
