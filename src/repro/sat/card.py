"""Cardinality constraints over CNF (sequential-counter encoding).

The satisfiability formulation of the paper (Section IV-D) keeps the
switch capacity constraint (Eq. 3) as a counting constraint: at most
``C_k`` of the placement variables per switch may be true.  We compile
such constraints to clauses with Sinz's sequential counter, which is
arc-consistent under unit propagation and uses ``O(n*k)`` auxiliary
variables and clauses.
"""

from __future__ import annotations

from typing import List, Sequence

from .cnf import CNF

__all__ = ["at_most_k", "at_least_k", "exactly_k"]


def at_most_k(cnf: CNF, literals: Sequence[int], k: int) -> None:
    """Add clauses enforcing ``sum(literals) <= k``.

    Sequential counter (Sinz 2005): auxiliary ``s[i][j]`` means "at
    least j of the first i+1 literals are true".
    """
    n = len(literals)
    if k < 0:
        # Impossible: force a contradiction.
        cnf.add_clause([])
        return
    if k == 0:
        for lit in literals:
            cnf.add_clause([-lit])
        return
    if n <= k:
        return  # trivially satisfied

    # s[i][j] for i in 0..n-1, j in 0..k-1 (j counts from zero).
    registers: List[List[int]] = [
        [cnf.new_var() for _ in range(k)] for _ in range(n)
    ]

    cnf.add_clause([-literals[0], registers[0][0]])
    for j in range(1, k):
        cnf.add_clause([-registers[0][j]])
    for i in range(1, n):
        cnf.add_clause([-literals[i], registers[i][0]])
        cnf.add_clause([-registers[i - 1][0], registers[i][0]])
        for j in range(1, k):
            cnf.add_clause([-literals[i], -registers[i - 1][j - 1], registers[i][j]])
            cnf.add_clause([-registers[i - 1][j], registers[i][j]])
        cnf.add_clause([-literals[i], -registers[i - 1][k - 1]])


def at_least_k(cnf: CNF, literals: Sequence[int], k: int) -> None:
    """Add clauses enforcing ``sum(literals) >= k`` (dual of at-most)."""
    n = len(literals)
    if k <= 0:
        return
    if k > n:
        cnf.add_clause([])  # impossible
        return
    if k == n:
        for lit in literals:
            cnf.add_clause([lit])
        return
    if k == 1:
        cnf.add_clause(list(literals))
        return
    at_most_k(cnf, [-lit for lit in literals], n - k)


def exactly_k(cnf: CNF, literals: Sequence[int], k: int) -> None:
    """Add clauses enforcing ``sum(literals) == k``."""
    at_most_k(cnf, literals, k)
    at_least_k(cnf, literals, k)
