"""Pseudo-Boolean linear constraints compiled to CNF via BDDs.

The paper suggests a Pseudo-Boolean solver [17] as one engine for the
satisfiability formulation.  Our CDCL core speaks CNF, so we provide
the classic BDD-based PB-to-CNF compilation (Eén & Sörensson, "Translating
Pseudo-Boolean Constraints into SAT"): a constraint
``sum(a_i * x_i) <= b`` over integer coefficients is turned into a
reduced ordered BDD whose nodes become fresh Tseitin variables.  For
monotone ``<=`` constraints the implication-only encoding is sound.

All rule-placement constraints are actually unit-coefficient, where the
sequential counter of :mod:`repro.sat.card` is preferred; the PB path
covers weighted extensions (e.g. weighted-switch objectives phrased as
constraints for binary-search optimization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from .cnf import CNF

__all__ = ["PBTerm", "pb_le", "pb_ge", "pb_eq"]

# BDD leaves.
_TRUE = "T"
_FALSE = "F"
_NodeRef = Union[str, int]  # leaf sentinel or a CNF literal


@dataclass(frozen=True)
class PBTerm:
    """One ``coefficient * literal`` term of a PB constraint."""

    coeff: int
    literal: int


def _normalize(terms: Sequence[PBTerm], bound: int) -> Tuple[List[PBTerm], int]:
    """Flip negative coefficients onto negated literals.

    ``a*x`` with ``a < 0`` rewrites to ``|a| * (not x) + a`` so the
    bound shifts by ``a``; zero coefficients are dropped and duplicate
    literals merged.
    """
    merged: Dict[int, int] = {}
    for term in terms:
        coeff, lit = term.coeff, term.literal
        if lit == 0:
            raise ValueError("literal 0 is invalid")
        # Canonicalize to positive-literal keys by folding sign into coeff:
        # a * (-x) == -a * x + a  => bound -= a handled via negative branch.
        if lit < 0:
            # a * notx == a - a*x
            bound -= coeff
            coeff = -coeff
            lit = -lit
        merged[lit] = merged.get(lit, 0) + coeff
    normalized: List[PBTerm] = []
    for lit, coeff in merged.items():
        if coeff == 0:
            continue
        if coeff < 0:
            bound -= coeff
            normalized.append(PBTerm(-coeff, -lit))
        else:
            normalized.append(PBTerm(coeff, lit))
    normalized.sort(key=lambda t: -t.coeff)
    return normalized, bound


def _build_bdd(
    cnf: CNF,
    terms: List[PBTerm],
    suffix_sums: List[int],
    index: int,
    bound: int,
    memo: Dict[Tuple[int, int], _NodeRef],
) -> _NodeRef:
    if bound < 0:
        return _FALSE
    if suffix_sums[index] <= bound:
        return _TRUE
    # suffix_sums[index] > bound >= 0 implies index < len(terms).
    key = (index, bound)
    cached = memo.get(key)
    if cached is not None:
        return cached
    term = terms[index]
    hi = _build_bdd(cnf, terms, suffix_sums, index + 1, bound - term.coeff, memo)
    lo = _build_bdd(cnf, terms, suffix_sums, index + 1, bound, memo)
    if hi == lo:
        memo[key] = hi
        return hi
    node = cnf.new_var()
    # Implication-only (monotone) encoding:
    #   node -> (x -> hi) and node -> (!x -> lo)
    if hi == _FALSE:
        cnf.add_clause([-node, -term.literal])
    elif hi != _TRUE:
        cnf.add_clause([-node, -term.literal, hi])
    if lo == _FALSE:
        cnf.add_clause([-node, term.literal])
    elif lo != _TRUE:
        cnf.add_clause([-node, term.literal, lo])
    memo[key] = node
    return node


def pb_le(cnf: CNF, terms: Sequence[PBTerm], bound: int) -> None:
    """Add clauses enforcing ``sum(coeff * lit) <= bound``."""
    normalized, bound = _normalize(terms, bound)
    total = sum(t.coeff for t in normalized)
    if bound < 0:
        cnf.add_clause([])
        return
    if total <= bound:
        return
    suffix = [0] * (len(normalized) + 1)
    for i in range(len(normalized) - 1, -1, -1):
        suffix[i] = suffix[i + 1] + normalized[i].coeff
    root = _build_bdd(cnf, normalized, suffix, 0, bound, {})
    if root == _FALSE:
        cnf.add_clause([])
    elif root != _TRUE:
        cnf.add_clause([root])


def pb_ge(cnf: CNF, terms: Sequence[PBTerm], bound: int) -> None:
    """``sum(coeff * lit) >= bound`` via the complementary <= form."""
    flipped = [PBTerm(t.coeff, -t.literal) for t in terms]
    total = sum(t.coeff for t in terms)
    pb_le(cnf, flipped, total - bound)


def pb_eq(cnf: CNF, terms: Sequence[PBTerm], bound: int) -> None:
    """``sum(coeff * lit) == bound``."""
    pb_le(cnf, terms, bound)
    pb_ge(cnf, terms, bound)
