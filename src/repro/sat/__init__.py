"""SAT substrate: CNF, a from-scratch CDCL solver, and cardinality /
pseudo-Boolean encodings (the paper's Section IV-D engine)."""

from .cnf import CNF
from .cdcl import SatStatus, SatResult, CdclSolver, solve_cnf
from .card import at_most_k, at_least_k, exactly_k
from .pb import PBTerm, pb_le, pb_ge, pb_eq

__all__ = [
    "CNF",
    "SatStatus",
    "SatResult",
    "CdclSolver",
    "solve_cnf",
    "at_most_k",
    "at_least_k",
    "exactly_k",
    "PBTerm",
    "pb_le",
    "pb_ge",
    "pb_eq",
]
