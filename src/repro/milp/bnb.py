"""From-scratch branch-and-bound MILP solver over an LP relaxation.

This backend exists to show the reproduction does not *depend* on any
packaged MILP solver: only an LP oracle (``scipy.optimize.linprog``,
which is plain simplex/IPM) is needed.  It implements:

* best-bound node selection (priority queue on the LP bound),
* most-fractional branching with a simple tie-break on objective
  coefficient magnitude,
* an LP-rounding primal heuristic at every node to find incumbents
  early, and
* incumbent-based pruning with an integrality tolerance.

It is exact -- given enough time it returns OPTIMAL or INFEASIBLE -- but
of course slower than HiGHS; the backend-agreement benchmarks
(``benchmarks/test_ablation_backends.py``) quantify the gap.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from .model import Model, Sense, SolveResult, SolveStatus, VarType

__all__ = ["BranchAndBoundBackend"]

_INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    bound: float
    seq: int
    fixed: Dict[int, Tuple[float, float]] = field(compare=False)


class BranchAndBoundBackend:
    """Exact MILP via branch & bound on the LP relaxation.

    ``clock`` is injectable so the timeout path is deterministically
    testable (the regression tests feed a fake clock that "expires"
    after the first node).
    """

    name = "bnb"

    def __init__(self, time_limit: Optional[float] = None,
                 max_nodes: int = 200_000,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.time_limit = time_limit
        self.max_nodes = max_nodes
        self.clock = clock

    # ------------------------------------------------------------------

    def solve(self, model: Model, time_limit: Optional[float] = None,
              warm_start: Optional[Mapping[int, float]] = None) -> SolveResult:
        started = self.clock()
        limit = time_limit if time_limit is not None else self.time_limit
        n = model.num_variables()
        if n == 0:
            return SolveResult(SolveStatus.OPTIMAL, model.objective.constant, {}, 0.0)

        matrices = self._build_matrices(model)
        int_vars = [
            v.index for v in model.variables if v.vtype is not VarType.CONTINUOUS
        ]

        best_obj = math.inf
        best_x: Optional[np.ndarray] = None
        warm_seeded = False
        if warm_start is not None and model.check_solution(dict(warm_start)):
            # Incumbent seeding: a known-feasible assignment (the
            # previous placement, in warm-session use) becomes the
            # starting incumbent, so pruning bites from node one.
            # Objective is kept in the internal frame (no constant).
            best_x = np.array(
                [float(warm_start.get(i, 0.0)) for i in range(n)]
            )
            best_obj = float(sum(
                coeff * best_x[idx]
                for idx, coeff in model.objective.coeffs.items()
            ))
            warm_seeded = True
        nodes_explored = 0
        seq = itertools.count()

        root = _Node(-math.inf, next(seq), {})
        heap: List[_Node] = [root]

        timed_out = False
        while heap:
            if limit is not None and self.clock() - started > limit:
                timed_out = True
                break
            if nodes_explored >= self.max_nodes:
                break
            node = heapq.heappop(heap)
            if node.bound >= best_obj - 1e-9:
                continue  # cannot improve the incumbent
            nodes_explored += 1

            lp = self._solve_lp(model, matrices, node.fixed)
            if lp is None:
                continue  # LP infeasible: prune
            lp_obj, x = lp
            if lp_obj >= best_obj - 1e-9:
                continue

            frac_var = self._most_fractional(x, int_vars)
            if frac_var is None:
                # Integral LP optimum: new incumbent.
                if lp_obj < best_obj:
                    best_obj, best_x = lp_obj, x
                continue

            # Primal heuristic: round and check feasibility.
            rounded = self._rounding_heuristic(model, x, int_vars)
            if rounded is not None:
                r_obj, r_x = rounded
                if r_obj < best_obj:
                    best_obj, best_x = r_obj, r_x

            val = x[frac_var]
            floor_fix = dict(node.fixed)
            lo, hi = floor_fix.get(
                frac_var,
                (model.variables[frac_var].lb, model.variables[frac_var].ub),
            )
            floor_fix[frac_var] = (lo, math.floor(val))
            ceil_fix = dict(node.fixed)
            ceil_fix[frac_var] = (math.ceil(val), hi)
            for fixed in (floor_fix, ceil_fix):
                lo2, hi2 = fixed[frac_var]
                if lo2 <= hi2:
                    heapq.heappush(heap, _Node(lp_obj, next(seq), fixed))

        elapsed = self.clock() - started
        exhausted = not heap and not timed_out and nodes_explored < self.max_nodes
        stats = {"nodes": float(nodes_explored)}
        if warm_seeded:
            stats["warm_start"] = 1.0
        if heap:
            # Honest dual bound: the best open node (capped by the
            # incumbent, shifted to match the reported objective frame).
            bound = min(min(node.bound for node in heap), best_obj)
            if math.isfinite(bound):
                stats["bound"] = bound + model.objective.constant
        if best_x is None:
            if exhausted:
                return SolveResult(SolveStatus.INFEASIBLE, None, {}, elapsed, stats)
            return SolveResult(SolveStatus.TIME_LIMIT, None, {}, elapsed, stats)
        values = {i: float(round(best_x[i]) if i in set(int_vars) else best_x[i])
                  for i in range(n)}
        objective = best_obj + model.objective.constant
        if exhausted:
            status = SolveStatus.OPTIMAL
        elif timed_out:
            # Wall clock expired: return the incumbent honestly, with
            # the remaining optimality gap in the stats.
            status = SolveStatus.TIME_LIMIT
            if "bound" in stats and objective:
                stats["gap"] = abs(objective - stats["bound"]) / max(
                    abs(objective), 1e-9
                )
        else:
            status = SolveStatus.FEASIBLE  # node budget, not time
        return SolveResult(status, objective, values, elapsed, stats)

    # ------------------------------------------------------------------
    # LP machinery
    # ------------------------------------------------------------------

    def _build_matrices(self, model: Model):
        """Split rows into A_ub x <= b_ub and A_eq x == b_eq (dense;
        instances routed to this backend are small)."""
        n = model.num_variables()
        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        for con in model.all_constraints():
            row = np.zeros(n)
            for idx, coeff in con.expr.coeffs.items():
                row[idx] = coeff
            if con.sense is Sense.LE:
                ub_rows.append(row)
                ub_rhs.append(con.rhs)
            elif con.sense is Sense.GE:
                ub_rows.append(-row)
                ub_rhs.append(-con.rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(con.rhs)
        c = np.zeros(n)
        for idx, coeff in model.objective.coeffs.items():
            c[idx] = coeff
        a_ub = np.vstack(ub_rows) if ub_rows else None
        b_ub = np.array(ub_rhs) if ub_rhs else None
        a_eq = np.vstack(eq_rows) if eq_rows else None
        b_eq = np.array(eq_rhs) if eq_rhs else None
        return c, a_ub, b_ub, a_eq, b_eq

    def _solve_lp(self, model: Model, matrices, fixed) -> Optional[Tuple[float, np.ndarray]]:
        c, a_ub, b_ub, a_eq, b_eq = matrices
        bounds = []
        for var in model.variables:
            lo, hi = fixed.get(var.index, (var.lb, var.ub))
            bounds.append((lo, None if math.isinf(hi) else hi))
        result = linprog(
            c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
            bounds=bounds, method="highs",
        )
        if not result.success:
            return None
        return float(result.fun), np.asarray(result.x)

    # ------------------------------------------------------------------

    @staticmethod
    def _most_fractional(x: np.ndarray, int_vars: List[int]) -> Optional[int]:
        best_idx, best_frac = None, _INT_TOL
        for idx in int_vars:
            frac = abs(x[idx] - round(x[idx]))
            if frac > best_frac:
                best_idx, best_frac = idx, frac
        return best_idx

    def _rounding_heuristic(self, model: Model, x: np.ndarray,
                            int_vars: List[int]) -> Optional[Tuple[float, np.ndarray]]:
        """Round the relaxation and accept only if genuinely feasible."""
        candidate = x.copy()
        for idx in int_vars:
            candidate[idx] = round(candidate[idx])
        values = {i: float(candidate[i]) for i in range(len(candidate))}
        if not model.check_solution(values):
            return None
        obj = sum(
            coeff * values.get(idx, 0.0)
            for idx, coeff in model.objective.coeffs.items()
        )
        return obj, candidate
