"""Brute-force binary MILP solving: the test oracle.

Enumerates every 0/1 assignment of a pure-binary model and returns the
feasible minimum.  Exponential, so it refuses models beyond a small
variable budget; the test suite uses it to validate the HiGHS and
branch-and-bound backends on random instances.
"""

from __future__ import annotations

import time
from typing import Optional

from .model import Model, SolveResult, SolveStatus

__all__ = ["ExhaustiveBackend"]


class ExhaustiveBackend:
    """Exact solver by enumeration; only for tiny pure-binary models."""

    name = "exhaustive"

    def __init__(self, max_vars: int = 24) -> None:
        self.max_vars = max_vars

    def solve(self, model: Model, time_limit: Optional[float] = None) -> SolveResult:
        if not model.is_pure_binary():
            raise ValueError("exhaustive backend handles pure-binary models only")
        n = model.num_variables()
        if n > self.max_vars:
            raise ValueError(
                f"{n} variables exceeds exhaustive budget of {self.max_vars}"
            )
        started = time.perf_counter()
        best_obj: Optional[float] = None
        best_values: dict[int, float] = {}
        checked = 0
        for bits in range(1 << n):
            values = {i: float((bits >> i) & 1) for i in range(n)}
            checked += 1
            if not model.check_solution(values):
                continue
            obj = model.objective.value(values)
            if best_obj is None or obj < best_obj:
                best_obj = obj
                best_values = values
        elapsed = time.perf_counter() - started
        stats = {"assignments": float(checked)}
        if best_obj is None:
            return SolveResult(SolveStatus.INFEASIBLE, None, {}, elapsed, stats)
        return SolveResult(SolveStatus.OPTIMAL, best_obj, best_values, elapsed, stats)
