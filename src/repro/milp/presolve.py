"""Presolve reductions for MILP models.

Placement models contain easy deductions a solver otherwise rediscovers
at every node: variables pinned by equality rows (the incremental
engine's `pin[...]` constraints), rows made redundant by bounds, and
singleton >=1 rows that force a variable.  This presolver applies the
classic reductions to a fixed point:

* **bound fixing** -- ``x == c`` rows and rows like ``sum(S) <= 0`` over
  non-negative binaries fix variables;
* **substitution** -- fixed variables are substituted into all other
  rows and the objective;
* **row cleanup** -- empty rows are checked (infeasible if violated)
  and dropped; rows trivially satisfied by variable bounds are dropped.

The result is a smaller, equivalent model plus the mapping needed to
re-inflate a solution of the reduced model into the original variable
space.  Correctness (same optimum, inflatable solutions) is checked by
randomized tests against the unreduced model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .model import (
    Constraint,
    LinExpr,
    Model,
    Sense,
    SolveResult,
    SolveStatus,
    VarType,
)

__all__ = ["PresolveResult", "presolve", "solve_with_presolve"]


@dataclass
class PresolveResult:
    """A reduced model plus the bookkeeping to map solutions back."""

    model: Optional[Model]                 # None when presolve proved infeasible
    #: original index -> fixed value, for eliminated variables.
    fixed: Dict[int, float] = field(default_factory=dict)
    #: original index -> reduced-model index, for surviving variables.
    kept: Dict[int, int] = field(default_factory=dict)
    #: constant shift to add to the reduced objective.
    objective_shift: float = 0.0
    infeasible: bool = False
    rows_dropped: int = 0

    def inflate(self, reduced_values: Dict[int, float]) -> Dict[int, float]:
        """Translate a reduced-model solution to original indices."""
        values = dict(self.fixed)
        for original, reduced in self.kept.items():
            values[original] = reduced_values.get(reduced, 0.0)
        return values


def _detect_fixings(model: Model, fixed: Dict[int, float]) -> bool:
    """One pass of bound-fixing deductions; returns True on progress."""
    progress = False
    for con in model.all_constraints():
        live = {
            idx: coeff for idx, coeff in con.expr.coeffs.items()
            if idx not in fixed
        }
        shift = sum(
            coeff * fixed[idx] for idx, coeff in con.expr.coeffs.items()
            if idx in fixed
        )
        rhs = con.rhs - shift
        if len(live) == 1:
            (idx,), (coeff,) = zip(*live.items())
            var = model.variables[idx]
            if con.sense is Sense.EQ:
                value = rhs / coeff
                if _valid_value(var, value):
                    fixed[idx] = round(value) if var.vtype is not VarType.CONTINUOUS else value
                    progress = True
                continue
            # sum(coeff*x) <= rhs with binary x: fix when only one value fits.
            if var.vtype is VarType.BINARY:
                ok0 = _row_ok(0.0 * coeff, con.sense, rhs)
                ok1 = _row_ok(1.0 * coeff, con.sense, rhs)
                if ok0 and not ok1:
                    fixed[idx] = 0.0
                    progress = True
                elif ok1 and not ok0:
                    fixed[idx] = 1.0
                    progress = True
        elif live and all(
            model.variables[idx].vtype is VarType.BINARY and coeff > 0
            for idx, coeff in live.items()
        ):
            # All-positive binary rows: <= 0 forces all zero; >= sum
            # forces all one.
            if con.sense is Sense.LE and rhs <= 0:
                if rhs < 0:
                    continue  # handled as infeasible at verify stage
                for idx in live:
                    fixed[idx] = 0.0
                progress = True
            elif con.sense is Sense.GE and rhs >= sum(live.values()):
                for idx in live:
                    fixed[idx] = 1.0
                progress = True
    return progress


def _valid_value(var, value: float) -> bool:
    if value < var.lb - 1e-9 or value > var.ub + 1e-9:
        return False
    if var.vtype is not VarType.CONTINUOUS and abs(value - round(value)) > 1e-9:
        return False
    return True


def _row_ok(lhs: float, sense: Sense, rhs: float) -> bool:
    if sense is Sense.LE:
        return lhs <= rhs + 1e-9
    if sense is Sense.GE:
        return lhs >= rhs - 1e-9
    return abs(lhs - rhs) <= 1e-9


def presolve(model: Model) -> PresolveResult:
    """Reduce a model to a fixed point of the deductions above."""
    fixed: Dict[int, float] = {}
    while _detect_fixings(model, fixed):
        pass

    result = PresolveResult(model=None, fixed=dict(fixed))

    # Rebuild the reduced model over surviving variables.
    reduced = Model(f"{model.name}+presolved")
    for var in model.variables:
        if var.index in fixed:
            continue
        clone = reduced._add_var(var.name, var.vtype, var.lb, var.ub)
        result.kept[var.index] = clone.index

    def translate(expr: LinExpr) -> Tuple[LinExpr, float]:
        out = LinExpr()
        shift = 0.0
        for idx, coeff in expr.coeffs.items():
            if idx in fixed:
                shift += coeff * fixed[idx]
            else:
                out.coeffs[result.kept[idx]] = coeff
        return out, shift

    for con in model.all_constraints():
        expr, shift = translate(con.expr)
        rhs = con.rhs - shift
        if not expr.coeffs:
            if not _row_ok(0.0, con.sense, rhs):
                result.infeasible = True
                return result
            result.rows_dropped += 1
            continue
        # Drop rows implied by bounds (all-binary coefficient analysis).
        lo = sum(min(c, 0.0) for c in expr.coeffs.values())
        hi = sum(max(c, 0.0) for c in expr.coeffs.values())
        if con.sense is Sense.LE and hi <= rhs + 1e-9:
            result.rows_dropped += 1
            continue
        if con.sense is Sense.GE and lo >= rhs - 1e-9:
            result.rows_dropped += 1
            continue
        reduced.add_constraint(Constraint(expr, con.sense, rhs, con.name))

    objective, shift = translate(model.objective)
    objective.constant = model.objective.constant
    result.objective_shift = shift
    reduced.set_objective(objective)
    result.model = reduced
    return result


def solve_with_presolve(model: Model, backend=None, **kwargs) -> SolveResult:
    """Presolve, solve the reduction, and inflate the solution."""
    reduction = presolve(model)
    if reduction.infeasible:
        return SolveResult(SolveStatus.INFEASIBLE)
    assert reduction.model is not None
    inner = reduction.model.solve(backend, **kwargs)
    if not inner.status.has_solution:
        return inner
    values = reduction.inflate(inner.values)
    objective = (
        None if inner.objective is None
        else inner.objective + reduction.objective_shift
    )
    return SolveResult(
        inner.status, objective, values, inner.solve_seconds, dict(inner.stats)
    )
