"""A small mixed-integer linear programming modeling layer.

The paper solves its rule-placement formulation with CPLEX.  CPLEX is
proprietary; this package provides the modeling surface (variables,
linear expressions, constraints, a minimization objective) and pluggable
backends:

* :mod:`repro.milp.scipy_backend` -- HiGHS via ``scipy.optimize.milp``,
  the primary exact solver (our CPLEX stand-in);
* :mod:`repro.milp.bnb` -- a from-scratch branch-and-bound over the LP
  relaxation, demonstrating the full stack is reproducible without any
  bundled MILP solver;
* :mod:`repro.milp.exhaustive` -- brute force over binary assignments,
  the oracle used by the test suite.

All rule-placement constraints are pure 0/1 with integer coefficients,
so the layer only needs binary/integer variables and ``<=``, ``>=``,
``==`` rows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

__all__ = [
    "VarType",
    "Variable",
    "LinExpr",
    "Sense",
    "Constraint",
    "LinearBlock",
    "SolveStatus",
    "SolveResult",
    "Model",
]

Number = Union[int, float]


class VarType(enum.Enum):
    BINARY = "binary"
    INTEGER = "integer"
    CONTINUOUS = "continuous"


@dataclass(eq=False)
class Variable:
    """A decision variable; identity is its ``index`` within the model.

    Deliberately *not* frozen: a frozen dataclass funnels every field
    through ``object.__setattr__`` during ``__init__``, which is the
    dominant cost when the encoder creates tens of thousands of
    variables.  ``eq=False`` keeps identity comparison/hashing (each
    variable exists exactly once per model); nothing mutates variables
    after construction.
    """

    index: int
    name: str
    vtype: VarType
    lb: float
    ub: float

    # -- arithmetic sugar: variables promote to expressions ------------

    def to_expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0})

    def __add__(self, other) -> "LinExpr":
        return self.to_expr() + other

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self.to_expr() - other

    def __rsub__(self, other) -> "LinExpr":
        return (-1.0 * self.to_expr()) + other

    def __mul__(self, coeff: Number) -> "LinExpr":
        return self.to_expr() * coeff

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self.to_expr() * -1.0

    def __le__(self, other) -> "Constraint":  # type: ignore[override]
        return self.to_expr() <= other

    def __ge__(self, other) -> "Constraint":  # type: ignore[override]
        return self.to_expr() >= other

    def eq(self, other) -> "Constraint":
        return self.to_expr().eq(other)


class LinExpr:
    """A linear expression ``sum(coeff_i * x_i) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Optional[Mapping[int, float]] = None,
                 constant: float = 0.0) -> None:
        self.coeffs: Dict[int, float] = dict(coeffs or {})
        self.constant = float(constant)

    @staticmethod
    def _as_expr(value) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value.to_expr()
        if isinstance(value, (int, float)):
            return LinExpr(constant=float(value))
        raise TypeError(f"cannot treat {value!r} as a linear expression")

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.constant)

    def add_term(self, var: Variable, coeff: Number) -> "LinExpr":
        """In-place accumulation; returns self for chaining."""
        if coeff:
            self.coeffs[var.index] = self.coeffs.get(var.index, 0.0) + float(coeff)
            if self.coeffs[var.index] == 0.0:
                del self.coeffs[var.index]
        return self

    # -- arithmetic -----------------------------------------------------

    def __add__(self, other) -> "LinExpr":
        rhs = self._as_expr(other)
        result = self.copy()
        for idx, coeff in rhs.coeffs.items():
            result.coeffs[idx] = result.coeffs.get(idx, 0.0) + coeff
            if result.coeffs[idx] == 0.0:
                del result.coeffs[idx]
        result.constant += rhs.constant
        return result

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (self._as_expr(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, coeff: Number) -> "LinExpr":
        if not isinstance(coeff, (int, float)):
            raise TypeError("expressions can only be scaled by numbers")
        return LinExpr(
            {idx: c * coeff for idx, c in self.coeffs.items() if c * coeff != 0.0},
            self.constant * coeff,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- relational operators build constraints --------------------------

    def __le__(self, other) -> "Constraint":
        return Constraint.build(self, Sense.LE, self._as_expr(other))

    def __ge__(self, other) -> "Constraint":
        return Constraint.build(self, Sense.GE, self._as_expr(other))

    def eq(self, other) -> "Constraint":
        """Equality constraint (named method: ``==`` keeps dataclass
        semantics for tests)."""
        return Constraint.build(self, Sense.EQ, self._as_expr(other))

    # -- evaluation -------------------------------------------------------

    def value(self, assignment: Mapping[int, float]) -> float:
        return self.constant + sum(
            coeff * assignment.get(idx, 0.0) for idx, coeff in self.coeffs.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coeffs.items()))
        if self.constant:
            terms = f"{terms} + {self.constant:g}" if terms else f"{self.constant:g}"
        return terms or "0"


def lin_sum(items: Iterable[Union[Variable, LinExpr]]) -> LinExpr:
    """Efficient sum of many variables/expressions (avoids quadratic
    rebuild that ``sum()`` over immutable adds would cost)."""
    total = LinExpr()
    for item in items:
        if isinstance(item, Variable):
            total.coeffs[item.index] = total.coeffs.get(item.index, 0.0) + 1.0
        else:
            for idx, coeff in item.coeffs.items():
                total.coeffs[idx] = total.coeffs.get(idx, 0.0) + coeff
            total.constant += item.constant
    total.coeffs = {i: c for i, c in total.coeffs.items() if c != 0.0}
    return total


class Sense(enum.Enum):
    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass
class Constraint:
    """A normalized row ``expr (<=|>=|==) rhs`` with ``expr`` constant-free."""

    expr: LinExpr
    sense: Sense
    rhs: float
    name: str = ""

    @classmethod
    def build(cls, lhs: LinExpr, sense: Sense, rhs: LinExpr) -> "Constraint":
        expr = lhs - rhs
        constant = expr.constant
        expr.constant = 0.0
        # `+ 0.0` normalizes -0.0 so rendered bounds read "0", not "-0".
        return cls(expr=expr, sense=sense, rhs=-constant + 0.0)

    def satisfied(self, assignment: Mapping[int, float], tol: float = 1e-6) -> bool:
        lhs = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return lhs <= self.rhs + tol
        if self.sense is Sense.GE:
            return lhs >= self.rhs - tol
        return abs(lhs - self.rhs) <= tol


@dataclass
class LinearBlock:
    """A family of constraint rows in COO-triplet form.

    The hot encoding path (``repro.core.ilp`` with ``bulk=True``) emits
    each constraint family -- dependency, path, capacity -- as three
    parallel arrays plus per-row sense/rhs, instead of allocating one
    :class:`LinExpr` and :class:`Constraint` per row.  The SciPy/HiGHS
    backend consumes the triplets as CSR input directly; every other
    consumer (B&B, LP export, presolve, ``check_solution``) sees the
    rows through :meth:`to_constraints` / :meth:`Model.all_constraints`.

    ``rows`` holds *block-local* row ids in ``[0, num_rows)``.
    """

    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray
    senses: List[Sense]
    rhs: np.ndarray
    name_prefix: str = ""

    @property
    def num_rows(self) -> int:
        return len(self.senses)

    def bounds(self) -> "tuple[np.ndarray, np.ndarray]":
        """Per-row ``(lower, upper)`` bounds in LinearConstraint form."""
        lower = np.full(self.num_rows, -np.inf)
        upper = np.full(self.num_rows, np.inf)
        for r, sense in enumerate(self.senses):
            if sense is Sense.LE:
                upper[r] = self.rhs[r]
            elif sense is Sense.GE:
                lower[r] = self.rhs[r]
            else:
                lower[r] = upper[r] = self.rhs[r]
        return lower, upper

    def to_constraints(self) -> List["Constraint"]:
        """Materialize the rows as ordinary :class:`Constraint` objects
        (the slow-path view for backends that walk rows one by one)."""
        coeffs: List[Dict[int, float]] = [{} for _ in range(self.num_rows)]
        for r, c, v in zip(self.rows.tolist(), self.cols.tolist(),
                           self.data.tolist()):
            coeffs[r][c] = coeffs[r].get(c, 0.0) + v
        prefix = self.name_prefix or "blk"
        return [
            Constraint(
                expr=LinExpr(coeffs[r]),
                sense=self.senses[r],
                rhs=float(self.rhs[r]),
                name=f"{prefix}[{r}]",
            )
            for r in range(self.num_rows)
        ]

    def satisfied(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Vectorized feasibility check of all rows against a dense
        assignment vector."""
        if self.num_rows == 0:
            return True
        lhs = np.bincount(
            self.rows, weights=self.data * x[self.cols], minlength=self.num_rows
        )
        lower, upper = self.bounds()
        return bool(np.all(lhs <= upper + tol) and np.all(lhs >= lower - tol))


class SolveStatus(enum.Enum):
    OPTIMAL = "optimal"
    FEASIBLE = "feasible"          # incumbent found, stopped on a work budget
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"      # wall clock expired; incumbent may be attached
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class SolveResult:
    """Outcome of a backend solve."""

    status: SolveStatus
    objective: Optional[float] = None
    values: Dict[int, float] = field(default_factory=dict)
    solve_seconds: float = 0.0
    #: Backend-specific counters (nodes explored, LP iterations, ...).
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def has_solution(self) -> bool:
        """True when the result carries a usable assignment -- including
        the best incumbent of a solve that hit its time limit."""
        return self.status.has_solution or (
            self.status is SolveStatus.TIME_LIMIT and self.objective is not None
        )

    def value(self, var: Variable) -> float:
        return self.values.get(var.index, 0.0)

    def int_value(self, var: Variable) -> int:
        return int(round(self.value(var)))

    def is_one(self, var: Variable, tol: float = 1e-4) -> bool:
        return self.value(var) > 1.0 - tol


class Model:
    """A minimization MILP under construction."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        #: Bulk constraint families (see :class:`LinearBlock`); rows
        #: live here *instead of* in ``constraints``, never in both.
        self.blocks: List[LinearBlock] = []
        self.objective: LinExpr = LinExpr()
        self._names: Dict[str, Variable] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _add_var(self, name: str, vtype: VarType, lb: float, ub: float) -> Variable:
        if not name:
            name = f"x{len(self.variables)}"
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        var = Variable(len(self.variables), name, vtype, lb, ub)
        self.variables.append(var)
        self._names[name] = var
        return var

    def add_binary(self, name: str = "") -> Variable:
        return self._add_var(name, VarType.BINARY, 0.0, 1.0)

    def add_binaries(self, names: Iterable[str]) -> List[Variable]:
        """Create many binary variables in one call.

        Semantically identical to repeated :meth:`add_binary`, but the
        bookkeeping (index assignment, name registration) runs batched
        -- the encoding hot path creates tens of thousands of placement
        variables and per-call overhead dominates otherwise.
        """
        names = list(names)
        start = len(self.variables)
        new = [
            Variable(start + offset, name, VarType.BINARY, 0.0, 1.0)
            for offset, name in enumerate(names)
        ]
        if len(set(names)) != len(new) or not self._names.keys().isdisjoint(names):
            raise ValueError("duplicate variable name in batch")
        self.variables.extend(new)
        self._names.update(zip(names, new))
        return new

    def add_integer(self, name: str = "", lb: float = 0.0,
                    ub: float = float("inf")) -> Variable:
        return self._add_var(name, VarType.INTEGER, lb, ub)

    def add_continuous(self, name: str = "", lb: float = 0.0,
                       ub: float = float("inf")) -> Variable:
        return self._add_var(name, VarType.CONTINUOUS, lb, ub)

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def add_linear_block(
        self,
        rows: Sequence[int],
        cols: Sequence[int],
        data: Sequence[float],
        senses: Union[Sense, Sequence[Sense]],
        rhs: Sequence[float],
        name_prefix: str = "",
    ) -> LinearBlock:
        """Append a whole constraint family as COO triplets.

        ``rows`` are block-local ids starting at 0; ``senses`` is one
        :class:`Sense` applied to every row or a per-row sequence.  The
        triplets are handed to the sparse backend unchanged, skipping
        per-row :class:`LinExpr`/:class:`Constraint` allocation on the
        encoding hot path.
        """
        rhs_arr = np.asarray(rhs, dtype=np.float64)
        if isinstance(senses, Sense):
            sense_list = [senses] * len(rhs_arr)
        else:
            sense_list = list(senses)
        if len(sense_list) != len(rhs_arr):
            raise ValueError(
                f"{len(sense_list)} senses for {len(rhs_arr)} rows"
            )
        rows_arr = np.asarray(rows, dtype=np.int64)
        cols_arr = np.asarray(cols, dtype=np.int64)
        data_arr = np.asarray(data, dtype=np.float64)
        if not (len(rows_arr) == len(cols_arr) == len(data_arr)):
            raise ValueError("rows/cols/data must be parallel arrays")
        if len(rows_arr) and (rows_arr.min() < 0 or rows_arr.max() >= len(rhs_arr)):
            raise ValueError("block row id outside [0, num_rows)")
        if len(cols_arr) and (cols_arr.min() < 0
                              or cols_arr.max() >= len(self.variables)):
            raise ValueError("block column references unknown variable")
        block = LinearBlock(rows_arr, cols_arr, data_arr, sense_list,
                            rhs_arr, name_prefix)
        self.blocks.append(block)
        return block

    def set_objective(self, expr: Union[LinExpr, Variable]) -> None:
        """Set the minimization objective."""
        self.objective = LinExpr._as_expr(expr).copy()

    def var_by_name(self, name: str) -> Variable:
        return self._names[name]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def num_variables(self) -> int:
        return len(self.variables)

    def num_constraints(self) -> int:
        return len(self.constraints) + sum(b.num_rows for b in self.blocks)

    def all_constraints(self) -> List[Constraint]:
        """Every row as a :class:`Constraint`: the operator-API rows
        followed by materialized block rows.  Backends that walk rows
        individually (B&B, LP export, presolve, the exhaustive oracle)
        use this; the sparse backend reads ``blocks`` directly."""
        if not self.blocks:
            return self.constraints
        rows = list(self.constraints)
        for block in self.blocks:
            rows.extend(block.to_constraints())
        return rows

    def is_pure_binary(self) -> bool:
        return all(v.vtype is VarType.BINARY for v in self.variables)

    def check_solution(self, values: Mapping[int, float], tol: float = 1e-6) -> bool:
        """Feasibility check of a full assignment against all rows."""
        for var in self.variables:
            val = values.get(var.index, 0.0)
            if val < var.lb - tol or val > var.ub + tol:
                return False
            if var.vtype is not VarType.CONTINUOUS and abs(val - round(val)) > tol:
                return False
        if not all(c.satisfied(values, tol) for c in self.constraints):
            return False
        if self.blocks:
            x = np.zeros(len(self.variables))
            for idx, val in values.items():
                if 0 <= idx < len(x):
                    x[idx] = val
            if not all(block.satisfied(x, tol) for block in self.blocks):
                return False
        return True

    def solve(self, backend: Optional["object"] = None, **kwargs) -> SolveResult:
        """Solve with the given backend (default: SciPy/HiGHS)."""
        if backend is None:
            from .scipy_backend import ScipyMilpBackend

            backend = ScipyMilpBackend()
        return backend.solve(self, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Model({self.name!r}, {self.num_variables()} vars, "
            f"{self.num_constraints()} constraints)"
        )
