"""A small mixed-integer linear programming modeling layer.

The paper solves its rule-placement formulation with CPLEX.  CPLEX is
proprietary; this package provides the modeling surface (variables,
linear expressions, constraints, a minimization objective) and pluggable
backends:

* :mod:`repro.milp.scipy_backend` -- HiGHS via ``scipy.optimize.milp``,
  the primary exact solver (our CPLEX stand-in);
* :mod:`repro.milp.bnb` -- a from-scratch branch-and-bound over the LP
  relaxation, demonstrating the full stack is reproducible without any
  bundled MILP solver;
* :mod:`repro.milp.exhaustive` -- brute force over binary assignments,
  the oracle used by the test suite.

All rule-placement constraints are pure 0/1 with integer coefficients,
so the layer only needs binary/integer variables and ``<=``, ``>=``,
``==`` rows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Union

__all__ = [
    "VarType",
    "Variable",
    "LinExpr",
    "Sense",
    "Constraint",
    "SolveStatus",
    "SolveResult",
    "Model",
]

Number = Union[int, float]


class VarType(enum.Enum):
    BINARY = "binary"
    INTEGER = "integer"
    CONTINUOUS = "continuous"


@dataclass(frozen=True)
class Variable:
    """A decision variable; identity is its ``index`` within the model."""

    index: int
    name: str
    vtype: VarType
    lb: float
    ub: float

    # -- arithmetic sugar: variables promote to expressions ------------

    def to_expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0})

    def __add__(self, other) -> "LinExpr":
        return self.to_expr() + other

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self.to_expr() - other

    def __rsub__(self, other) -> "LinExpr":
        return (-1.0 * self.to_expr()) + other

    def __mul__(self, coeff: Number) -> "LinExpr":
        return self.to_expr() * coeff

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self.to_expr() * -1.0

    def __le__(self, other) -> "Constraint":  # type: ignore[override]
        return self.to_expr() <= other

    def __ge__(self, other) -> "Constraint":  # type: ignore[override]
        return self.to_expr() >= other

    def eq(self, other) -> "Constraint":
        return self.to_expr().eq(other)


class LinExpr:
    """A linear expression ``sum(coeff_i * x_i) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Optional[Mapping[int, float]] = None,
                 constant: float = 0.0) -> None:
        self.coeffs: Dict[int, float] = dict(coeffs or {})
        self.constant = float(constant)

    @staticmethod
    def _as_expr(value) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value.to_expr()
        if isinstance(value, (int, float)):
            return LinExpr(constant=float(value))
        raise TypeError(f"cannot treat {value!r} as a linear expression")

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.constant)

    def add_term(self, var: Variable, coeff: Number) -> "LinExpr":
        """In-place accumulation; returns self for chaining."""
        if coeff:
            self.coeffs[var.index] = self.coeffs.get(var.index, 0.0) + float(coeff)
            if self.coeffs[var.index] == 0.0:
                del self.coeffs[var.index]
        return self

    # -- arithmetic -----------------------------------------------------

    def __add__(self, other) -> "LinExpr":
        rhs = self._as_expr(other)
        result = self.copy()
        for idx, coeff in rhs.coeffs.items():
            result.coeffs[idx] = result.coeffs.get(idx, 0.0) + coeff
            if result.coeffs[idx] == 0.0:
                del result.coeffs[idx]
        result.constant += rhs.constant
        return result

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (self._as_expr(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, coeff: Number) -> "LinExpr":
        if not isinstance(coeff, (int, float)):
            raise TypeError("expressions can only be scaled by numbers")
        return LinExpr(
            {idx: c * coeff for idx, c in self.coeffs.items() if c * coeff != 0.0},
            self.constant * coeff,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- relational operators build constraints --------------------------

    def __le__(self, other) -> "Constraint":
        return Constraint.build(self, Sense.LE, self._as_expr(other))

    def __ge__(self, other) -> "Constraint":
        return Constraint.build(self, Sense.GE, self._as_expr(other))

    def eq(self, other) -> "Constraint":
        """Equality constraint (named method: ``==`` keeps dataclass
        semantics for tests)."""
        return Constraint.build(self, Sense.EQ, self._as_expr(other))

    # -- evaluation -------------------------------------------------------

    def value(self, assignment: Mapping[int, float]) -> float:
        return self.constant + sum(
            coeff * assignment.get(idx, 0.0) for idx, coeff in self.coeffs.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coeffs.items()))
        if self.constant:
            terms = f"{terms} + {self.constant:g}" if terms else f"{self.constant:g}"
        return terms or "0"


def lin_sum(items: Iterable[Union[Variable, LinExpr]]) -> LinExpr:
    """Efficient sum of many variables/expressions (avoids quadratic
    rebuild that ``sum()`` over immutable adds would cost)."""
    total = LinExpr()
    for item in items:
        if isinstance(item, Variable):
            total.coeffs[item.index] = total.coeffs.get(item.index, 0.0) + 1.0
        else:
            for idx, coeff in item.coeffs.items():
                total.coeffs[idx] = total.coeffs.get(idx, 0.0) + coeff
            total.constant += item.constant
    total.coeffs = {i: c for i, c in total.coeffs.items() if c != 0.0}
    return total


class Sense(enum.Enum):
    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass
class Constraint:
    """A normalized row ``expr (<=|>=|==) rhs`` with ``expr`` constant-free."""

    expr: LinExpr
    sense: Sense
    rhs: float
    name: str = ""

    @classmethod
    def build(cls, lhs: LinExpr, sense: Sense, rhs: LinExpr) -> "Constraint":
        expr = lhs - rhs
        constant = expr.constant
        expr.constant = 0.0
        # `+ 0.0` normalizes -0.0 so rendered bounds read "0", not "-0".
        return cls(expr=expr, sense=sense, rhs=-constant + 0.0)

    def satisfied(self, assignment: Mapping[int, float], tol: float = 1e-6) -> bool:
        lhs = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return lhs <= self.rhs + tol
        if self.sense is Sense.GE:
            return lhs >= self.rhs - tol
        return abs(lhs - self.rhs) <= tol


class SolveStatus(enum.Enum):
    OPTIMAL = "optimal"
    FEASIBLE = "feasible"          # incumbent found, stopped on a work budget
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"      # wall clock expired; incumbent may be attached
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class SolveResult:
    """Outcome of a backend solve."""

    status: SolveStatus
    objective: Optional[float] = None
    values: Dict[int, float] = field(default_factory=dict)
    solve_seconds: float = 0.0
    #: Backend-specific counters (nodes explored, LP iterations, ...).
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def has_solution(self) -> bool:
        """True when the result carries a usable assignment -- including
        the best incumbent of a solve that hit its time limit."""
        return self.status.has_solution or (
            self.status is SolveStatus.TIME_LIMIT and self.objective is not None
        )

    def value(self, var: Variable) -> float:
        return self.values.get(var.index, 0.0)

    def int_value(self, var: Variable) -> int:
        return int(round(self.value(var)))

    def is_one(self, var: Variable, tol: float = 1e-4) -> bool:
        return self.value(var) > 1.0 - tol


class Model:
    """A minimization MILP under construction."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self._names: Dict[str, Variable] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _add_var(self, name: str, vtype: VarType, lb: float, ub: float) -> Variable:
        if not name:
            name = f"x{len(self.variables)}"
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        var = Variable(len(self.variables), name, vtype, lb, ub)
        self.variables.append(var)
        self._names[name] = var
        return var

    def add_binary(self, name: str = "") -> Variable:
        return self._add_var(name, VarType.BINARY, 0.0, 1.0)

    def add_integer(self, name: str = "", lb: float = 0.0,
                    ub: float = float("inf")) -> Variable:
        return self._add_var(name, VarType.INTEGER, lb, ub)

    def add_continuous(self, name: str = "", lb: float = 0.0,
                       ub: float = float("inf")) -> Variable:
        return self._add_var(name, VarType.CONTINUOUS, lb, ub)

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expr: Union[LinExpr, Variable]) -> None:
        """Set the minimization objective."""
        self.objective = LinExpr._as_expr(expr).copy()

    def var_by_name(self, name: str) -> Variable:
        return self._names[name]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def num_variables(self) -> int:
        return len(self.variables)

    def num_constraints(self) -> int:
        return len(self.constraints)

    def is_pure_binary(self) -> bool:
        return all(v.vtype is VarType.BINARY for v in self.variables)

    def check_solution(self, values: Mapping[int, float], tol: float = 1e-6) -> bool:
        """Feasibility check of a full assignment against all rows."""
        for var in self.variables:
            val = values.get(var.index, 0.0)
            if val < var.lb - tol or val > var.ub + tol:
                return False
            if var.vtype is not VarType.CONTINUOUS and abs(val - round(val)) > tol:
                return False
        return all(c.satisfied(values, tol) for c in self.constraints)

    def solve(self, backend: Optional["object"] = None, **kwargs) -> SolveResult:
        """Solve with the given backend (default: SciPy/HiGHS)."""
        if backend is None:
            from .scipy_backend import ScipyMilpBackend

            backend = ScipyMilpBackend()
        return backend.solve(self, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Model({self.name!r}, {self.num_variables()} vars, "
            f"{self.num_constraints()} constraints)"
        )
