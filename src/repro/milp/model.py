"""A small mixed-integer linear programming modeling layer.

The paper solves its rule-placement formulation with CPLEX.  CPLEX is
proprietary; this package provides the modeling surface (variables,
linear expressions, constraints, a minimization objective) and pluggable
backends:

* :mod:`repro.milp.scipy_backend` -- HiGHS via ``scipy.optimize.milp``,
  the primary exact solver (our CPLEX stand-in);
* :mod:`repro.milp.bnb` -- a from-scratch branch-and-bound over the LP
  relaxation, demonstrating the full stack is reproducible without any
  bundled MILP solver;
* :mod:`repro.milp.exhaustive` -- brute force over binary assignments,
  the oracle used by the test suite.

All rule-placement constraints are pure 0/1 with integer coefficients,
so the layer only needs binary/integer variables and ``<=``, ``>=``,
``==`` rows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import (
    Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union,
)

import numpy as np

__all__ = [
    "VarType",
    "Variable",
    "LinExpr",
    "Sense",
    "Constraint",
    "LinearBlock",
    "SolveStatus",
    "SolveResult",
    "Model",
]

Number = Union[int, float]


class VarType(enum.Enum):
    BINARY = "binary"
    INTEGER = "integer"
    CONTINUOUS = "continuous"


@dataclass(eq=False)
class Variable:
    """A decision variable; identity is its ``index`` within the model.

    Deliberately *not* frozen: a frozen dataclass funnels every field
    through ``object.__setattr__`` during ``__init__``, which is the
    dominant cost when the encoder creates tens of thousands of
    variables.  ``eq=False`` keeps identity comparison/hashing (each
    variable exists exactly once per model); nothing mutates variables
    after construction.
    """

    index: int
    name: str
    vtype: VarType
    lb: float
    ub: float

    # -- arithmetic sugar: variables promote to expressions ------------

    def to_expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0})

    def __add__(self, other) -> "LinExpr":
        return self.to_expr() + other

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self.to_expr() - other

    def __rsub__(self, other) -> "LinExpr":
        return (-1.0 * self.to_expr()) + other

    def __mul__(self, coeff: Number) -> "LinExpr":
        return self.to_expr() * coeff

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self.to_expr() * -1.0

    def __le__(self, other) -> "Constraint":  # type: ignore[override]
        return self.to_expr() <= other

    def __ge__(self, other) -> "Constraint":  # type: ignore[override]
        return self.to_expr() >= other

    def eq(self, other) -> "Constraint":
        return self.to_expr().eq(other)


class LinExpr:
    """A linear expression ``sum(coeff_i * x_i) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Optional[Mapping[int, float]] = None,
                 constant: float = 0.0) -> None:
        self.coeffs: Dict[int, float] = dict(coeffs or {})
        self.constant = float(constant)

    @staticmethod
    def _as_expr(value) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value.to_expr()
        if isinstance(value, (int, float)):
            return LinExpr(constant=float(value))
        raise TypeError(f"cannot treat {value!r} as a linear expression")

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.constant)

    def add_term(self, var: Variable, coeff: Number) -> "LinExpr":
        """In-place accumulation; returns self for chaining."""
        if coeff:
            self.coeffs[var.index] = self.coeffs.get(var.index, 0.0) + float(coeff)
            if self.coeffs[var.index] == 0.0:
                del self.coeffs[var.index]
        return self

    # -- arithmetic -----------------------------------------------------

    def __add__(self, other) -> "LinExpr":
        rhs = self._as_expr(other)
        result = self.copy()
        for idx, coeff in rhs.coeffs.items():
            result.coeffs[idx] = result.coeffs.get(idx, 0.0) + coeff
            if result.coeffs[idx] == 0.0:
                del result.coeffs[idx]
        result.constant += rhs.constant
        return result

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (self._as_expr(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, coeff: Number) -> "LinExpr":
        if not isinstance(coeff, (int, float)):
            raise TypeError("expressions can only be scaled by numbers")
        return LinExpr(
            {idx: c * coeff for idx, c in self.coeffs.items() if c * coeff != 0.0},
            self.constant * coeff,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- relational operators build constraints --------------------------

    def __le__(self, other) -> "Constraint":
        return Constraint.build(self, Sense.LE, self._as_expr(other))

    def __ge__(self, other) -> "Constraint":
        return Constraint.build(self, Sense.GE, self._as_expr(other))

    def eq(self, other) -> "Constraint":
        """Equality constraint (named method: ``==`` keeps dataclass
        semantics for tests)."""
        return Constraint.build(self, Sense.EQ, self._as_expr(other))

    # -- evaluation -------------------------------------------------------

    def value(self, assignment: Mapping[int, float]) -> float:
        return self.constant + sum(
            coeff * assignment.get(idx, 0.0) for idx, coeff in self.coeffs.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coeffs.items()))
        if self.constant:
            terms = f"{terms} + {self.constant:g}" if terms else f"{self.constant:g}"
        return terms or "0"


def lin_sum(items: Iterable[Union[Variable, LinExpr]]) -> LinExpr:
    """Efficient sum of many variables/expressions (avoids quadratic
    rebuild that ``sum()`` over immutable adds would cost)."""
    total = LinExpr()
    for item in items:
        if isinstance(item, Variable):
            total.coeffs[item.index] = total.coeffs.get(item.index, 0.0) + 1.0
        else:
            for idx, coeff in item.coeffs.items():
                total.coeffs[idx] = total.coeffs.get(idx, 0.0) + coeff
            total.constant += item.constant
    total.coeffs = {i: c for i, c in total.coeffs.items() if c != 0.0}
    return total


class Sense(enum.Enum):
    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass
class Constraint:
    """A normalized row ``expr (<=|>=|==) rhs`` with ``expr`` constant-free."""

    expr: LinExpr
    sense: Sense
    rhs: float
    name: str = ""

    @classmethod
    def build(cls, lhs: LinExpr, sense: Sense, rhs: LinExpr) -> "Constraint":
        expr = lhs - rhs
        constant = expr.constant
        expr.constant = 0.0
        # `+ 0.0` normalizes -0.0 so rendered bounds read "0", not "-0".
        return cls(expr=expr, sense=sense, rhs=-constant + 0.0)

    def satisfied(self, assignment: Mapping[int, float], tol: float = 1e-6) -> bool:
        lhs = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return lhs <= self.rhs + tol
        if self.sense is Sense.GE:
            return lhs >= self.rhs - tol
        return abs(lhs - self.rhs) <= tol


@dataclass
class LinearBlock:
    """A family of constraint rows in COO-triplet form.

    The hot encoding path (``repro.core.ilp`` with ``bulk=True``) emits
    each constraint family -- dependency, path, capacity -- as three
    parallel arrays plus per-row sense/rhs, instead of allocating one
    :class:`LinExpr` and :class:`Constraint` per row.  The SciPy/HiGHS
    backend consumes the triplets as CSR input directly; every other
    consumer (B&B, LP export, presolve, ``check_solution``) sees the
    rows through :meth:`to_constraints` / :meth:`Model.all_constraints`.

    ``rows`` holds *block-local* row ids in ``[0, num_rows)``.
    """

    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray
    senses: List[Sense]
    rhs: np.ndarray
    name_prefix: str = ""

    @property
    def num_rows(self) -> int:
        return len(self.senses)

    def bounds(self) -> "tuple[np.ndarray, np.ndarray]":
        """Per-row ``(lower, upper)`` bounds in LinearConstraint form."""
        lower = np.full(self.num_rows, -np.inf)
        upper = np.full(self.num_rows, np.inf)
        for r, sense in enumerate(self.senses):
            if sense is Sense.LE:
                upper[r] = self.rhs[r]
            elif sense is Sense.GE:
                lower[r] = self.rhs[r]
            else:
                lower[r] = upper[r] = self.rhs[r]
        return lower, upper

    def to_constraints(self) -> List["Constraint"]:
        """Materialize the rows as ordinary :class:`Constraint` objects
        (the slow-path view for backends that walk rows one by one)."""
        coeffs: List[Dict[int, float]] = [{} for _ in range(self.num_rows)]
        for r, c, v in zip(self.rows.tolist(), self.cols.tolist(),
                           self.data.tolist()):
            coeffs[r][c] = coeffs[r].get(c, 0.0) + v
        prefix = self.name_prefix or "blk"
        return [
            Constraint(
                expr=LinExpr(coeffs[r]),
                sense=self.senses[r],
                rhs=float(self.rhs[r]),
                name=f"{prefix}[{r}]",
            )
            for r in range(self.num_rows)
        ]

    def satisfied(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Vectorized feasibility check of all rows against a dense
        assignment vector."""
        if self.num_rows == 0:
            return True
        lhs = np.bincount(
            self.rows, weights=self.data * x[self.cols], minlength=self.num_rows
        )
        lower, upper = self.bounds()
        return bool(np.all(lhs <= upper + tol) and np.all(lhs >= lower - tol))


class SolveStatus(enum.Enum):
    OPTIMAL = "optimal"
    FEASIBLE = "feasible"          # incumbent found, stopped on a work budget
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"      # wall clock expired; incumbent may be attached
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class SolveResult:
    """Outcome of a backend solve."""

    status: SolveStatus
    objective: Optional[float] = None
    values: Dict[int, float] = field(default_factory=dict)
    solve_seconds: float = 0.0
    #: Backend-specific counters (nodes explored, LP iterations, ...).
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def has_solution(self) -> bool:
        """True when the result carries a usable assignment -- including
        the best incumbent of a solve that hit its time limit."""
        return self.status.has_solution or (
            self.status is SolveStatus.TIME_LIMIT and self.objective is not None
        )

    def value(self, var: Variable) -> float:
        return self.values.get(var.index, 0.0)

    def int_value(self, var: Variable) -> int:
        return int(round(self.value(var)))

    def is_one(self, var: Variable, tol: float = 1e-4) -> bool:
        return self.value(var) > 1.0 - tol


class Model:
    """A minimization MILP under construction."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        #: Bulk constraint families (see :class:`LinearBlock`); rows
        #: live here *instead of* in ``constraints``, never in both.
        self.blocks: List[LinearBlock] = []
        self.objective: LinExpr = LinExpr()
        self._names: Dict[str, Variable] = {}
        #: Column indices retired via :meth:`retire_variable` and
        #: available for reuse (see :meth:`_add_var`).  The set is
        #: authoritative; the list is a reuse-order stack that may hold
        #: stale entries (restored columns), skipped lazily on pop --
        #: retire/restore stay O(1) even with thousands of retired
        #: columns per warm delta.
        self._free: List[int] = []
        self._free_set: Set[int] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _add_var(self, name: str, vtype: VarType, lb: float, ub: float) -> Variable:
        if not name:
            name = f"x{len(self.variables)}"
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        index = None
        while self._free:
            candidate = self._free.pop()
            if candidate in self._free_set:
                index = candidate
                break
        if index is not None:
            # Column reuse: a retired index is recycled for the new
            # variable.  The caller must have scrubbed the column
            # (:meth:`scrub_column`) -- stale coefficients would
            # otherwise constrain the recycled variable.
            self._free_set.discard(index)
            old = self.variables[index]
            self._names.pop(old.name, None)
            var = Variable(index, name, vtype, lb, ub)
            self.variables[index] = var
        else:
            var = Variable(len(self.variables), name, vtype, lb, ub)
            self.variables.append(var)
        self._names[name] = var
        return var

    def add_binary(self, name: str = "") -> Variable:
        return self._add_var(name, VarType.BINARY, 0.0, 1.0)

    def add_binaries(self, names: Iterable[str],
                     fresh: bool = False) -> List[Variable]:
        """Create many binary variables in one call.

        Semantically identical to repeated :meth:`add_binary`, but the
        bookkeeping (index assignment, name registration) runs batched
        -- the encoding hot path creates tens of thousands of placement
        variables and per-call overhead dominates otherwise.

        ``fresh=True`` guarantees brand-new columns even when the free
        list is non-empty -- required by callers (warm sessions) whose
        saved templates still reference retired columns by index.
        """
        names = list(names)
        if self._free_set and not fresh:
            # Retired columns get recycled first; the batched fast path
            # below assumes contiguous fresh indices.
            return [self._add_var(n, VarType.BINARY, 0.0, 1.0) for n in names]
        start = len(self.variables)
        new = [
            Variable(start + offset, name, VarType.BINARY, 0.0, 1.0)
            for offset, name in enumerate(names)
        ]
        if len(set(names)) != len(new) or not self._names.keys().isdisjoint(names):
            raise ValueError("duplicate variable name in batch")
        self.variables.extend(new)
        self._names.update(zip(names, new))
        return new

    def add_integer(self, name: str = "", lb: float = 0.0,
                    ub: float = float("inf")) -> Variable:
        return self._add_var(name, VarType.INTEGER, lb, ub)

    def add_continuous(self, name: str = "", lb: float = 0.0,
                       ub: float = float("inf")) -> Variable:
        return self._add_var(name, VarType.CONTINUOUS, lb, ub)

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def add_linear_block(
        self,
        rows: Sequence[int],
        cols: Sequence[int],
        data: Sequence[float],
        senses: Union[Sense, Sequence[Sense]],
        rhs: Sequence[float],
        name_prefix: str = "",
    ) -> LinearBlock:
        """Append a whole constraint family as COO triplets.

        ``rows`` are block-local ids starting at 0; ``senses`` is one
        :class:`Sense` applied to every row or a per-row sequence.  The
        triplets are handed to the sparse backend unchanged, skipping
        per-row :class:`LinExpr`/:class:`Constraint` allocation on the
        encoding hot path.
        """
        rhs_arr = np.asarray(rhs, dtype=np.float64)
        if isinstance(senses, Sense):
            sense_list = [senses] * len(rhs_arr)
        else:
            sense_list = list(senses)
        if len(sense_list) != len(rhs_arr):
            raise ValueError(
                f"{len(sense_list)} senses for {len(rhs_arr)} rows"
            )
        rows_arr = np.asarray(rows, dtype=np.int64)
        cols_arr = np.asarray(cols, dtype=np.int64)
        data_arr = np.asarray(data, dtype=np.float64)
        if not (len(rows_arr) == len(cols_arr) == len(data_arr)):
            raise ValueError("rows/cols/data must be parallel arrays")
        if len(rows_arr) and (rows_arr.min() < 0 or rows_arr.max() >= len(rhs_arr)):
            raise ValueError("block row id outside [0, num_rows)")
        if len(cols_arr) and (cols_arr.min() < 0
                              or cols_arr.max() >= len(self.variables)):
            raise ValueError("block column references unknown variable")
        block = LinearBlock(rows_arr, cols_arr, data_arr, sense_list,
                            rhs_arr, name_prefix)
        self.blocks.append(block)
        return block

    # ------------------------------------------------------------------
    # In-place patching (warm-start sessions)
    # ------------------------------------------------------------------
    #
    # A persistent solver session evolves one live model across many
    # re-solves instead of re-encoding per request: right-hand sides and
    # variable bounds are patched, constraint rows are appended to or
    # replace a block wholesale, and columns are retired to a free list
    # and recycled.  Every method below preserves the invariant that the
    # patched model's canonical CSR form (:meth:`canonical_csr`) equals
    # the model one would build from scratch with the patched content --
    # the property the ``tests/milp/test_model_patch`` suite holds it to.

    def _block(self, block: Union[int, LinearBlock]) -> LinearBlock:
        if isinstance(block, LinearBlock):
            return block
        return self.blocks[block]

    def set_var_bounds(self, index: int, lb: float, ub: float) -> None:
        """Patch one variable's bounds in place (bound tightening).

        Tightening to an implied bound (e.g. ``ub=0`` for a binary on a
        switch with zero spare capacity) preserves the feasible set;
        the caller owns that argument -- the model just records it.
        """
        if lb > ub:
            raise ValueError(f"lb {lb} > ub {ub} for variable {index}")
        var = self.variables[index]
        var.lb = float(lb)
        var.ub = float(ub)

    def retire_variable(self, index: int) -> None:
        """Fix a variable to zero and put its column on the free list.

        The column's coefficients stay in place (a zero-fixed variable
        contributes nothing); recycling the index through
        :meth:`_add_var` requires a prior :meth:`scrub_column` so stale
        coefficients cannot constrain the new variable.
        """
        var = self.variables[index]
        var.lb = 0.0
        var.ub = 0.0
        if index not in self._free_set:
            self._free_set.add(index)
            self._free.append(index)

    def retire_variables(self, indices: Iterable[int]) -> None:
        """Bulk :meth:`retire_variable`.

        The warm-session retarget path flips thousands of columns per
        delta; one call with hoisted lookups keeps that linear in the
        flip count with a small constant.
        """
        variables = self.variables
        free_set = self._free_set
        push = self._free.append
        for index in indices:
            var = variables[index]
            var.lb = 0.0
            var.ub = 0.0
            if index not in free_set:
                free_set.add(index)
                push(index)

    def restore_variables(self, indices: Iterable[int], lb: float = 0.0,
                          ub: float = 1.0) -> None:
        """Bulk :meth:`restore_variable` with shared bounds."""
        if lb > ub:
            raise ValueError(f"lb {lb} > ub {ub}")
        lb, ub = float(lb), float(ub)
        variables = self.variables
        discard = self._free_set.discard
        for index in indices:
            var = variables[index]
            var.lb = lb
            var.ub = ub
            discard(index)

    def restore_variable(self, index: int, lb: float = 0.0,
                         ub: float = 1.0) -> None:
        """Reactivate a retired variable with the given bounds.

        The inverse of :meth:`retire_variable` for the same logical
        column: its coefficient entries were never removed, so
        restoring the bounds fully re-arms the original constraints.
        """
        self.set_var_bounds(index, lb, ub)
        # The stack entry (if any) goes stale and is skipped on pop.
        self._free_set.discard(index)

    def num_retired(self) -> int:
        return len(self._free_set)

    def scrub_column(self, index: int) -> None:
        """Zero every block coefficient of one column.

        Run before recycling a retired index for an unrelated variable;
        canonicalization drops the explicit zeros, so a scrubbed model
        matches a from-scratch build without the column's old entries.
        """
        for block in self.blocks:
            mask = block.cols == index
            if mask.any():
                block.data = np.where(mask, 0.0, block.data)
        if self.objective.coeffs.pop(index, None) is not None:
            pass

    def patch_linear_block(
        self,
        block: Union[int, LinearBlock],
        rows: Sequence[int],
        cols: Sequence[int],
        data: Sequence[float],
    ) -> LinearBlock:
        """Coefficient patch: set entries ``(row, col) -> value``.

        Any existing entries at a patched ``(row, col)`` position are
        replaced (not accumulated); new positions are appended.  Zero
        values effectively delete the entry -- canonical CSR drops
        explicit zeros, so patching to zero equals never emitting it.
        """
        target = self._block(block)
        rows_arr = np.asarray(rows, dtype=np.int64)
        cols_arr = np.asarray(cols, dtype=np.int64)
        data_arr = np.asarray(data, dtype=np.float64)
        if not (len(rows_arr) == len(cols_arr) == len(data_arr)):
            raise ValueError("rows/cols/data must be parallel arrays")
        if len(rows_arr) == 0:
            return target
        if rows_arr.min() < 0 or rows_arr.max() >= target.num_rows:
            raise ValueError("patch row id outside [0, num_rows)")
        if cols_arr.min() < 0 or cols_arr.max() >= len(self.variables):
            raise ValueError("patch column references unknown variable")
        # Zero out existing entries at the patched positions, then
        # append the non-zero replacements.
        width = len(self.variables)
        patched_keys = rows_arr * width + cols_arr
        # Set semantics within one call too: when a position appears
        # more than once, the last write wins.
        _, rev_first = np.unique(patched_keys[::-1], return_index=True)
        if len(rev_first) != len(patched_keys):
            keep_idx = np.sort(len(patched_keys) - 1 - rev_first)
            rows_arr = rows_arr[keep_idx]
            cols_arr = cols_arr[keep_idx]
            data_arr = data_arr[keep_idx]
            patched_keys = patched_keys[keep_idx]
        existing_keys = target.rows * width + target.cols
        hit = np.isin(existing_keys, patched_keys)
        if hit.any():
            target.data = np.where(hit, 0.0, target.data)
        keep = data_arr != 0.0
        if keep.any():
            target.rows = np.concatenate([target.rows, rows_arr[keep]])
            target.cols = np.concatenate([target.cols, cols_arr[keep]])
            target.data = np.concatenate([target.data, data_arr[keep]])
        return target

    def append_block_rows(
        self,
        block: Union[int, LinearBlock],
        rows: Sequence[int],
        cols: Sequence[int],
        data: Sequence[float],
        senses: Union[Sense, Sequence[Sense]],
        rhs: Sequence[float],
    ) -> LinearBlock:
        """Grow a block by whole rows; ``rows`` are ids local to the
        appended batch (0-based) and are shifted past the existing
        rows."""
        target = self._block(block)
        rhs_arr = np.asarray(rhs, dtype=np.float64)
        if isinstance(senses, Sense):
            sense_list = [senses] * len(rhs_arr)
        else:
            sense_list = list(senses)
        if len(sense_list) != len(rhs_arr):
            raise ValueError(f"{len(sense_list)} senses for {len(rhs_arr)} rows")
        rows_arr = np.asarray(rows, dtype=np.int64)
        cols_arr = np.asarray(cols, dtype=np.int64)
        data_arr = np.asarray(data, dtype=np.float64)
        if not (len(rows_arr) == len(cols_arr) == len(data_arr)):
            raise ValueError("rows/cols/data must be parallel arrays")
        if len(rows_arr) and (rows_arr.min() < 0
                              or rows_arr.max() >= len(rhs_arr)):
            raise ValueError("appended row id outside [0, num_new_rows)")
        if len(cols_arr) and (cols_arr.min() < 0
                              or cols_arr.max() >= len(self.variables)):
            raise ValueError("appended column references unknown variable")
        offset = target.num_rows
        target.rows = np.concatenate([target.rows, rows_arr + offset])
        target.cols = np.concatenate([target.cols, cols_arr])
        target.data = np.concatenate([target.data, data_arr])
        target.senses.extend(sense_list)
        target.rhs = np.concatenate([target.rhs, rhs_arr])
        return target

    def replace_block(
        self,
        block: Union[int, LinearBlock],
        rows: Sequence[int],
        cols: Sequence[int],
        data: Sequence[float],
        senses: Union[Sense, Sequence[Sense]],
        rhs: Sequence[float],
    ) -> LinearBlock:
        """Swap a block's entire contents (the structured form of a
        whole-family coefficient patch, e.g. new path rows on a
        reroute)."""
        target = self._block(block)
        rhs_arr = np.asarray(rhs, dtype=np.float64)
        if isinstance(senses, Sense):
            sense_list = [senses] * len(rhs_arr)
        else:
            sense_list = list(senses)
        if len(sense_list) != len(rhs_arr):
            raise ValueError(f"{len(sense_list)} senses for {len(rhs_arr)} rows")
        rows_arr = np.asarray(rows, dtype=np.int64)
        cols_arr = np.asarray(cols, dtype=np.int64)
        data_arr = np.asarray(data, dtype=np.float64)
        if not (len(rows_arr) == len(cols_arr) == len(data_arr)):
            raise ValueError("rows/cols/data must be parallel arrays")
        if len(rows_arr) and (rows_arr.min() < 0
                              or rows_arr.max() >= len(rhs_arr)):
            raise ValueError("block row id outside [0, num_rows)")
        if len(cols_arr) and (cols_arr.min() < 0
                              or cols_arr.max() >= len(self.variables)):
            raise ValueError("block column references unknown variable")
        target.rows = rows_arr
        target.cols = cols_arr
        target.data = data_arr
        target.senses = sense_list
        target.rhs = rhs_arr
        return target

    def set_block_rhs(
        self,
        block: Union[int, LinearBlock],
        rhs: Union[Mapping[int, float], Sequence[float], np.ndarray],
    ) -> LinearBlock:
        """Patch a block's right-hand sides: a full per-row vector or a
        sparse ``{row: value}`` mapping (RHS/bound patching -- e.g.
        capacity rows tracking spare capacity across deltas)."""
        target = self._block(block)
        if isinstance(rhs, Mapping):
            for row, value in rhs.items():
                if not 0 <= row < target.num_rows:
                    raise ValueError(f"rhs row {row} outside block")
                target.rhs[row] = float(value)
            return target
        rhs_arr = np.asarray(rhs, dtype=np.float64)
        if len(rhs_arr) != target.num_rows:
            raise ValueError(
                f"{len(rhs_arr)} rhs values for {target.num_rows} rows"
            )
        target.rhs = rhs_arr.copy()
        return target

    # ------------------------------------------------------------------
    # Canonical form and content digest
    # ------------------------------------------------------------------

    def canonical_csr(self) -> Dict[str, np.ndarray]:
        """The model's rows in canonical CSR form.

        Operator-API rows first, then block rows in block order.  Per
        row, columns are sorted ascending, duplicate columns summed,
        and explicit zeros dropped; row senses/rhs are expressed as
        ``(lower, upper)`` interval bounds.  Two models with the same
        mathematical content -- however they were built or patched --
        produce identical arrays, which :meth:`content_digest` hashes.
        """
        row_parts: List[np.ndarray] = []
        col_parts: List[np.ndarray] = []
        data_parts: List[np.ndarray] = []
        lb_parts: List[np.ndarray] = []
        ub_parts: List[np.ndarray] = []
        n_op = len(self.constraints)
        if n_op:
            op_lb = np.empty(n_op)
            op_ub = np.empty(n_op)
            rows: List[int] = []
            cols: List[int] = []
            data: List[float] = []
            for r, con in enumerate(self.constraints):
                for idx, coeff in con.expr.coeffs.items():
                    rows.append(r)
                    cols.append(idx)
                    data.append(coeff)
                if con.sense is Sense.LE:
                    op_lb[r], op_ub[r] = -np.inf, con.rhs
                elif con.sense is Sense.GE:
                    op_lb[r], op_ub[r] = con.rhs, np.inf
                else:
                    op_lb[r] = op_ub[r] = con.rhs
            row_parts.append(np.asarray(rows, dtype=np.int64))
            col_parts.append(np.asarray(cols, dtype=np.int64))
            data_parts.append(np.asarray(data, dtype=np.float64))
            lb_parts.append(op_lb)
            ub_parts.append(op_ub)
        offset = n_op
        for block in self.blocks:
            row_parts.append(block.rows + offset)
            col_parts.append(block.cols)
            data_parts.append(block.data)
            lower, upper = block.bounds()
            lb_parts.append(lower)
            ub_parts.append(upper)
            offset += block.num_rows
        num_rows = offset
        n = len(self.variables)
        if row_parts:
            all_rows = np.concatenate(row_parts)
            all_cols = np.concatenate(col_parts)
            all_data = np.concatenate(data_parts)
        else:
            all_rows = np.zeros(0, dtype=np.int64)
            all_cols = np.zeros(0, dtype=np.int64)
            all_data = np.zeros(0, dtype=np.float64)
        # Canonicalize: sort by (row, col), merge duplicates, drop zeros.
        order = np.lexsort((all_cols, all_rows))
        all_rows, all_cols, all_data = (
            all_rows[order], all_cols[order], all_data[order]
        )
        if len(all_rows):
            keys = all_rows * max(n, 1) + all_cols
            boundary = np.empty(len(keys), dtype=bool)
            boundary[0] = True
            boundary[1:] = keys[1:] != keys[:-1]
            group = np.cumsum(boundary) - 1
            merged = np.bincount(group, weights=all_data)
            all_rows = all_rows[boundary]
            all_cols = all_cols[boundary]
            all_data = merged
            nz = all_data != 0.0
            all_rows, all_cols, all_data = (
                all_rows[nz], all_cols[nz], all_data[nz]
            )
        indptr = np.zeros(num_rows + 1, dtype=np.int64)
        if len(all_rows):
            np.cumsum(np.bincount(all_rows, minlength=num_rows),
                      out=indptr[1:])
        return {
            "indptr": indptr,
            "indices": all_cols,
            "data": all_data,
            "row_lb": (np.concatenate(lb_parts) if lb_parts
                       else np.zeros(0)),
            "row_ub": (np.concatenate(ub_parts) if ub_parts
                       else np.zeros(0)),
        }

    def content_digest(self) -> str:
        """Content fingerprint over the canonical model form.

        Covers variable types and bounds, the objective, and every row
        via :meth:`canonical_csr` -- but *not* variable names (bulk
        encoding assigns positional names nobody reads).  Warm-start
        sessions key epoch invalidation on this digest: a patched model
        and a from-scratch build of the same content agree.
        """
        from ..digest import canonical_digest

        csr = self.canonical_csr()
        vtypes = bytes(
            {"binary": 0, "integer": 1, "continuous": 2}[v.vtype.value]
            for v in self.variables
        )
        var_lb = np.array([v.lb for v in self.variables])
        var_ub = np.array([v.ub for v in self.variables])
        obj_items = sorted(
            (i, c) for i, c in self.objective.coeffs.items() if c != 0.0
        )
        obj_idx = np.array([i for i, _c in obj_items], dtype=np.int64)
        obj_coef = np.array([c for _i, c in obj_items], dtype=np.float64)

        def parts() -> Iterable[str]:
            yield f"vars:{len(self.variables)}"
            yield vtypes.hex()
            yield var_lb.tobytes().hex()
            yield var_ub.tobytes().hex()
            yield f"objconst:{self.objective.constant!r}"
            yield obj_idx.tobytes().hex()
            yield obj_coef.tobytes().hex()
            for key in ("indptr", "indices", "data", "row_lb", "row_ub"):
                yield f"{key}:" + csr[key].tobytes().hex()

        return canonical_digest(parts())

    def set_objective(self, expr: Union[LinExpr, Variable]) -> None:
        """Set the minimization objective."""
        self.objective = LinExpr._as_expr(expr).copy()

    def var_by_name(self, name: str) -> Variable:
        return self._names[name]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def num_variables(self) -> int:
        return len(self.variables)

    def num_constraints(self) -> int:
        return len(self.constraints) + sum(b.num_rows for b in self.blocks)

    def all_constraints(self) -> List[Constraint]:
        """Every row as a :class:`Constraint`: the operator-API rows
        followed by materialized block rows.  Backends that walk rows
        individually (B&B, LP export, presolve, the exhaustive oracle)
        use this; the sparse backend reads ``blocks`` directly."""
        if not self.blocks:
            return self.constraints
        rows = list(self.constraints)
        for block in self.blocks:
            rows.extend(block.to_constraints())
        return rows

    def is_pure_binary(self) -> bool:
        return all(v.vtype is VarType.BINARY for v in self.variables)

    def check_solution(self, values: Mapping[int, float], tol: float = 1e-6) -> bool:
        """Feasibility check of a full assignment against all rows."""
        for var in self.variables:
            val = values.get(var.index, 0.0)
            if val < var.lb - tol or val > var.ub + tol:
                return False
            if var.vtype is not VarType.CONTINUOUS and abs(val - round(val)) > tol:
                return False
        if not all(c.satisfied(values, tol) for c in self.constraints):
            return False
        if self.blocks:
            x = np.zeros(len(self.variables))
            for idx, val in values.items():
                if 0 <= idx < len(x):
                    x[idx] = val
            if not all(block.satisfied(x, tol) for block in self.blocks):
                return False
        return True

    def solve(self, backend: Optional["object"] = None, **kwargs) -> SolveResult:
        """Solve with the given backend (default: SciPy/HiGHS)."""
        if backend is None:
            from .scipy_backend import ScipyMilpBackend

            backend = ScipyMilpBackend()
        return backend.solve(self, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Model({self.name!r}, {self.num_variables()} vars, "
            f"{self.num_constraints()} constraints)"
        )
