"""CPLEX LP-format export for debugging and external cross-checks.

Writing the model in the textual LP format the paper's CPLEX consumed
makes instances portable: any LP-format-speaking solver can replay our
exact formulation.  Only the subset needed by the placement models
(minimization, <=/>=/= rows, binary and general integer variables) is
emitted.
"""

from __future__ import annotations

from typing import List

from .model import Model, Sense, VarType

__all__ = ["to_lp_string", "write_lp_file"]

_SENSE_TEXT = {Sense.LE: "<=", Sense.GE: ">=", Sense.EQ: "="}


def _format_terms(coeffs: dict[int, float], model: Model) -> str:
    if not coeffs:
        return "0"
    parts: List[str] = []
    for idx in sorted(coeffs):
        coeff = coeffs[idx]
        name = model.variables[idx].name
        sign = "-" if coeff < 0 else "+"
        magnitude = abs(coeff)
        coeff_text = "" if magnitude == 1 else f"{magnitude:g} "
        parts.append(f"{sign} {coeff_text}{name}")
    text = " ".join(parts)
    return text[2:] if text.startswith("+ ") else text


def to_lp_string(model: Model) -> str:
    """Render the model in CPLEX LP format."""
    lines: List[str] = [f"\\ Model: {model.name}", "Minimize", f" obj: {_format_terms(model.objective.coeffs, model)}"]
    lines.append("Subject To")
    for i, con in enumerate(model.all_constraints()):
        label = con.name or f"c{i}"
        lines.append(
            f" {label}: {_format_terms(con.expr.coeffs, model)} "
            f"{_SENSE_TEXT[con.sense]} {con.rhs:g}"
        )
    generals = [v for v in model.variables if v.vtype is VarType.INTEGER]
    binaries = [v for v in model.variables if v.vtype is VarType.BINARY]
    if generals:
        lines.append("Bounds")
        for var in generals:
            ub = "+inf" if var.ub == float("inf") else f"{var.ub:g}"
            lines.append(f" {var.lb:g} <= {var.name} <= {ub}")
        lines.append("Generals")
        lines.append(" " + " ".join(v.name for v in generals))
    if binaries:
        lines.append("Binaries")
        lines.append(" " + " ".join(v.name for v in binaries))
    lines.append("End")
    return "\n".join(lines) + "\n"


def write_lp_file(model: Model, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_lp_string(model))
