"""MILP substrate: modeling layer and interchangeable exact backends."""

from .model import (
    VarType,
    Variable,
    LinExpr,
    Sense,
    Constraint,
    SolveStatus,
    SolveResult,
    Model,
)
from .model import lin_sum
from .scipy_backend import ScipyMilpBackend
from .bnb import BranchAndBoundBackend
from .exhaustive import ExhaustiveBackend
from .lpfile import to_lp_string, write_lp_file

__all__ = [
    "VarType",
    "Variable",
    "LinExpr",
    "lin_sum",
    "Sense",
    "Constraint",
    "SolveStatus",
    "SolveResult",
    "Model",
    "ScipyMilpBackend",
    "BranchAndBoundBackend",
    "ExhaustiveBackend",
    "to_lp_string",
    "write_lp_file",
]
