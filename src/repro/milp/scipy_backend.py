"""HiGHS-backed MILP solving via ``scipy.optimize.milp``.

This is the repository's stand-in for the paper's CPLEX: an exact
branch-and-cut MILP solver.  The backend converts a
:class:`~repro.milp.model.Model` into the sparse matrix form SciPy
expects and maps HiGHS statuses back onto :class:`SolveStatus`.
"""

from __future__ import annotations

import inspect
import time
from typing import Mapping, Optional

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from .model import Model, Sense, SolveResult, SolveStatus, VarType

__all__ = ["ScipyMilpBackend"]

# MIP-start support landed in scipy's milp() as an ``x0`` keyword; the
# pinned scipy may predate it, so warm starts are gated on the actual
# signature instead of a version check.
_MILP_SUPPORTS_X0 = "x0" in inspect.signature(milp).parameters

# scipy.optimize.milp status codes (see its docs):
# 0 optimal, 1 iteration/time limit, 2 infeasible, 3 unbounded, 4 other.
_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
}


class ScipyMilpBackend:
    """Exact MILP solving through SciPy's HiGHS bindings."""

    name = "scipy-highs"

    def __init__(self, time_limit: Optional[float] = None,
                 mip_rel_gap: float = 0.0) -> None:
        self.time_limit = time_limit
        self.mip_rel_gap = mip_rel_gap

    def solve(self, model: Model, time_limit: Optional[float] = None,
              warm_start: Optional[Mapping[int, float]] = None) -> SolveResult:
        started = time.perf_counter()
        n = model.num_variables()
        if n == 0:
            return SolveResult(SolveStatus.OPTIMAL, objective=model.objective.constant,
                               values={}, solve_seconds=0.0)

        c = np.zeros(n)
        for idx, coeff in model.objective.coeffs.items():
            c[idx] = coeff

        lb = np.array([v.lb for v in model.variables])
        ub = np.array([v.ub for v in model.variables])
        integrality = np.array([
            0 if v.vtype is VarType.CONTINUOUS else 1 for v in model.variables
        ])

        constraints = []
        num_rows = model.num_constraints()
        if num_rows:
            # Operator-API rows flatten one dict at a time; bulk blocks
            # (repro.core.ilp with bulk=True) arrive as COO triplets and
            # are concatenated without touching individual rows.
            rows, cols, data = [], [], []
            c_lb = np.empty(len(model.constraints))
            c_ub = np.empty(len(model.constraints))
            for r, con in enumerate(model.constraints):
                for idx, coeff in con.expr.coeffs.items():
                    rows.append(r)
                    cols.append(idx)
                    data.append(coeff)
                if con.sense is Sense.LE:
                    c_lb[r], c_ub[r] = -np.inf, con.rhs
                elif con.sense is Sense.GE:
                    c_lb[r], c_ub[r] = con.rhs, np.inf
                else:
                    c_lb[r] = c_ub[r] = con.rhs
            row_parts = [np.asarray(rows, dtype=np.int64)]
            col_parts = [np.asarray(cols, dtype=np.int64)]
            data_parts = [np.asarray(data, dtype=np.float64)]
            lb_parts = [c_lb]
            ub_parts = [c_ub]
            offset = len(model.constraints)
            for block in model.blocks:
                row_parts.append(block.rows + offset)
                col_parts.append(block.cols)
                data_parts.append(block.data)
                lower, upper = block.bounds()
                lb_parts.append(lower)
                ub_parts.append(upper)
                offset += block.num_rows
            matrix = sparse.csr_matrix(
                (
                    np.concatenate(data_parts),
                    (np.concatenate(row_parts), np.concatenate(col_parts)),
                ),
                shape=(num_rows, n),
            )
            constraints.append(LinearConstraint(
                matrix, np.concatenate(lb_parts), np.concatenate(ub_parts)
            ))

        options: dict = {"mip_rel_gap": self.mip_rel_gap}
        limit = time_limit if time_limit is not None else self.time_limit
        if limit is not None:
            options["time_limit"] = limit

        kwargs: dict = {}
        warm_used = False
        if warm_start is not None and _MILP_SUPPORTS_X0:
            x0 = np.array([float(warm_start.get(i, 0.0)) for i in range(n)])
            kwargs["x0"] = x0
            warm_used = True
        result = milp(
            c,
            constraints=constraints,
            bounds=Bounds(lb, ub),
            integrality=integrality,
            options=options,
            **kwargs,
        )
        elapsed = time.perf_counter() - started

        status = _STATUS_MAP.get(result.status)
        if status is None:
            if result.status == 1:
                # Iteration/time limit: TIME_LIMIT either way, with the
                # incumbent attached when HiGHS found one.
                status = SolveStatus.TIME_LIMIT
            else:
                # "Other" (4): feasible iff x is present.
                status = (
                    SolveStatus.FEASIBLE if result.x is not None
                    else SolveStatus.ERROR
                )
        values = {}
        objective = None
        if result.x is not None:
            values = {i: float(x) for i, x in enumerate(result.x)}
            objective = float(result.fun) + model.objective.constant
        stats = {}
        if warm_used:
            stats["warm_start"] = 1.0
        if getattr(result, "mip_node_count", None) is not None:
            stats["nodes"] = float(result.mip_node_count)
        if getattr(result, "mip_gap", None) is not None:
            stats["gap"] = float(result.mip_gap)
        if (status is SolveStatus.TIME_LIMIT and result.x is None
                and warm_start is not None
                and model.check_solution(dict(warm_start))):
            # HiGHS hit the limit without producing a solution, but the
            # caller's warm start is a verified-feasible incumbent --
            # return it rather than an empty TIME_LIMIT.
            values = {i: float(warm_start.get(i, 0.0)) for i in range(n)}
            objective = (
                float(sum(c[i] * values[i] for i in range(n)))
                + model.objective.constant
            )
            stats["warm_start_incumbent"] = 1.0
        return SolveResult(status, objective, values, elapsed, stats)
