"""Command-line interface for the rule-placement toolkit.

Subcommands mirror the operational workflow:

* ``generate`` -- synthesize a benchmark instance (fat-tree + routing +
  ClassBench-style policies) to a JSON file;
* ``solve``    -- run the ILP (or SAT) engine on an instance file and
  write the placement JSON;
* ``verify``   -- exact verification of a placement against its
  instance (exit code 1 on violation);
* ``report``   -- operator report: utilization, spread, accounting;
* ``export-lp``-- dump the exact CPLEX LP file of the encoding;
* ``chaos``    -- deploy a placement and storm its control plane with
  seeded fault schedules, checking convergence and the fail-closed
  invariant (exit code 1 on any failing seed);
* ``serve``    -- run the placement daemon (NDJSON over TCP or stdio):
  content-addressed result cache, admission control, crash-isolated
  workers, Prometheus-style metrics; ``--shards N`` runs a consistent-
  hash sharded cluster behind one asyncio front-end;
* ``ping``     -- liveness probe against a running daemon;
* ``loadgen``  -- replay the seeded mixed workload against a daemon or
  cluster (``--cluster``) and write a report;
* ``bench-serve`` -- replay the seeded mixed workload against a fresh
  in-process daemon and write the benchmark report JSON;
* ``churn``    -- run the traffic-driven rule-caching loop (seeded
  Zipf/flash-crowd stream, promotion/eviction deltas) across a seed
  matrix and gate on the caching correctness oracle (exit code 1 on
  any verdict/closure violation or shadow digest mismatch);
* ``lint``     -- run the project static analyzer (fork-safety, async-
  blocking, lock-order, determinism, protocol wiring); exit code 1 on
  any non-baselined finding, ``--explain RULE-ID`` for rule docs.

Example::

    python -m repro.cli generate --k 4 --paths 32 --rules 20 \
        --capacity 40 -o instance.json
    python -m repro.cli solve instance.json -o placement.json --merging
    python -m repro.cli verify instance.json placement.json
    python -m repro.cli report instance.json placement.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from . import io as repro_io
from .core.ilp import build_encoding
from .core.objectives import (
    Combined,
    TotalRules,
    UpstreamDrops,
    apply_objective,
)
from .core.placement import PlacerConfig, RulePlacer
from .core.report import instance_report, placement_report
from .core.satenc import SatPlacer
from .core.verify import verify_placement
from .experiments.generators import ExperimentConfig, build_instance
from .milp.lpfile import write_lp_file

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ILP/SAT rule placement for SDN firewalls (DSN 2014 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a benchmark instance")
    gen.add_argument("--k", type=int, default=4, help="fat-tree arity (even)")
    gen.add_argument("--paths", type=int, default=32, help="total routed paths")
    gen.add_argument("--rules", type=int, default=20, help="rules per policy")
    gen.add_argument("--capacity", type=int, default=100,
                     help="uniform switch capacity")
    gen.add_argument("--ingresses", type=int, default=None,
                     help="policies to attach (default: one per edge switch)")
    gen.add_argument("--blacklist", type=int, default=0,
                     help="shared mergeable blacklist rules")
    gen.add_argument("--slice", action="store_true", dest="flow_slicing",
                     help="annotate paths with flow descriptors")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True, help="instance JSON path")

    solve = sub.add_parser("solve", help="place rules for an instance")
    solve.add_argument("instance", help="instance JSON path")
    solve.add_argument("-o", "--output", required=True,
                       help="placement JSON path")
    solve.add_argument("--engine", choices=["ilp", "sat"], default="ilp")
    solve.add_argument("--backend",
                       choices=["highs", "bnb", "portfolio"], default="highs",
                       help="ILP backend, or 'portfolio' to race every "
                            "exact engine and take the first proven answer")
    solve.add_argument("--merging", action="store_true",
                       help="enable cross-policy rule merging")
    solve.add_argument("--objective", choices=["rules", "upstream", "combined"],
                       default="rules")
    solve.add_argument("--time-limit", type=float, default=None)
    solve.add_argument("--deadline", type=float, default=None,
                       help="shared wall-clock budget in seconds; on expiry "
                            "the best incumbent is returned (status "
                            "time_limit)")
    solve.add_argument("--engines", default=None,
                       help="comma-separated portfolio engines "
                            "(default: highs,bnb,satopt)")

    verify = sub.add_parser("verify", help="exactly verify a placement")
    verify.add_argument("instance")
    verify.add_argument("placement")
    verify.add_argument("--simulate", action="store_true",
                        help="also replay sampled packets in the simulator")

    report = sub.add_parser("report", help="operator report")
    report.add_argument("instance")
    report.add_argument("placement", nargs="?", default=None,
                        help="optional placement JSON (instance-only otherwise)")

    export = sub.add_parser("export-lp", help="write the CPLEX LP file")
    export.add_argument("instance")
    export.add_argument("-o", "--output", required=True, help="LP file path")
    export.add_argument("--merging", action="store_true")

    policies = sub.add_parser(
        "policies", help="print an instance's policies in text form"
    )
    policies.add_argument("instance")
    policies.add_argument("--ingress", default=None,
                          help="limit output to one ingress policy")

    chaos = sub.add_parser(
        "chaos",
        help="storm a deployed placement with seeded control-plane faults",
    )
    chaos.add_argument("instance", help="instance JSON path")
    chaos.add_argument("placement", nargs="?", default=None,
                       help="placement JSON (default: solve with the "
                            "portfolio first)")
    chaos.add_argument("--seeds", type=int, default=20,
                       help="number of seeded fault schedules to run")
    chaos.add_argument("--seed-base", type=int, default=0,
                       help="first seed of the range")
    chaos.add_argument("--horizon", type=int, default=30,
                       help="storm length in channel rounds")
    chaos.add_argument("--drop", type=float, default=0.15,
                       help="baseline drop rate during the storm")
    chaos.add_argument("--duplicate", type=float, default=0.1)
    chaos.add_argument("--reorder", type=float, default=0.1)
    chaos.add_argument("--no-fail-secure", action="store_true",
                       help="disable fail-secure reboots (demonstrates "
                            "the fail-closed violation they prevent)")

    serve = sub.add_parser(
        "serve",
        help="run the placement daemon (NDJSON over TCP or stdio)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7421,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--stdio", action="store_true",
                       help="serve NDJSON on stdin/stdout instead of TCP")
    serve.add_argument("--frontend", choices=["async", "threaded"],
                       default="async",
                       help="connection front-end: one asyncio event "
                            "loop multiplexing every connection "
                            "(default), or the legacy thread-per-"
                            "connection server")
    serve.add_argument("--shards", type=int, default=1,
                       help="run N placement shards behind a "
                            "consistent-hash router (1 = single "
                            "daemon)")
    serve.add_argument("--vnodes", type=int, default=64,
                       help="virtual nodes per shard on the hash ring")
    serve.add_argument("--workers", type=int, default=4,
                       help="max concurrently live solver workers")
    serve.add_argument("--dispatchers", type=int, default=2,
                       help="broker dispatcher threads")
    serve.add_argument("--queue", type=int, default=64,
                       help="admission queue bound (OVERLOADED beyond it)")
    serve.add_argument("--executor", choices=["process", "inline"],
                       default="process",
                       help="worker isolation (inline: no crash isolation)")
    serve.add_argument("--cache-entries", type=int, default=256)
    serve.add_argument("--cache-bytes", type=int, default=None)
    serve.add_argument("--cache-ttl", type=float, default=None,
                       help="result time-to-live in seconds")
    serve.add_argument("--journal-dir", default=None,
                       help="directory for the write-ahead journal; "
                            "enables crash recovery on restart")
    serve.add_argument("--durability",
                       choices=["fsync", "flush", "none"], default="fsync",
                       help="journal durability mode (default fsync)")
    serve.add_argument("--snapshot-every", type=int, default=256,
                       help="compact the journal every N records")
    serve.add_argument("--no-supervise", action="store_true",
                       help="disable the session-worker supervisor")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds to drain in-flight work on "
                            "SIGTERM/SIGINT before forcing shutdown")
    serve.add_argument("--deadline", type=float, default=None,
                       help="default per-request deadline in seconds")

    ping_cmd = sub.add_parser("ping", help="probe a running daemon")
    ping_cmd.add_argument("--host", default="127.0.0.1")
    ping_cmd.add_argument("--port", type=int, default=7421)
    ping_cmd.add_argument("--timeout", type=float, default=5.0)
    ping_cmd.add_argument("--deep", action="store_true",
                          help="full health probe: journal lag, worker "
                               "liveness, queue depth, session probes")

    loadgen = sub.add_parser(
        "loadgen",
        help="replay the seeded mixed workload against a daemon or "
             "cluster and write a report",
    )
    loadgen.add_argument("-o", "--output", default="loadgen_report.json",
                         help="report JSON path")
    loadgen.add_argument("--address", default=None,
                         help="host:port of a running daemon or cluster "
                              "front-end (default: fresh in-process "
                              "target)")
    loadgen.add_argument("--cluster", action="store_true",
                         help="cluster workload: keyed traffic over "
                              "multiple deployments, per-shard spread "
                              "and cache-affinity report")
    loadgen.add_argument("--shards", type=int, default=3,
                         help="in-process shards when --cluster runs "
                              "without --address")
    loadgen.add_argument("--deployments", type=int, default=3,
                         help="named deployments receiving delta "
                              "traffic in --cluster mode")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--instances", type=int, default=None,
                         help="distinct instances (cold solves)")
    loadgen.add_argument("--repeats", type=int, default=None,
                         help="cache-hit repeats per instance")
    loadgen.add_argument("--deltas", type=int, default=None,
                         help="delta ops per deployment")
    loadgen.add_argument("--clients", type=int, default=None,
                         help="concurrent client threads")
    loadgen.add_argument("--quick", action="store_true",
                         help="small workload (also via "
                              "REPRO_CLUSTER_QUICK=1)")

    churn = sub.add_parser(
        "churn",
        help="run the traffic-driven rule-caching churn loop",
    )
    churn.add_argument("-o", "--output", default="churn_report.json",
                       help="report JSON path")
    churn.add_argument("--seeds", type=int, default=None,
                       help="seed-matrix width (default 8, or "
                            "$REPRO_CHURN_SEEDS)")
    churn.add_argument("--seed", type=int, default=0,
                       help="first seed of the matrix")
    churn.add_argument("--ticks", type=int, default=None,
                       help="traffic ticks per run (default 96)")
    churn.add_argument("--budget", type=int, default=None,
                       help="cached rules per ingress (default 12)")
    churn.add_argument("--strategy", default="popularity",
                       choices=["popularity", "lru", "lfu", "static"],
                       help="cache scoring strategy")
    churn.add_argument("--compare", action="store_true",
                       help="run every strategy and report the "
                            "hit-rate comparison")
    churn.add_argument("--service", action="store_true",
                       help="drive deltas through an in-process "
                            "service (journal + sessions see the "
                            "churn) with a digest-checked shadow")
    churn.add_argument("--quick", action="store_true",
                       help="small matrix (also via "
                            "REPRO_CHURN_QUICK=1)")

    bench = sub.add_parser(
        "bench-serve",
        help="replay the seeded mixed workload against a fresh daemon",
    )
    bench.add_argument("-o", "--output", default="BENCH_pr5.json",
                       help="benchmark report JSON path")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--instances", type=int, default=None,
                       help="distinct instances (cold solves)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="cache-hit repeats per instance")
    bench.add_argument("--deltas", type=int, default=None,
                       help="incremental delta operations")
    bench.add_argument("--clients", type=int, default=None,
                       help="concurrent client threads")
    bench.add_argument("--paths", type=int, default=None,
                       help="routed paths per instance")
    bench.add_argument("--rules", type=int, default=None,
                       help="rules per policy")
    bench.add_argument("--executor", choices=["process", "inline"],
                       default="process")
    bench.add_argument("--quick", action="store_true",
                       help="small workload (also via REPRO_SERVE_QUICK=1)")
    bench.add_argument("--address", default=None,
                       help="host:port of a running daemon to drive over "
                            "TCP instead of an in-process service")

    lint = sub.add_parser(
        "lint",
        help="run the project static analyzer (fork/async/lock/seed/"
             "proto invariants)",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories to scan (default: "
                           "src/repro under --root)")
    lint.add_argument("--root", default=".",
                      help="project root paths are reported relative to")
    lint.add_argument("--format", choices=["human", "json"],
                      default="human")
    lint.add_argument("--baseline", default="lint-baseline.json",
                      help="findings baseline path, relative to --root")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore the baseline (report every finding)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="record current findings as the new baseline")
    lint.add_argument("--rules", default=None,
                      help="comma-separated rule ids to run (default all)")
    lint.add_argument("--explain", metavar="RULE-ID", default=None,
                      help="print a rule's invariant, examples, and the "
                           "incident that motivated it, then exit")

    return parser


def _objective(name: str):
    if name == "rules":
        return TotalRules()
    if name == "upstream":
        return UpstreamDrops()
    return Combined(((1.0, TotalRules()), (0.001, UpstreamDrops())))


def _cmd_generate(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        k=args.k, num_paths=args.paths, rules_per_policy=args.rules,
        capacity=args.capacity, num_ingresses=args.ingresses,
        blacklist_rules=args.blacklist, flow_slicing=args.flow_slicing,
        seed=args.seed,
    )
    instance = build_instance(config)
    repro_io.save_instance(instance, args.output)
    print(f"wrote {args.output}: {instance.summary()}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = repro_io.load_instance(args.instance)
    if args.engine == "sat":
        placement = SatPlacer(enable_merging=args.merging).place(instance)
    else:
        config = PlacerConfig(
            objective=_objective(args.objective),
            enable_merging=args.merging,
            backend=args.backend,
            time_limit=args.time_limit,
            deadline=args.deadline,
        )
        if args.engines:
            config.engines = tuple(
                name.strip() for name in args.engines.split(",") if name.strip()
            )
        placement = RulePlacer(config).place(instance)
    print(placement.summary())
    compile_stats = placement.solver_stats.get("compile")
    if isinstance(compile_stats, dict):
        print(
            "compile: depgraph {:.1f}ms, encode {:.1f}ms, "
            "{} component(s), parallel speedup {:.2f}x".format(
                compile_stats.get("depgraph_ms", 0.0),
                compile_stats.get("encode_ms", 0.0),
                compile_stats.get("components", 1),
                compile_stats.get("parallel_speedup", 1.0),
            )
        )
    if placement.winner is not None:
        portfolio = placement.solver_stats["portfolio"]
        engines = portfolio.get("engines", {})
        outcomes = ", ".join(
            f"{name}={record.get('outcome')}"
            f" ({record.get('wall_seconds', 0.0):.2f}s)"
            for name, record in engines.items()
        )
        print(f"portfolio winner: {placement.winner} [{outcomes}]")
    repro_io.save_placement(placement, args.output)
    print(f"wrote {args.output}")
    return 0 if placement.is_feasible else 2


def _cmd_verify(args: argparse.Namespace) -> int:
    instance = repro_io.load_instance(args.instance)
    placement = repro_io.load_placement(args.placement, instance)
    result = verify_placement(placement, simulate=args.simulate)
    if result.ok:
        print(f"OK: {result.paths_checked} paths, "
              f"{result.switches_checked} switches verified")
        return 0
    for error in result.errors:
        print(f"VIOLATION: {error}", file=sys.stderr)
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    instance = repro_io.load_instance(args.instance)
    print(instance_report(instance))
    if args.placement:
        placement = repro_io.load_placement(args.placement, instance)
        print()
        print(placement_report(placement))
    return 0


def _cmd_export_lp(args: argparse.Namespace) -> int:
    instance = repro_io.load_instance(args.instance)
    encoding = build_encoding(instance, enable_merging=args.merging)
    apply_objective(encoding, TotalRules())
    write_lp_file(encoding.model, args.output)
    print(f"wrote {args.output}: {encoding.model.num_variables()} variables, "
          f"{encoding.model.num_constraints()} constraints")
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    from .policy.textfmt import format_policy

    instance = repro_io.load_instance(args.instance)
    for policy in instance.policies:
        if args.ingress is not None and policy.ingress != args.ingress:
            continue
        print(format_policy(policy))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .chaos import run_chaos

    instance = repro_io.load_instance(args.instance)
    if args.placement:
        placement = repro_io.load_placement(args.placement, instance)
    else:
        placement = RulePlacer(
            PlacerConfig(backend="portfolio", executor="inline")
        ).place(instance)
    if not placement.is_feasible:
        print("no feasible placement to storm", file=sys.stderr)
        return 2
    failures = 0
    for seed in range(args.seed_base, args.seed_base + args.seeds):
        report = run_chaos(
            instance, placement, seed=seed,
            horizon=args.horizon, drop_rate=args.drop,
            duplicate_rate=args.duplicate, reorder_rate=args.reorder,
            fail_secure=not args.no_fail_secure,
        )
        verdict = ("ok" if report.converged and report.fail_closed_held
                   else "FAIL")
        if verdict == "FAIL":
            failures += 1
        print(f"seed {seed}: {verdict} stage={report.final_stage.value} "
              f"violations={len(report.violations)} "
              f"digest={report.digest[:12]}")
        for violation in report.violations[:3]:
            print(f"  {violation}", file=sys.stderr)
    print(f"{args.seeds - failures}/{args.seeds} schedules converged "
          f"fail-closed")
    return 1 if failures else 0


def _shard_config(args: argparse.Namespace,
                  journal_dir: Optional[str]):
    from .service import ServiceConfig

    return ServiceConfig(
        max_queue=args.queue,
        dispatchers=args.dispatchers,
        max_workers=args.workers,
        executor=args.executor,
        cache_entries=args.cache_entries,
        cache_bytes=args.cache_bytes,
        cache_ttl=args.cache_ttl,
        default_deadline=args.deadline,
        journal_dir=journal_dir,
        durability=args.durability,
        snapshot_every=args.snapshot_every,
        supervise=not args.no_supervise,
    )


def _print_recovery(name: str, recovery) -> None:
    if recovery:
        prefix = f"{name}: " if name else ""
        print(f"{prefix}recovered from journal: {recovery['records']} "
              f"records, {recovery['deployments']} deployments, "
              f"{recovery['deltas']} deltas, {recovery['sessions']} "
              f"sessions re-attached", flush=True)


def _cmd_serve(args: argparse.Namespace) -> int:
    import os
    import signal
    import threading

    from .service import PlacementService, ServiceServer
    from .service.daemon import serve_stdio

    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    if args.shards > 1 and (args.stdio or args.frontend == "threaded"):
        print("--shards > 1 requires the async TCP front-end "
              "(no --stdio, no --frontend threaded)", file=sys.stderr)
        return 2

    # Assemble the backend: one service, or N shards + a router.
    cluster = None
    if args.shards > 1:
        from .service.cluster import LocalCluster

        def factory(name: str):
            journal = (os.path.join(args.journal_dir, name)
                       if args.journal_dir else None)
            return _shard_config(args, journal)

        cluster = LocalCluster(shards=args.shards, vnodes=args.vnodes,
                               config_factory=factory)
        for name, shard in sorted(cluster.shards.items()):
            _print_recovery(name, shard.service.last_recovery)
        backend = cluster.router

        def close_backend(drain: bool) -> None:
            for shard in cluster.shards.values():
                shard.service.close(drain=drain,
                                    drain_timeout=args.drain_timeout)
            cluster.close()
    else:
        service = PlacementService(_shard_config(args, args.journal_dir))
        _print_recovery("", service.last_recovery)
        if args.stdio:
            try:
                return serve_stdio(service, sys.stdin, sys.stdout)
            finally:
                service.close(drain=True,
                              drain_timeout=args.drain_timeout)
        backend = service

        def close_backend(drain: bool) -> None:
            service.close(drain=drain, drain_timeout=args.drain_timeout)

    # Assemble the front-end.
    if args.frontend == "threaded":
        server = ServiceServer(backend, host=args.host, port=args.port)
        server.start()
        address = server.address

        def stop_frontend(drain: bool) -> None:
            # ServiceServer.shutdown also closes its service -- the
            # single close path the threaded stack has always had.
            server.shutdown(drain=drain,
                            drain_timeout=args.drain_timeout)
    else:
        from .service.frontend import AsyncFrontend

        frontend = AsyncFrontend(backend, host=args.host, port=args.port)
        frontend.start()
        address = frontend.address

        def stop_frontend(drain: bool) -> None:
            frontend.shutdown(drain=drain,
                              drain_timeout=args.drain_timeout)
            close_backend(drain)

    print(f"repro {__version__} serving on "
          f"{address[0]}:{address[1]} "
          f"(frontend={args.frontend}, shards={args.shards}, "
          f"executor={args.executor}, workers={args.workers}, "
          f"queue={args.queue}, "
          f"journal={args.journal_dir or 'off'})",
          flush=True)

    # SIGTERM/SIGINT -> graceful drain.  The handler must not block
    # itself: shutdown joins server threads and waits on in-flight
    # handlers, and blocking inside a signal handler on the main thread
    # would deadlock the very work being drained.  Hand off to a
    # one-shot drainer thread instead.
    done = threading.Event()
    stop_lock = threading.Lock()
    stopped = [False]

    def _stop_once(drain: bool) -> None:
        with stop_lock:
            if stopped[0]:
                return
            stopped[0] = True
        stop_frontend(drain)

    def _drain_and_exit(signum: int, _frame: object) -> None:
        name = signal.Signals(signum).name

        def _worker() -> None:
            print(f"{name}: draining (timeout "
                  f"{args.drain_timeout:.0f}s)...", flush=True)
            _stop_once(drain=True)
            done.set()

        threading.Thread(target=_worker, name="repro-drainer",
                         daemon=True).start()

    signal.signal(signal.SIGTERM, _drain_and_exit)
    signal.signal(signal.SIGINT, _drain_and_exit)
    try:
        # Timed waits keep the main thread responsive to signals on
        # every platform (an untimed Event.wait can defer delivery).
        while not done.wait(timeout=0.5):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        _stop_once(drain=False)
    print("drained; journal is durable", flush=True)
    return 0


def _cmd_ping(args: argparse.Namespace) -> int:
    from .service.daemon import ping
    from .service.client import ServiceClient, ServiceUnavailable
    from .service.protocol import HealthRequest

    if args.deep:
        try:
            with ServiceClient(host=args.host, port=args.port,
                               timeout=args.timeout, retries=0) as client:
                response = client.call(HealthRequest(deep=True))
        except (ServiceUnavailable, OSError) as exc:
            print(f"ping {args.host}:{args.port} failed: {exc}",
                  file=sys.stderr)
            return 1
        result = response.result or {}
        journal = result.get("journal") or {}
        print(f"health from {args.host}:{args.port}: "
              f"{'healthy' if result.get('healthy') else 'UNHEALTHY'}")
        print(f"  queue depth {result.get('queue_depth')}, busy workers "
              f"{result.get('busy_workers')}, live workers "
              f"{result.get('live_workers')}")
        print(f"  journal lag {journal.get('lag_records', 'n/a')} records, "
              f"{journal.get('bytes', 'n/a')} bytes, "
              f"{journal.get('records_since_snapshot', 'n/a')} since "
              f"snapshot")
        for name, digest in sorted(
                (result.get("state_digests") or {}).items()):
            print(f"  deployment {name}: {digest[:16]}")
        for name, probe in sorted(
                (result.get("session_probes") or {}).items()):
            print(f"  session {name}: {probe}")
        if result.get("dead_sessions"):
            print(f"  dead sessions: {result['dead_sessions']}",
                  file=sys.stderr)
        return 0 if result.get("healthy") else 1
    try:
        response = ping(args.host, args.port, timeout=args.timeout)
    except OSError as exc:
        print(f"ping {args.host}:{args.port} failed: {exc}", file=sys.stderr)
        return 1
    if not response.ok:
        print(f"ping unhealthy: {response.status} {response.error}",
              file=sys.stderr)
        return 1
    result = response.result or {}
    print(f"pong from {args.host}:{args.port}: "
          f"version {result.get('version')}, "
          f"deployments {result.get('deployments', [])}")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json
    import os

    from .service.loadgen import (
        ClusterLoadgenConfig,
        LoadgenConfig,
        run_cluster_loadgen,
        run_loadgen,
    )

    quick = args.quick or os.environ.get("REPRO_CLUSTER_QUICK") == "1"
    if args.cluster:
        config = ClusterLoadgenConfig(
            seed=args.seed, address=args.address,
            shards=args.shards, deployments=args.deployments)
    else:
        config = LoadgenConfig(seed=args.seed, address=args.address)
    if quick:
        config.unique_instances = 3
        config.repeats = 2
        config.deltas = 2
        config.clients = 2
        config.burst = 3
        config.num_paths = 6
        config.rules_per_policy = 6
    if args.instances is not None:
        config.unique_instances = args.instances
    if args.repeats is not None:
        config.repeats = args.repeats
    if args.deltas is not None:
        config.deltas = args.deltas
    if args.clients is not None:
        config.clients = args.clients

    if args.cluster:
        report = run_cluster_loadgen(config)
    else:
        report = run_loadgen(config)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    totals = report["totals"]
    print(f"{totals['requests']} requests in "
          f"{totals['wall_seconds']:.2f}s "
          f"({totals['throughput_rps']:.1f} req/s), "
          f"{totals['failures']} failed, {totals['shed']} shed")
    if "cluster" in report:
        spread = report["cluster"]["requests_by_shard"]
        affinity = report["cluster"]["warm_affinity"]
        print(f"shard spread: "
              + ", ".join(f"{name}={count}"
                          for name, count in spread.items()))
        print(f"warm affinity: {affinity['digests']} digests, "
              f"{len(affinity['violations'])} violation(s)")
    print(f"wrote {args.output}")
    return 0 if totals["failures"] == 0 else 1


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import json
    import os

    from .service.loadgen import LoadgenConfig, run_loadgen

    quick = args.quick or os.environ.get("REPRO_SERVE_QUICK") == "1"
    config = LoadgenConfig(seed=args.seed, executor=args.executor,
                           address=args.address)
    if quick:
        config.unique_instances = 2
        config.repeats = 2
        config.deltas = 4
        config.clients = 2
        config.burst = 3
        config.num_paths = 6
        config.rules_per_policy = 6
    if args.instances is not None:
        config.unique_instances = args.instances
    if args.repeats is not None:
        config.repeats = args.repeats
    if args.deltas is not None:
        config.deltas = args.deltas
    if args.clients is not None:
        config.clients = args.clients
    if args.paths is not None:
        config.num_paths = args.paths
    if args.rules is not None:
        config.rules_per_policy = args.rules

    report = run_loadgen(config)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    totals = report["totals"]
    warm = report["warm_vs_cold"]
    print(f"{totals['requests']} requests in "
          f"{totals['wall_seconds']:.2f}s "
          f"({totals['throughput_rps']:.1f} req/s), "
          f"{totals['failures']} failed, {totals['shed']} shed")
    print(f"cold mean {warm['cold_mean_seconds'] * 1e3:.1f}ms, "
          f"warm cache mean {warm['warm_cache_mean_seconds'] * 1e3:.2f}ms "
          f"({warm['speedup']:.0f}x), "
          f"hit rate {report['cache']['hit_rate']:.2f}")
    coalescing = report["coalescing"]
    print(f"coalescing: burst of {coalescing['burst_size']} -> "
          f"{coalescing['solves_started']:.0f} solve(s)")
    print(f"wrote {args.output}")
    return 0 if totals["failures"] == 0 else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the project static analyzer; exit 0 only when clean."""
    from pathlib import Path

    from .analysis import (AnalysisConfig, render_human, render_json,
                           rule_registry, run_analysis)
    from .analysis.baseline import write_baseline

    if args.explain:
        rules = rule_registry()
        info = rules.get(args.explain)
        if info is None:
            known = ", ".join(sorted(rules))
            print(f"unknown rule {args.explain!r}; known rules: {known}",
                  file=sys.stderr)
            return 2
        print(info.explain())
        return 0

    root = Path(args.root)
    baseline_path = root / args.baseline
    config = AnalysisConfig(
        root=root,
        paths=tuple(Path(p) for p in args.paths),
        rules=tuple(r.strip() for r in args.rules.split(",")
                    if r.strip()) if args.rules else (),
        baseline=None if args.no_baseline else baseline_path,
    )
    result = run_analysis(config)
    for path, error in result.parse_errors:
        print(f"{path}: parse error: {error}", file=sys.stderr)
    if args.write_baseline:
        count = write_baseline(baseline_path,
                               result.active + result.baselined)
        print(f"wrote {count} finding(s) to {baseline_path}")
        return 0
    renderer = render_json if args.format == "json" else render_human
    print(renderer(result.active, result.suppressed, result.baselined,
                   result.files_scanned))
    return result.exit_code


def _cmd_churn(args: argparse.Namespace) -> int:
    import json
    import os
    from dataclasses import replace

    from .traffic.harness import ChurnConfig, run_churn, run_churn_matrix

    quick = args.quick or os.environ.get("REPRO_CHURN_QUICK") == "1"
    seeds = args.seeds
    if seeds is None:
        env = os.environ.get("REPRO_CHURN_SEEDS")
        seeds = int(env) if env else (3 if quick else 8)
    ticks = args.ticks if args.ticks is not None else (48 if quick else 96)
    budget = args.budget if args.budget is not None else 12
    config = ChurnConfig(ticks=ticks, budget=budget,
                         strategy=args.strategy, service=args.service)

    seed_range = range(args.seed, args.seed + seeds)
    report = run_churn_matrix(config, seeds=seed_range)
    violations = report["total_violations"]
    mismatches = report["digest_mismatches"]
    print(f"matrix[{args.strategy}]: {report['seeds']} seeds, "
          f"mean hit-rate {report['mean_hit_rate']:.3f}, "
          f"{violations} violations")

    if args.compare:
        comparison = {}
        for strategy in ("popularity", "lru", "lfu", "static"):
            rates = []
            for seed in seed_range:
                run = run_churn(replace(config, seed=seed,
                                        strategy=strategy))
                rates.append(run["hit_rate"])
                violations += (run["verdict_violations"]
                               + run["closure_violations"])
                mismatches += run.get("digest_mismatches", 0)
            comparison[strategy] = sum(rates) / len(rates)
            print(f"  {strategy:>10}: hit-rate "
                  f"{comparison[strategy]:.3f}")
        report["comparison"] = comparison

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if violations or mismatches:
        print(f"FAIL: {violations} oracle violations, "
              f"{mismatches} digest mismatches")
        return 1
    print("oracle clean: every hit verdict matched the full policy")
    return 0


_HANDLERS = {
    "generate": _cmd_generate,
    "solve": _cmd_solve,
    "verify": _cmd_verify,
    "report": _cmd_report,
    "export-lp": _cmd_export_lp,
    "policies": _cmd_policies,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "ping": _cmd_ping,
    "loadgen": _cmd_loadgen,
    "bench-serve": _cmd_bench_serve,
    "churn": _cmd_churn,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except BrokenPipeError:
        # Output piped to a closed reader (e.g. `| head`): exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
