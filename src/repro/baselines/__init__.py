"""Baseline placement strategies the ILP is compared against."""

from .ingress import place_all_at_ingress
from .replicate import place_replicated, replication_rule_count
from .greedy import place_greedy

__all__ = [
    "place_all_at_ingress",
    "place_replicated",
    "replication_rule_count",
    "place_greedy",
]
