"""Baseline: replicate the full policy onto every path (the ``p x r``
strawman the paper compares against in Section V).

Techniques that treat each path independently "place all rules in all
paths and thus end up placing p x r rules in the network" [1].  This
baseline reproduces that cost model: every path of every policy
receives a private full copy of the policy's placeable rules, installed
on the path switch with the most remaining room (first-fit by largest
slack, to give the strawman its best chance of fitting).

No cross-path or cross-policy sharing happens even when the same switch
hosts identical copies, mirroring the per-path bookkeeping of the
compared approach; ``Placement.total_installed`` then reports the
p-x-r-style count that Section V contrasts with the ILP's output.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.depgraph import build_dependency_graph
from ..core.instance import PlacementInstance, RuleKey
from ..core.placement import Placement
from ..milp.model import SolveStatus

__all__ = ["place_replicated", "replication_rule_count"]


def replication_rule_count(instance: PlacementInstance) -> int:
    """The analytic ``sum over policies of paths * placeable rules``."""
    total = 0
    for policy in instance.policies:
        graph = build_dependency_graph(policy)
        placeable = len(set(graph.drop_priorities()) | set(graph.required_permits()))
        total += placeable * len(instance.routing.paths(policy.ingress))
    return total


def place_replicated(instance: PlacementInstance) -> Placement:
    """Install one private policy copy per path.

    Returns an INFEASIBLE placement as soon as some copy fits on no
    switch of its path.  ``placed`` maps rules to the union of switches
    holding copies; the per-copy count (what the strawman pays) is
    tracked separately since the same rule may land on one switch for
    several paths -- the strawman still pays per copy, so loads are
    accumulated per copy, not per distinct rule.
    """
    loads: Dict[str, int] = {}
    placed: Dict[RuleKey, set] = {}
    copies = 0
    for policy in instance.policies:
        graph = build_dependency_graph(policy)
        placeable = sorted(
            set(graph.drop_priorities()) | set(graph.required_permits())
        )
        for path in instance.routing.paths(policy.ingress):
            # Best-slack switch on the path takes the whole copy.
            candidates: List[Tuple[int, str]] = [
                (instance.capacity(s) - loads.get(s, 0), s) for s in path.switches
            ]
            slack, chosen = max(candidates)
            if slack < len(placeable):
                return Placement(instance=instance, status=SolveStatus.INFEASIBLE)
            loads[chosen] = loads.get(chosen, 0) + len(placeable)
            copies += len(placeable)
            for priority in placeable:
                placed.setdefault((policy.ingress, priority), set()).add(chosen)

    placement = Placement(
        instance=instance,
        status=SolveStatus.FEASIBLE,
        placed={key: frozenset(v) for key, v in placed.items()},
        objective_value=float(copies),
    )
    # The strawman's real cost is per-copy; stash it for reporting.
    placement.solver_stats["copies_installed"] = float(copies)
    return placement
