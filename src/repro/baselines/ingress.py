"""Baseline: place every policy entirely on its ingress switch.

The paper notes this "greedy solution" is ideal when it fits -- least
traffic, no duplication -- and that the ILP does not preclude it: when
capacities allow, all-at-ingress is optimal under the total-rules
objective.  As a baseline it shows *when* capacity pressure forces
spreading: it is feasible only while every ingress switch can hold all
of its policies' placeable rules.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from ..core.depgraph import build_dependency_graph
from ..core.instance import PlacementInstance, RuleKey
from ..core.placement import Placement
from ..milp.model import SolveStatus

__all__ = ["place_all_at_ingress"]


def place_all_at_ingress(instance: PlacementInstance) -> Placement:
    """All placeable rules of each policy on the ingress-attached switch.

    Only rules that must exist anywhere are installed: every DROP plus
    the PERMITs some DROP depends on (other PERMITs are no-ops).
    Returns an INFEASIBLE placement when any switch capacity would be
    exceeded.
    """
    placed: Dict[RuleKey, FrozenSet[str]] = {}
    loads: Dict[str, int] = {}
    for policy in instance.policies:
        paths = instance.routing.paths(policy.ingress)
        if not paths:
            continue
        first_switches = {path.switches[0] for path in paths}
        if len(first_switches) != 1:
            raise ValueError(
                f"policy {policy.ingress!r} paths start at different switches; "
                "all-at-ingress baseline is undefined"
            )
        ingress_switch = next(iter(first_switches))
        graph = build_dependency_graph(policy)
        needed = set(graph.drop_priorities()) | set(graph.required_permits())
        for priority in needed:
            placed[(policy.ingress, priority)] = frozenset({ingress_switch})
            loads[ingress_switch] = loads.get(ingress_switch, 0) + 1

    feasible = all(
        load <= instance.capacity(switch) for switch, load in loads.items()
    )
    return Placement(
        instance=instance,
        status=SolveStatus.FEASIBLE if feasible else SolveStatus.INFEASIBLE,
        placed=placed if feasible else {},
        objective_value=float(sum(loads.values())) if feasible else None,
    )
