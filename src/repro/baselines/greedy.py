"""Baseline: first-fit greedy placement along each path.

A non-optimizing heuristic in the spirit of the incremental fast path
(Section IV-E): walk each path from the ingress and put every relevant
DROP's co-location closure (the drop plus its dependency PERMITs, per
Eq. 1) on the first switch with room, reusing rules already present on
a switch when possible.  Fast and often feasible, but with no global
view -- the gap between its total and the ILP optimum is the value of
optimization, quantified in ``benchmarks/test_exp6_baseline_comparison.py``.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.depgraph import build_dependency_graph
from ..core.instance import PlacementInstance, RuleKey
from ..core.placement import Placement
from ..milp.model import SolveStatus

__all__ = ["place_greedy"]


def place_greedy(instance: PlacementInstance) -> Placement:
    """First-fit along paths; INFEASIBLE when some closure fits nowhere."""
    spare: Dict[str, int] = dict(instance.capacities)
    placed: Dict[RuleKey, set] = {}

    def rules_at(switch: str) -> set:
        return {key for key, switches in placed.items() if switch in switches}

    for policy in instance.policies:
        graph = build_dependency_graph(policy)
        ingress = policy.ingress
        for path in instance.routing.paths(ingress):
            for rule in policy.sorted_rules():
                if not rule.is_drop:
                    continue
                if path.flow is not None and not rule.match.intersects(path.flow):
                    continue
                drop_key = (ingress, rule.priority)
                if any(s in path.switches for s in placed.get(drop_key, ())):
                    continue  # already enforced on this path
                closure = [(ingress, p) for p in graph.closure(rule.priority)]
                chosen: Optional[str] = None
                for switch in path.switches:
                    here = rules_at(switch)
                    cost = sum(1 for key in closure if key not in here)
                    if cost <= spare[switch]:
                        chosen = switch
                        break
                if chosen is None:
                    return Placement(instance=instance, status=SolveStatus.INFEASIBLE)
                here = rules_at(chosen)
                for key in closure:
                    if key not in here:
                        spare[chosen] -= 1
                    placed.setdefault(key, set()).add(chosen)

    result = Placement(
        instance=instance,
        status=SolveStatus.FEASIBLE,
        placed={key: frozenset(v) for key, v in placed.items()},
    )
    result.objective_value = float(result.total_installed())
    return result
