"""Network topology model (the paper's ``N``, ``s_i``, ``C_i``, ``l_i``).

A :class:`Topology` is a set of switches with per-switch TCAM rule
capacities, links between switches, and *entry ports* -- the network
ingress/egress points the paper writes ``l_i``.  Entry ports attach to a
specific switch (the edge switch a host or external link connects to).

The graph structure is kept in a :mod:`networkx` graph so that routing
(shortest paths, connectivity checks) can reuse standard algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

__all__ = ["Switch", "EntryPort", "Topology"]


@dataclass
class Switch:
    """A dataplane switch with a bounded ACL rule capacity.

    ``capacity`` is the number of TCAM slots available for ACL rules
    (``C_i``).  The paper notes practical switches expose 1k-2k slots,
    only a fraction of which are free for ACLs.
    """

    name: str
    capacity: int
    #: Optional layer annotation (core/aggregation/edge) used by
    #: fat-tree construction and reporting.
    layer: str = ""

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"switch {self.name!r}: capacity must be >= 0")


@dataclass(frozen=True)
class EntryPort:
    """A network entry (ingress/egress) port ``l_i`` attached to a switch."""

    name: str
    switch: str


class Topology:
    """Switches + links + entry ports, with capacity bookkeeping."""

    def __init__(self) -> None:
        self._switches: Dict[str, Switch] = {}
        self._entry_ports: Dict[str, EntryPort] = {}
        self.graph = nx.Graph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_switch(self, name: str, capacity: int, layer: str = "") -> Switch:
        if name in self._switches:
            raise ValueError(f"duplicate switch {name!r}")
        switch = Switch(name, capacity, layer)
        self._switches[name] = switch
        self.graph.add_node(name)
        return switch

    def add_link(self, a: str, b: str) -> None:
        """A bidirectional switch-to-switch link."""
        for end in (a, b):
            if end not in self._switches:
                raise KeyError(f"unknown switch {end!r}")
        if a == b:
            raise ValueError(f"self-loop link on {a!r}")
        self.graph.add_edge(a, b)

    def add_entry_port(self, name: str, switch: str) -> EntryPort:
        """Attach an ingress/egress port ``l_i`` to an edge switch."""
        if name in self._entry_ports:
            raise ValueError(f"duplicate entry port {name!r}")
        if switch not in self._switches:
            raise KeyError(f"unknown switch {switch!r}")
        port = EntryPort(name, switch)
        self._entry_ports[name] = port
        return port

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def switches(self) -> Tuple[Switch, ...]:
        return tuple(self._switches.values())

    @property
    def switch_names(self) -> Tuple[str, ...]:
        return tuple(self._switches)

    @property
    def entry_ports(self) -> Tuple[EntryPort, ...]:
        return tuple(self._entry_ports.values())

    def switch(self, name: str) -> Switch:
        return self._switches[name]

    def entry_port(self, name: str) -> EntryPort:
        return self._entry_ports[name]

    def has_switch(self, name: str) -> bool:
        return name in self._switches

    def capacity(self, name: str) -> int:
        return self._switches[name].capacity

    def capacities(self) -> Dict[str, int]:
        """Capacity map ``{switch: C}`` (a copy, safe to mutate)."""
        return {s.name: s.capacity for s in self._switches.values()}

    def set_capacity(self, name: str, capacity: int) -> None:
        """Reset one switch's ACL capacity (used by capacity sweeps)."""
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self._switches[name].capacity = capacity

    def set_uniform_capacity(self, capacity: int) -> None:
        """Set every switch's capacity to the same value.

        The paper's experiments sweep one uniform capacity ``C``.
        """
        for switch in self._switches.values():
            switch.capacity = capacity

    def degree(self, name: str) -> int:
        return self.graph.degree[name]

    def neighbors(self, name: str) -> List[str]:
        return list(self.graph.neighbors(name))

    def num_switches(self) -> int:
        return len(self._switches)

    def num_links(self) -> int:
        return self.graph.number_of_edges()

    def is_connected(self) -> bool:
        if not self._switches:
            return True
        return nx.is_connected(self.graph)

    def __contains__(self, name: str) -> bool:
        return name in self._switches

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology({self.num_switches()} switches, {self.num_links()} links, "
            f"{len(self._entry_ports)} entry ports)"
        )
