"""Routing substrate: path sets ``P_i`` produced by an external module.

The paper assumes routing is provided by a separate SDN module and only
consumes its output: for each ingress port ``l_i`` a set of paths
``P_i``, each an ordered list of switches, optionally annotated with a
*flow descriptor* -- the set of packets that follow that route (used by
path slicing, Section IV-C).

:class:`ShortestPathRouter` reproduces the evaluation setup ("a randomly
generated shortest-path routing"): it samples ingress/egress pairs and
picks uniformly among equal-cost shortest paths, deterministically from
a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from ..policy.ternary import TernaryMatch
from .topology import Topology

__all__ = ["Path", "Routing", "ShortestPathRouter"]


@dataclass(frozen=True)
class Path:
    """One routed path ``p_{i,j}``: an ordered set of switches.

    ``flow`` optionally describes the packets following this route; when
    present, placement may *slice* the ingress policy to the rules
    overlapping ``flow`` (paper, Fig. 6).  ``None`` means "all packets
    of the ingress may use this path".
    """

    ingress: str
    egress: str
    switches: Tuple[str, ...]
    flow: Optional[TernaryMatch] = None

    def __post_init__(self) -> None:
        if not self.switches:
            raise ValueError("a path must traverse at least one switch")
        if len(set(self.switches)) != len(self.switches):
            raise ValueError(f"path visits a switch twice: {self.switches}")

    def __len__(self) -> int:
        return len(self.switches)

    def __iter__(self) -> Iterator[str]:
        return iter(self.switches)

    def hop_of(self, switch: str) -> int:
        """0-based hop index of ``switch`` on this path."""
        return self.switches.index(switch)

    def with_flow(self, flow: Optional[TernaryMatch]) -> "Path":
        return Path(self.ingress, self.egress, self.switches, flow)


class Routing:
    """The set of all routed paths, grouped per ingress (``{P_i}``)."""

    def __init__(self, paths: Iterable[Path] = ()) -> None:
        self._by_ingress: Dict[str, List[Path]] = {}
        for path in paths:
            self.add_path(path)

    def add_path(self, path: Path) -> None:
        self._by_ingress.setdefault(path.ingress, []).append(path)

    def remove_paths(self, ingress: str) -> List[Path]:
        """Drop and return all paths of one ingress (route change)."""
        return self._by_ingress.pop(ingress, [])

    @property
    def ingresses(self) -> Tuple[str, ...]:
        return tuple(self._by_ingress)

    def paths(self, ingress: str) -> Tuple[Path, ...]:
        """``P_i``: the paths originating at ``ingress``."""
        return tuple(self._by_ingress.get(ingress, ()))

    def all_paths(self) -> List[Path]:
        return [p for group in self._by_ingress.values() for p in group]

    def num_paths(self) -> int:
        return sum(len(group) for group in self._by_ingress.values())

    def reachable_switches(self, ingress: str) -> Tuple[str, ...]:
        """``S_i``: every switch on some path from ``ingress``.

        Order is deterministic (first-seen along the path list) so the
        ILP variable layout is stable run-to-run.
        """
        seen: Dict[str, None] = {}
        for path in self._by_ingress.get(ingress, ()):
            for switch in path.switches:
                seen.setdefault(switch)
        return tuple(seen)

    def loc(self, switch: str, ingress: str) -> int:
        """``loc(s_k, P_i)``: hop distance from the ingress to ``switch``.

        Defined as the minimum hop index over the paths of ``P_i`` that
        traverse the switch (0 = the ingress-attached switch itself).
        Used by the upstream-drop objective (Section IV-A4); computable
        at compile time, as the paper notes.
        """
        best: Optional[int] = None
        for path in self._by_ingress.get(ingress, ()):
            if switch in path.switches:
                hop = path.hop_of(switch)
                if best is None or hop < best:
                    best = hop
        if best is None:
            raise KeyError(f"switch {switch!r} is not on any path of {ingress!r}")
        return best

    def subset(self, ingresses: Sequence[str]) -> "Routing":
        """A routing restricted to the given ingresses (incremental use)."""
        sub = Routing()
        for ingress in ingresses:
            for path in self._by_ingress.get(ingress, ()):
                sub.add_path(path)
        return sub

    def __len__(self) -> int:
        return self.num_paths()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Routing({self.num_paths()} paths over {len(self._by_ingress)} ingresses)"


class ShortestPathRouter:
    """Randomized shortest-path routing over a topology.

    Reproduces the paper's evaluation routing: for sampled
    ingress/egress port pairs, pick one shortest switch-level path
    uniformly at random among the equal-cost alternatives.  Fully
    deterministic given ``seed``.
    """

    def __init__(self, topology: Topology, seed: int = 0) -> None:
        self.topology = topology
        self.rng = random.Random(seed)

    def shortest_path(self, ingress: str, egress: str) -> Path:
        """One uniformly-sampled shortest path between two entry ports."""
        src = self.topology.entry_port(ingress).switch
        dst = self.topology.entry_port(egress).switch
        if src == dst:
            return Path(ingress, egress, (src,))
        switches = self._sample_shortest(src, dst)
        return Path(ingress, egress, tuple(switches))

    def _sample_shortest(self, src: str, dst: str) -> List[str]:
        """Uniform sample among all shortest src->dst switch paths.

        Walks backwards from ``dst`` over the shortest-path DAG defined
        by BFS distances from ``src``, choosing uniformly among
        predecessors weighted by their path counts.
        """
        graph = self.topology.graph
        dist = nx.single_source_shortest_path_length(graph, src)
        if dst not in dist:
            raise nx.NetworkXNoPath(f"no path between {src!r} and {dst!r}")
        # Count shortest paths from src to each node on the DAG.
        counts: Dict[str, int] = {src: 1}
        order = sorted((n for n in dist), key=lambda n: dist[n])
        for node in order:
            if node == src:
                continue
            total = 0
            for nb in graph.neighbors(node):
                if dist.get(nb, -1) == dist[node] - 1:
                    total += counts.get(nb, 0)
            counts[node] = total
        # Walk back from dst sampling predecessors proportionally.
        path = [dst]
        node = dst
        while node != src:
            preds = [
                nb for nb in graph.neighbors(node)
                if dist.get(nb, -1) == dist[node] - 1
            ]
            weights = [counts[p] for p in preds]
            node = self.rng.choices(preds, weights=weights, k=1)[0]
            path.append(node)
        path.reverse()
        return path

    def random_routing(
        self,
        num_paths: int,
        ingresses: Optional[Sequence[str]] = None,
        paths_per_ingress: Optional[int] = None,
    ) -> Routing:
        """Sample a routing with ``num_paths`` total paths.

        Egresses are drawn uniformly from all other entry ports.  When
        ``ingresses`` is given, paths are spread round-robin over them
        (matching the paper's "p paths in the network" with one policy
        per ingress); otherwise ingresses are sampled uniformly too.
        """
        ports = [p.name for p in self.topology.entry_ports]
        if len(ports) < 2:
            raise ValueError("need at least two entry ports to route")
        if ingresses is None:
            ingresses = ports
        routing = Routing()
        produced = 0
        idx = 0
        while produced < num_paths:
            ingress = ingresses[idx % len(ingresses)]
            idx += 1
            egress = self.rng.choice([p for p in ports if p != ingress])
            routing.add_path(self.shortest_path(ingress, egress))
            produced += 1
            if paths_per_ingress is not None and idx >= paths_per_ingress * len(ingresses):
                break
        return routing
