"""k-ary fat-tree topology generation (Al-Fares et al. [26]).

The paper's scalability experiments all run on fat-trees: for ``k``
ports per switch the topology has

* ``(k/2)^2`` core switches,
* ``k`` pods, each with ``k/2`` aggregation and ``k/2`` edge switches
  (so ``5k^2/4`` switches in total), and
* ``k^3/4`` hosts, ``k/2`` per edge switch.

Every host attachment point becomes a network entry port ``l_i``; host
``h`` on edge switch ``e`` yields port ``e/h``.  Small ``k`` values
(4, 6, 8) give laptop-scale stand-ins for the paper's k=8/16/32 runs
(see DESIGN.md, Substitutions).
"""

from __future__ import annotations

from typing import Optional

from .topology import Topology

__all__ = [
    "fattree",
    "fattree_num_switches",
    "fattree_num_hosts",
    "fattree_num_core",
]


def fattree_num_switches(k: int) -> int:
    """``5k^2/4`` switches, per the paper / Al-Fares."""
    return 5 * k * k // 4


def fattree_num_hosts(k: int) -> int:
    """``k^3/4`` hosts."""
    return k ** 3 // 4


def fattree_num_core(k: int) -> int:
    return (k // 2) ** 2


def fattree(k: int, capacity: int = 200, hosts_per_edge: Optional[int] = None) -> Topology:
    """Build a k-ary fat-tree with uniform switch capacity.

    Parameters
    ----------
    k:
        Ports per switch; must be even and >= 2.
    capacity:
        Uniform ACL rule capacity ``C`` for every switch (the paper
        sweeps 200 and 1000).
    hosts_per_edge:
        Entry ports attached to each edge switch.  Defaults to the
        canonical ``k/2``; benchmarks may lower it to bound the number
        of ingress policies independently of the topology size.

    Naming: ``core{i}``, ``agg{pod}_{i}``, ``edge{pod}_{i}`` and entry
    ports ``h{pod}_{edge}_{i}``.
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity k must be even and >= 2, got {k}")
    half = k // 2
    if hosts_per_edge is None:
        hosts_per_edge = half
    if hosts_per_edge < 0:
        raise ValueError("hosts_per_edge must be >= 0")

    topo = Topology()

    core_names = [f"core{i}" for i in range(half * half)]
    for name in core_names:
        topo.add_switch(name, capacity, layer="core")

    for pod in range(k):
        agg_names = [f"agg{pod}_{i}" for i in range(half)]
        edge_names = [f"edge{pod}_{i}" for i in range(half)]
        for name in agg_names:
            topo.add_switch(name, capacity, layer="aggregation")
        for name in edge_names:
            topo.add_switch(name, capacity, layer="edge")

        # Pod-internal full bipartite agg <-> edge wiring.
        for agg in agg_names:
            for edge in edge_names:
                topo.add_link(agg, edge)

        # Each aggregation switch i connects to core switches
        # [i*half, (i+1)*half) -- the standard striping.
        for i, agg in enumerate(agg_names):
            for j in range(half):
                topo.add_link(agg, core_names[i * half + j])

        # Hosts on edge switches become entry ports.
        for e, edge in enumerate(edge_names):
            for h in range(hosts_per_edge):
                topo.add_entry_port(f"h{pod}_{e}_{h}", edge)

    return topo
