"""Failure injection: link/switch failures and routing repair.

Networks fail; the paper's incremental machinery (Section IV-E) exists
precisely because routes change underneath a deployed placement.  This
module provides the failure side of that story:

* :func:`fail_link` / :func:`fail_switch` -- take elements out of a
  topology's graph (restorable handles returned);
* :func:`affected_ingresses` -- which deployed paths a failure breaks;
* :func:`reroute_after_failure` -- recompute shortest paths for the
  broken ingresses and push them through an
  :class:`~repro.core.incremental.IncrementalDeployer`, returning the
  per-ingress outcomes.

Together with the deployer's rollback behaviour this gives the full
operational loop: fail -> detect -> re-route -> re-place incrementally,
never violating capacity or policy semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from .routing import Path, Routing, ShortestPathRouter
from .topology import Topology

__all__ = [
    "FailedLink",
    "FailedSwitch",
    "fail_link",
    "fail_switch",
    "restore",
    "affected_ingresses",
    "reroute_after_failure",
]


@dataclass(frozen=True)
class FailedLink:
    """A removed link, restorable via :func:`restore`."""

    a: str
    b: str


@dataclass(frozen=True)
class FailedSwitch:
    """A removed switch and the links it held (for restoration)."""

    name: str
    links: Tuple[Tuple[str, str], ...]


def fail_link(topology: Topology, a: str, b: str) -> FailedLink:
    """Remove one link from the topology graph."""
    if not topology.graph.has_edge(a, b):
        raise KeyError(f"no link between {a!r} and {b!r}")
    topology.graph.remove_edge(a, b)
    return FailedLink(a, b)


def fail_switch(topology: Topology, name: str) -> FailedSwitch:
    """Take a switch out of the forwarding graph (node kept, edges cut).

    The switch object remains registered (its TCAM may still hold
    state), but no path can traverse it until restored.
    """
    if name not in topology:
        raise KeyError(f"unknown switch {name!r}")
    links = tuple((name, neighbor) for neighbor in topology.neighbors(name))
    for _, neighbor in links:
        topology.graph.remove_edge(name, neighbor)
    return FailedSwitch(name, links)


def restore(topology: Topology, failure) -> None:
    """Undo a :func:`fail_link` or :func:`fail_switch`."""
    if isinstance(failure, FailedLink):
        topology.add_link(failure.a, failure.b)
    elif isinstance(failure, FailedSwitch):
        for a, b in failure.links:
            topology.add_link(a, b)
    else:
        raise TypeError(f"unknown failure record {failure!r}")


def _path_broken(topology: Topology, path: Path,
                 dead_switch: Optional[str] = None) -> bool:
    if dead_switch is not None and dead_switch in path.switches:
        return True
    for a, b in zip(path.switches, path.switches[1:]):
        if not topology.graph.has_edge(a, b):
            return True
    return False


def affected_ingresses(topology: Topology, routing: Routing,
                       failure) -> List[str]:
    """Ingresses with at least one path broken by the failure.

    Call *after* applying the failure to the topology.
    """
    dead_switch = failure.name if isinstance(failure, FailedSwitch) else None
    broken: Dict[str, None] = {}
    for path in routing.all_paths():
        if _path_broken(topology, path, dead_switch):
            broken.setdefault(path.ingress)
    return list(broken)


@dataclass
class RepairOutcome:
    """Result of one post-failure repair run.

    Every affected ingress lands in exactly one bucket.  ``failed`` and
    ``disconnected`` ingresses are *fail-closed*: their prior deployment
    is untouched (the deployer rolled back) or their traffic has no
    surviving path at all -- in neither case does a packet the policy
    drops get delivered.
    """

    rerouted: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    #: ingresses whose egress became unreachable entirely.
    disconnected: List[str] = field(default_factory=list)

    @property
    def fully_repaired(self) -> bool:
        return not self.failed and not self.disconnected

    @property
    def fail_closed(self) -> Tuple[str, ...]:
        """Ingresses left without a working reroute, in a safe state."""
        return tuple(self.failed) + tuple(self.disconnected)


def reroute_after_failure(
    deployer,
    topology: Topology,
    routing: Routing,
    failure,
    seed: int = 0,
) -> RepairOutcome:
    """Recompute and redeploy paths for every ingress a failure broke.

    For each affected ingress, all of its paths are recomputed on the
    degraded topology (unbroken paths are kept as-is) and handed to
    ``deployer.reroute_policy``.  Rollback semantics are the deployer's:
    an infeasible re-placement leaves the previous state intact and is
    reported in ``failed``.

    An ingress with no surviving route never raises: it is reported in
    ``disconnected`` (a fail-closed outcome -- its traffic simply stops)
    and repair proceeds for the remaining ingresses.  This covers the
    egress being unreachable, endpoints vanishing from the graph
    outright, and the degenerate single-switch path whose only "route"
    would traverse the dead switch itself.
    """
    outcome = RepairOutcome()
    router = ShortestPathRouter(topology, seed=seed)
    dead_switch = failure.name if isinstance(failure, FailedSwitch) else None
    for ingress in affected_ingresses(topology, routing, failure):
        new_paths: List[Path] = []
        disconnected = False
        for path in routing.paths(ingress):
            if not _path_broken(topology, path, dead_switch):
                new_paths.append(path)
                continue
            try:
                replacement = router.shortest_path(path.ingress, path.egress)
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                disconnected = True
                break
            if _path_broken(topology, replacement, dead_switch):
                # A "shortest path" through the failure itself: the
                # degenerate ingress==egress-on-dead-switch case.
                disconnected = True
                break
            new_paths.append(replacement.with_flow(path.flow))
        if disconnected:
            outcome.disconnected.append(ingress)
            continue
        result = deployer.reroute_policy(ingress, new_paths)
        if result.is_feasible:
            outcome.rerouted.append(ingress)
        else:
            outcome.failed.append(ingress)
    return outcome
