"""Network substrate: topologies, fat-tree generation, and routing."""

from .topology import Switch, EntryPort, Topology
from .fattree import (
    fattree,
    fattree_num_switches,
    fattree_num_hosts,
    fattree_num_core,
)
from .routing import Path, Routing, ShortestPathRouter
from .generators import line, ring, star, leaf_spine, random_graph
from .kpaths import k_shortest_paths, KPathRouter
from .failures import (
    FailedLink,
    FailedSwitch,
    fail_link,
    fail_switch,
    restore,
    affected_ingresses,
    reroute_after_failure,
)

__all__ = [
    "k_shortest_paths",
    "KPathRouter",
    "FailedLink",
    "FailedSwitch",
    "fail_link",
    "fail_switch",
    "restore",
    "affected_ingresses",
    "reroute_after_failure",
    "line",
    "ring",
    "star",
    "leaf_spine",
    "random_graph",
    "Switch",
    "EntryPort",
    "Topology",
    "fattree",
    "fattree_num_switches",
    "fattree_num_hosts",
    "fattree_num_core",
    "Path",
    "Routing",
    "ShortestPathRouter",
]
