"""k-shortest-path routing (Yen's algorithm) for multipath deployments.

The paper's routing module is external and may hand the placer *many*
paths per ingress (its experiments use up to 1024).  Real traffic
engineering often pins a flow to its k best routes; this module
provides a from-scratch Yen's algorithm over the topology graph plus a
convenience router emitting one ``P_i`` per ingress with the k shortest
loop-free switch paths to each egress.

Yen's algorithm is implemented directly (BFS shortest path + spur-node
deviations with root-path filtering) rather than through
``networkx.shortest_simple_paths`` so the repository owns its substrate;
the networkx generator serves as the test oracle.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .routing import Path, Routing
from .topology import Topology

__all__ = ["k_shortest_paths", "KPathRouter"]


def _bfs_shortest(graph: nx.Graph, src: str, dst: str,
                  banned_edges: Set[Tuple[str, str]],
                  banned_nodes: Set[str]) -> Optional[List[str]]:
    """Shortest src->dst path avoiding banned elements (BFS; unit
    weights).  Deterministic tie-breaking via sorted neighbor order."""
    if src in banned_nodes or dst in banned_nodes:
        return None
    parents: Dict[str, Optional[str]] = {src: None}
    frontier = [src]
    while frontier:
        next_frontier: List[str] = []
        for node in frontier:
            for neighbor in sorted(graph.neighbors(node)):
                if neighbor in parents or neighbor in banned_nodes:
                    continue
                if (node, neighbor) in banned_edges or (neighbor, node) in banned_edges:
                    continue
                parents[neighbor] = node
                if neighbor == dst:
                    path = [dst]
                    while parents[path[-1]] is not None:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                next_frontier.append(neighbor)
        frontier = next_frontier
    return None


def k_shortest_paths(topology: Topology, src: str, dst: str,
                     k: int) -> List[Tuple[str, ...]]:
    """The k shortest loop-free switch paths between two switches.

    Classic Yen: the best path via BFS, then candidate deviations that
    ban, at each spur node, the edges used by already-accepted paths
    sharing the same root prefix.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    graph = topology.graph
    first = _bfs_shortest(graph, src, dst, set(), set())
    if first is None:
        return []
    accepted: List[Tuple[str, ...]] = [tuple(first)]
    candidates: List[Tuple[int, Tuple[str, ...]]] = []
    seen: Set[Tuple[str, ...]] = {tuple(first)}

    while len(accepted) < k:
        previous = accepted[-1]
        for spur_index in range(len(previous) - 1):
            spur_node = previous[spur_index]
            root = previous[: spur_index + 1]
            banned_edges: Set[Tuple[str, str]] = set()
            for path in accepted:
                if tuple(path[: spur_index + 1]) == tuple(root) and len(path) > spur_index + 1:
                    banned_edges.add((path[spur_index], path[spur_index + 1]))
            banned_nodes = set(root[:-1])
            spur = _bfs_shortest(graph, spur_node, dst, banned_edges, banned_nodes)
            if spur is None:
                continue
            candidate = tuple(root[:-1]) + tuple(spur)
            if candidate not in seen:
                seen.add(candidate)
                heapq.heappush(candidates, (len(candidate), candidate))
        if not candidates:
            break
        _, best = heapq.heappop(candidates)
        accepted.append(best)
    return accepted


class KPathRouter:
    """Emit k-way multipath routings over entry-port pairs."""

    def __init__(self, topology: Topology, k: int = 2) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.topology = topology
        self.k = k

    def paths_between(self, ingress: str, egress: str) -> List[Path]:
        src = self.topology.entry_port(ingress).switch
        dst = self.topology.entry_port(egress).switch
        if src == dst:
            return [Path(ingress, egress, (src,))]
        return [
            Path(ingress, egress, switches)
            for switches in k_shortest_paths(self.topology, src, dst, self.k)
        ]

    def routing(self, pairs: Sequence[Tuple[str, str]]) -> Routing:
        """A routing with up to k paths per (ingress, egress) pair."""
        routing = Routing()
        for ingress, egress in pairs:
            for path in self.paths_between(ingress, egress):
                routing.add_path(path)
        return routing
