"""Additional topology generators beyond the fat-tree.

The paper evaluates on fat-trees, but a placement library is only
adoptable if it runs on whatever network the user has.  These
generators cover the common shapes used in datacenter and enterprise
work -- lines, rings, stars, leaf-spine (2-tier Clos), and seeded
random graphs -- all producing the same :class:`~repro.net.topology.Topology`
the placement engines consume.
"""

from __future__ import annotations

import random
from typing import Optional

import networkx as nx

from .topology import Topology

__all__ = ["line", "ring", "star", "leaf_spine", "random_graph"]


def line(num_switches: int, capacity: int = 100,
         hosts_per_end: int = 1) -> Topology:
    """A chain ``s0 - s1 - ... - sN`` with entry ports on both ends.

    The smallest topology where upstream-vs-downstream placement
    matters; used heavily by tests and docs.
    """
    if num_switches < 1:
        raise ValueError("need at least one switch")
    topo = Topology()
    names = [f"s{i}" for i in range(num_switches)]
    for name in names:
        topo.add_switch(name, capacity)
    for a, b in zip(names, names[1:]):
        topo.add_link(a, b)
    for h in range(hosts_per_end):
        topo.add_entry_port(f"left{h}", names[0])
        topo.add_entry_port(f"right{h}", names[-1])
    return topo


def ring(num_switches: int, capacity: int = 100) -> Topology:
    """A cycle with one entry port per switch (metro/enterprise rings)."""
    if num_switches < 3:
        raise ValueError("a ring needs at least 3 switches")
    topo = Topology()
    names = [f"r{i}" for i in range(num_switches)]
    for name in names:
        topo.add_switch(name, capacity)
    for i, name in enumerate(names):
        topo.add_link(name, names[(i + 1) % num_switches])
        topo.add_entry_port(f"h{i}", name)
    return topo


def star(num_leaves: int, capacity: int = 100) -> Topology:
    """One hub switch with ``num_leaves`` leaf switches, one host each."""
    if num_leaves < 1:
        raise ValueError("need at least one leaf")
    topo = Topology()
    topo.add_switch("hub", capacity, layer="core")
    for i in range(num_leaves):
        leaf = f"leaf{i}"
        topo.add_switch(leaf, capacity, layer="edge")
        topo.add_link("hub", leaf)
        topo.add_entry_port(f"h{i}", leaf)
    return topo


def leaf_spine(leaves: int, spines: int, capacity: int = 100,
               hosts_per_leaf: int = 2) -> Topology:
    """A 2-tier Clos: every leaf connects to every spine.

    The dominant modern datacenter fabric; paths are leaf-spine-leaf,
    so every inter-leaf flow has ``spines`` equal-cost routes.
    """
    if leaves < 1 or spines < 1:
        raise ValueError("need at least one leaf and one spine")
    topo = Topology()
    for s in range(spines):
        topo.add_switch(f"spine{s}", capacity, layer="spine")
    for l in range(leaves):
        leaf = f"leaf{l}"
        topo.add_switch(leaf, capacity, layer="leaf")
        for s in range(spines):
            topo.add_link(leaf, f"spine{s}")
        for h in range(hosts_per_leaf):
            topo.add_entry_port(f"h{l}_{h}", leaf)
    return topo


def random_graph(num_switches: int, degree: int = 3, capacity: int = 100,
                 hosts: Optional[int] = None, seed: int = 0) -> Topology:
    """A connected random ``degree``-regular-ish graph with hosts spread
    round-robin (enterprise/WAN-style irregular networks).

    Uses a seeded networkx random regular graph, retrying until
    connected (guaranteed to terminate for sensible parameters).
    """
    if num_switches < 2:
        raise ValueError("need at least two switches")
    if degree >= num_switches:
        raise ValueError("degree must be below the switch count")
    rng = random.Random(seed)
    for attempt in range(100):
        if (degree * num_switches) % 2:
            degree += 1  # regular graphs need an even degree sum
        graph = nx.random_regular_graph(
            degree, num_switches, seed=rng.randint(0, 2 ** 31)
        )
        if nx.is_connected(graph):
            break
    else:  # pragma: no cover - astronomically unlikely
        raise RuntimeError("could not generate a connected graph")
    topo = Topology()
    for node in range(num_switches):
        topo.add_switch(f"n{node}", capacity)
    for a, b in graph.edges:
        topo.add_link(f"n{a}", f"n{b}")
    if hosts is None:
        hosts = num_switches
    for h in range(hosts):
        topo.add_entry_port(f"h{h}", f"n{h % num_switches}")
    return topo
