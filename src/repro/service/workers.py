"""Crash-isolated task execution for the placement daemon.

A long-running service cannot let one bad request take the process
down: a solver segfault, an OOM kill, or a pathological instance must
fail *that request* and nothing else.  :class:`WorkerPool` gives every
admitted request its own forked worker process (the same fork-based
isolation the portfolio race and component pool use) and turns the
three ways a worker can end into three distinct outcomes:

* normal return        -- the task's JSON-able payload;
* Python exception     -- :class:`WorkerError` carrying the traceback
  (an *error* answer, the daemon keeps running);
* hard death           -- exit without posting (``os._exit``, signal,
  OOM): :class:`WorkerCrash`, again scoped to the one request.

``executor="inline"`` runs tasks in-process for determinism (tests,
platforms without ``fork``); inline tasks still map exceptions to
:class:`WorkerError` but cannot survive hard death -- crash isolation
is exactly what the process executor buys.

The module also defines the service's three task functions.  Tasks
receive live objects (fork shares the parent's memory copy-on-write;
nothing is pickled on the way in) and return compact JSON-able payloads
(the only data crossing the process boundary on the way out).  Notably
the delta task runs :class:`~repro.core.incremental.IncrementalDeployer`
*previews* -- compute without commit -- because a forked child's state
dies with it: the daemon applies the returned placement to the live
deployment only after the worker has succeeded.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional

from .. import io as repro_io
from ..core.incremental import IncrementalDeployer
from ..core.instance import PlacementInstance
from ..core.objectives import Combined, TotalRules, UpstreamDrops
from ..core.placement import PlacerConfig, RulePlacer
from ..core.verify import verify_placement
from .protocol import DeltaRequest, SolveRequest

__all__ = [
    "SessionWorker",
    "WorkerCrash",
    "WorkerError",
    "WorkerPool",
    "commit_delta",
    "delta_task",
    "solve_task",
    "verify_task",
]


class WorkerError(RuntimeError):
    """The task raised: carries the worker-side traceback text."""


class WorkerCrash(RuntimeError):
    """The worker died without answering (hard crash or kill)."""


class WorkerPool:
    """Run one task per isolated worker process, bounded in parallelism.

    ``max_workers`` bounds concurrently live workers (a semaphore, not
    a pre-forked pool: each request forks fresh, so a crashed worker
    never poisons a reusable slot).  ``run`` blocks the calling
    dispatcher thread until its worker finishes -- concurrency comes
    from the broker running several dispatcher threads.
    """

    def __init__(self, executor: str = "process",
                 max_workers: int = 4) -> None:
        if executor not in ("process", "inline"):
            raise ValueError(f"unknown executor {executor!r}")
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if executor == "process":
            import multiprocessing

            try:
                self._ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                executor = "inline"
                self._ctx = None
        else:
            self._ctx = None
        self.executor = executor
        self.max_workers = max_workers
        self._slots = threading.Semaphore(max_workers)
        self._live = 0
        self._live_lock = threading.Lock()

    @property
    def live_workers(self) -> int:
        with self._live_lock:
            return self._live

    # ------------------------------------------------------------------

    def run(self, task: Callable[..., Dict[str, Any]], *args: Any,
            timeout: Optional[float] = None) -> Dict[str, Any]:
        """Execute ``task(*args)`` in isolation and return its payload.

        Raises :class:`WorkerError` on a task exception,
        :class:`WorkerCrash` on worker death, and
        :class:`TimeoutError` when ``timeout`` elapses first (the
        straggler is terminated -- a hung solver must not pin a slot
        forever).
        """
        self._slots.acquire()
        with self._live_lock:
            self._live += 1
        try:
            if self.executor == "inline":
                return self._run_inline(task, args)
            return self._run_process(task, args, timeout)
        finally:
            with self._live_lock:
                self._live -= 1
            self._slots.release()

    # ------------------------------------------------------------------

    @staticmethod
    def _run_inline(task, args) -> Dict[str, Any]:
        try:
            return task(*args)
        except Exception:
            raise WorkerError(traceback.format_exc(limit=6)) from None

    def _run_process(self, task, args, timeout) -> Dict[str, Any]:
        recv, send = self._ctx.Pipe(duplex=False)
        # Non-daemonic on purpose: solve tasks fork their own engine
        # races / component pools, which daemonic processes may not.
        proc = self._ctx.Process(
            target=_worker_main, args=(send, task, args), daemon=False
        )
        proc.start()
        send.close()  # the child's end; keep only the read side here
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            while True:
                wait = 0.05
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"worker exceeded {timeout:.3f}s; terminated"
                        )
                    wait = min(wait, remaining)
                if recv.poll(wait):
                    try:
                        kind, payload = recv.recv()
                    except EOFError:
                        raise WorkerCrash(
                            "worker closed its pipe without answering"
                        ) from None
                    if kind == "done":
                        return payload
                    raise WorkerError(str(payload))
                if not proc.is_alive():
                    # Dead without posting: a hard crash.  Drain the
                    # pipe once more in case the message raced the exit.
                    if recv.poll(0):
                        continue
                    raise WorkerCrash(
                        f"worker died with exit code {proc.exitcode}"
                    )
        finally:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - stubborn child
                proc.kill()
                proc.join(timeout=1.0)
            recv.close()


def _worker_main(conn, task, args) -> None:
    """Child entry point: run the task, post exactly one message."""
    try:
        payload = task(*args)
        conn.send(("done", payload))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc(limit=6)))
        except Exception:  # pragma: no cover - pipe gone
            pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Task functions
# ---------------------------------------------------------------------------


def _objective_for(name: str):
    if name == "rules":
        return TotalRules()
    if name == "upstream":
        return UpstreamDrops()
    if name == "combined":
        return Combined(((1.0, TotalRules()), (0.001, UpstreamDrops())))
    raise ValueError(f"unknown objective {name!r}")


def solve_task(request: SolveRequest,
               time_limit: Optional[float] = None) -> Dict[str, Any]:
    """Full placement through the standard pipeline.

    ``backend="portfolio"`` races every exact engine;  anything else
    goes through the named MILP backend.  Component decomposition and
    the bulk-encoding fast path apply exactly as in one-shot solves.
    """
    config = PlacerConfig(
        objective=_objective_for(request.objective),
        enable_merging=request.merging,
        backend=request.backend,
        time_limit=time_limit,
        deadline=time_limit if request.backend == "portfolio" else None,
    )
    placement = RulePlacer(config).place(request.instance)
    return {
        "placement": repro_io.placement_to_dict(placement),
        "feasible": placement.is_feasible,
        "objective": placement.objective_value,
        "installed_rules": (
            placement.total_installed() if placement.is_feasible else 0
        ),
        "summary": placement.summary(),
    }


def delta_task(deployer: IncrementalDeployer, request: DeltaRequest,
               time_limit: Optional[float] = None) -> Dict[str, Any]:
    """One incremental operation, previewed (computed, NOT committed).

    The greedy -> sub-ILP ladder runs here in the isolated worker; the
    broker applies the returned placement to the live deployer only on
    success, so a crashed delta leaves the deployment untouched.
    """
    if request.op == "install":
        policy = repro_io.policy_from_dict(request.policy)
        paths = _paths_from(request.paths)
        result = deployer.preview_install(policy, paths,
                                          time_limit=time_limit)
    elif request.op == "reroute":
        paths = _paths_from(request.paths)
        result = deployer.preview_reroute(request.ingress, paths,
                                          time_limit=time_limit)
    elif request.op == "modify":
        policy = repro_io.policy_from_dict(request.policy)
        result = deployer.preview_modify(policy, time_limit=time_limit)
    else:
        raise ValueError(f"delta op {request.op!r} does not need a worker")
    return {
        "status": result.status.value,
        "method": result.method,
        "feasible": result.is_feasible,
        "seconds": result.seconds,
        "installed_rules": result.installed_rules,
        "solver_stats": dict(getattr(result, "solver_stats", {}) or {}),
        "placed": [
            {"ingress": key[0], "priority": key[1],
             "switches": sorted(switches)}
            for key, switches in sorted(result.placed.items())
        ],
    }


def commit_delta(deployer: IncrementalDeployer, request: DeltaRequest,
                 placed) -> int:
    """Apply a previewed delta's placement to a live deployer.

    Shared by the broker (committing to the authoritative deployment)
    and the session worker child (keeping its warm mirror in sync).
    Returns the deployer's total installed rules after the commit.
    """
    if request.op == "install":
        policy = repro_io.policy_from_dict(request.policy)
        deployer.commit_install(policy, _paths_from(request.paths), placed)
    elif request.op == "reroute":
        deployer.apply_reroute(request.ingress, _paths_from(request.paths),
                               placed)
    elif request.op == "modify":
        policy = repro_io.policy_from_dict(request.policy)
        deployer.apply_modify(policy, placed)
    else:
        raise ValueError(f"cannot commit delta op {request.op!r}")
    return deployer.total_installed()


def verify_task(instance: PlacementInstance,
                placement_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Exact verification of a placement against its instance."""
    placement = repro_io.placement_from_dict(placement_dict, instance)
    report = verify_placement(placement)
    return {
        "ok": report.ok,
        "errors": list(report.errors),
        "paths_checked": report.paths_checked,
        "switches_checked": report.switches_checked,
    }


def _paths_from(specs: List[Dict[str, Any]]):
    from ..net.routing import Path
    from ..policy.ternary import TernaryMatch

    paths = []
    for spec in specs:
        flow = spec.get("flow")
        paths.append(Path(
            spec["ingress"], spec["egress"], tuple(spec["switches"]),
            None if flow is None else TernaryMatch.from_string(flow),
        ))
    return paths


# ---------------------------------------------------------------------------
# Warm-session worker
# ---------------------------------------------------------------------------


class SessionWorker:
    """A long-lived worker pinned to one deployment's warm solver session.

    The per-request :class:`WorkerPool` cannot host a warm session: the
    whole point of a session is state that *survives* requests (encoded
    model, dependency graphs, incumbents), and pool workers die with
    their request.  A :class:`SessionWorker` is the persistent variant:

    * ``executor="process"`` forks **one** child at attach time.  The
      fork's copy-on-write memory gives the child a snapshot of the live
      deployer; the child attaches a
      :class:`~repro.solve.session.SolverSession` to it and then serves
      ``preview`` / ``commit`` / ``stats`` commands over a pipe until
      shut down.  Commits are mirrored into the child so its snapshot
      tracks the authoritative deployment in the parent.  A child that
      dies or hangs surfaces as :class:`WorkerCrash` /
      :class:`TimeoutError` -- the broker's cue to discard the session
      and rebuild it cold.
    * ``executor="inline"`` attaches the session directly to the live
      deployer (tests, platforms without ``fork``).  ``commit`` is a
      no-op because the mirror *is* the authority.

    Crash isolation is weaker than the pool's by design: a crash loses
    the warm state but never the deployment, because the authoritative
    deployer lives in the parent and is only mutated after a successful
    preview.
    """

    def __init__(self, deployer: IncrementalDeployer,
                 backend: str = "highs",
                 executor: str = "process") -> None:
        if executor not in ("process", "inline"):
            raise ValueError(f"unknown executor {executor!r}")
        self.backend = backend
        self._lock = threading.Lock()
        self._dead = False
        self._ctx = None
        self._proc = None
        self._conn = None
        self._deployer: Optional[IncrementalDeployer] = None
        if executor == "process":
            import multiprocessing

            try:
                self._ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                executor = "inline"
        self.executor = executor
        if self.executor == "process":
            parent, child = self._ctx.Pipe(duplex=True)
            self._proc = self._ctx.Process(
                target=_session_child_main,
                args=(child, deployer, backend), daemon=False,
            )
            self._proc.start()
            child.close()
            self._conn = parent
        else:
            from ..solve.session import SolverSession

            self._deployer = deployer
            self._session = SolverSession(backend=backend)
            deployer.attach_session(self._session)

    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        if self._dead:
            return False
        if self.executor == "inline":
            return True
        return self._proc.is_alive()

    @property
    def pid(self) -> Optional[int]:
        """The child's OS pid (``None`` inline) -- the supervisor's
        health report and the chaos harness's kill target."""
        if self.executor == "inline" or self._proc is None:
            return None
        return self._proc.pid

    def preview(self, request: DeltaRequest,
                time_limit: Optional[float] = None,
                timeout: Optional[float] = None) -> Dict[str, Any]:
        """Run one delta preview through the warm session."""
        return self._call(("preview", request, time_limit), timeout)

    def commit(self, request: DeltaRequest, placed,
               timeout: Optional[float] = None) -> None:
        """Mirror a committed delta into the worker's snapshot."""
        if self.executor == "inline":
            return  # the mirror is the live deployer; already committed
        placed_wire = {key: sorted(switches)
                       for key, switches in placed.items()}
        self._call(("commit", request, placed_wire), timeout)

    def remove(self, ingress: str,
               timeout: Optional[float] = None) -> None:
        """Mirror a policy removal into the worker's snapshot."""
        if self.executor == "inline":
            return
        self._call(("remove", ingress), timeout)

    def stats(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Session telemetry (warm hits, fallbacks, entries...)."""
        if self.executor == "inline":
            return {"session": self._session.telemetry(),
                    "total_installed": self._deployer.total_installed()}
        return self._call(("stats",), timeout)

    def close(self) -> None:
        """Shut the worker down; safe to call twice or after a crash."""
        if self.executor == "inline":
            if not self._dead and self._deployer is not None:
                self._deployer.detach_session()
            self._dead = True
            return
        with self._lock:
            if not self._dead:
                try:
                    self._conn.send(("shutdown",))
                except (BrokenPipeError, OSError):
                    pass
            self._dead = True
        self._proc.join(timeout=1.0)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=1.0)
        if self._proc.is_alive():  # pragma: no cover - stubborn child
            self._proc.kill()
            self._proc.join(timeout=1.0)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    # ------------------------------------------------------------------

    def _call(self, message, timeout: Optional[float]) -> Dict[str, Any]:
        if self.executor == "inline":
            return self._call_inline(message)
        with self._lock:
            if self._dead or not self._proc.is_alive():
                self._dead = True
                raise WorkerCrash("session worker is gone")
            try:
                self._conn.send(message)
            except (BrokenPipeError, OSError):
                self._dead = True
                raise WorkerCrash(
                    "session worker pipe is closed") from None
            deadline = (None if timeout is None
                        else time.monotonic() + timeout)
            while True:
                wait = 0.05
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        # A hung persistent worker must not pin the
                        # deployment forever: kill it; the broker
                        # rebuilds the session cold.
                        self._dead = True
                        self._proc.terminate()
                        raise TimeoutError(
                            f"session worker exceeded {timeout:.3f}s; "
                            f"terminated")
                    wait = min(wait, remaining)
                if self._conn.poll(wait):
                    try:
                        kind, payload = self._conn.recv()
                    except EOFError:
                        self._dead = True
                        raise WorkerCrash(
                            "session worker closed its pipe without "
                            "answering") from None
                    if kind == "done":
                        return payload
                    raise WorkerError(str(payload))
                if not self._proc.is_alive():
                    if self._conn.poll(0):
                        continue
                    self._dead = True
                    raise WorkerCrash(
                        f"session worker died with exit code "
                        f"{self._proc.exitcode}")

    def _call_inline(self, message) -> Dict[str, Any]:
        try:
            return _session_serve(self._deployer, self._session, message)
        except Exception:
            raise WorkerError(traceback.format_exc(limit=6)) from None


def _session_serve(deployer: IncrementalDeployer, session,
                   message) -> Dict[str, Any]:
    """Execute one session-worker command against a deployer+session."""
    op = message[0]
    if op == "preview":
        _op, request, time_limit = message
        return delta_task(deployer, request, time_limit)
    if op == "commit":
        _op, request, placed_wire = message
        placed = {key: frozenset(switches)
                  for key, switches in placed_wire.items()}
        return {"total_installed": commit_delta(deployer, request, placed)}
    if op == "remove":
        deployer.remove_policy(message[1])
        return {"total_installed": deployer.total_installed()}
    if op == "stats":
        return {"session": session.telemetry(),
                "total_installed": deployer.total_installed()}
    raise ValueError(f"unknown session worker op {op!r}")


def _session_child_main(conn, deployer: IncrementalDeployer,
                        backend: str) -> None:
    """Child entry point: hold the warm session, answer until shutdown."""
    from ..solve.session import SolverSession

    session = SolverSession(backend=backend)
    deployer.attach_session(session)
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return
            if message[0] == "shutdown":
                try:
                    conn.send(("done", {}))
                except (BrokenPipeError, OSError):
                    pass
                return
            try:
                payload = _session_serve(deployer, session, message)
                conn.send(("done", payload))
            except Exception:
                try:
                    conn.send(("error", traceback.format_exc(limit=6)))
                except Exception:  # pragma: no cover - pipe gone
                    return
    finally:
        conn.close()
