"""Write-ahead deployment journal: crash-safe durability for the daemon.

Everything the daemon promises to remember -- named deployments, the
deltas applied to them, cache epochs, warm-session attachments -- lives
in process memory.  One ``kill -9`` would silently lose every acked
commit, which is incompatible with a serving system: a client that saw
``status=ok`` must find that state again after a restart.  The journal
is the fix, in the classic write-ahead shape:

* **Append-only NDJSON log.**  One committed operation is one JSON
  object on one line: ``{"v", "seq", "kind", "data", "chain"}``.
  ``chain`` is a sha256 over the *previous* record's chain plus this
  record's content (:func:`~repro.digest.canonical_digest`, the same
  folding rule the result cache and chaos fingerprints use), so the log
  is a hash chain: any bit flipped in the middle breaks every
  subsequent link and replay refuses the file
  (:class:`JournalCorruption`) instead of serving silently wrong state.
* **Write-ahead + group commit.**  :meth:`Journal.commit` appends the
  record, applies the in-memory mutation, and then blocks until the
  record is durable.  Durability is batched: one flusher thread fsyncs
  whatever accumulated while the previous fsync ran, so N concurrent
  commits share O(1) fsyncs (group commit) and the ack-latency cost
  stays near a single fsync.
* **Torn-write tolerant replay.**  A crash can tear the final record
  (partial line, no newline, garbage tail).  Replay accepts the longest
  valid chained prefix and truncates the rest -- but only when the
  damage is confined to the tail.  A damaged record *followed by
  parseable records* is corruption, not a torn write, and replay fails
  closed.
* **Compacted snapshots.**  Every ``snapshot_every`` records the owner
  serializes its full state; the snapshot is written atomically
  (tmp + fsync + rename), the log rotates to a fresh segment, and old
  segments are deleted.  Recovery is newest-valid-snapshot plus the
  tail of records after it, so the log never grows without bound and
  recovery time is O(snapshot interval), not O(history).

The journal is deliberately generic: it stores ``(kind, data)`` records
and snapshot dicts, and knows nothing about placements.  The service
layer (:mod:`repro.service.daemon`, :mod:`repro.service.broker`)
defines the record vocabulary and the recovery semantics.
"""

from __future__ import annotations

import json
import os
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..digest import canonical_digest

__all__ = [
    "Journal",
    "JournalCorruption",
    "JournalRecord",
    "RecoveredState",
]

JOURNAL_VERSION = 1

#: The chain hash of the empty log -- the ``prev`` of record 1.
GENESIS = canonical_digest(("repro-journal-genesis",))

_SEGMENT_RE = re.compile(r"^wal-(\d{12})\.ndjson$")
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})\.json$")


class JournalCorruption(RuntimeError):
    """The log is damaged beyond torn-tail tolerance: a record fails
    its chain hash (or does not parse) *and* parseable records follow
    it.  Recovery fails closed instead of serving a guessed state."""


@dataclass(frozen=True)
class JournalRecord:
    """One committed operation as it appears on disk."""

    seq: int
    kind: str
    data: Dict[str, Any]
    chain: str

    def to_line(self) -> str:
        return json.dumps(
            {"v": JOURNAL_VERSION, "seq": self.seq, "kind": self.kind,
             "data": self.data, "chain": self.chain},
            separators=(",", ":"), sort_keys=True,
        )


@dataclass
class RecoveredState:
    """What :meth:`Journal.recover` found on disk."""

    #: The newest valid snapshot's state dict (``None`` on a fresh or
    #: snapshot-less journal).
    snapshot: Optional[Dict[str, Any]] = None
    #: Records after the snapshot, in seq order, duplicates dropped.
    records: List[JournalRecord] = field(default_factory=list)
    #: Sequence number replay ended at.
    seq: int = 0
    #: Diagnostics for metrics and the recovery report.
    truncated_tail_bytes: int = 0
    duplicate_records: int = 0
    skipped_snapshots: int = 0

    @property
    def empty(self) -> bool:
        return self.snapshot is None and not self.records


def record_chain(prev_chain: str, seq: int, kind: str,
                 data: Dict[str, Any]) -> str:
    """The chain hash folding rule (shared with tests)."""
    return canonical_digest((
        prev_chain, str(seq), kind,
        json.dumps(data, separators=(",", ":"), sort_keys=True),
    ))


class Journal:
    """An append-only, hash-chained, snapshot-compacted NDJSON WAL.

    ``durability`` selects what an acked commit survives:

    * ``"fsync"`` (default) -- group-commit fsync; survives power loss;
    * ``"flush"``           -- flushed to the OS; survives process
      death (``kill -9``) but not a machine crash;
    * ``"none"``            -- buffered only; benchmarking baseline.

    All methods are thread-safe.  ``commit`` serializes the
    append+apply pair under one lock so replay order always equals
    apply order, then waits for durability *outside* the lock --
    concurrent committers pipeline behind one fsync.
    """

    def __init__(self, directory: str, durability: str = "fsync",
                 snapshot_every: int = 256,
                 metrics=None) -> None:
        if durability not in ("fsync", "flush", "none"):
            raise ValueError(f"unknown durability {durability!r}")
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.directory = directory
        self.durability = durability
        self.snapshot_every = snapshot_every
        os.makedirs(directory, exist_ok=True)

        self._lock = threading.Lock()
        self._sync_cond = threading.Condition(self._lock)
        self._closed = False
        self._file = None
        self._segment_base = 0
        self._seq = 0
        self._chain = GENESIS
        self._written_seq = 0
        self._synced_seq = 0
        self._durable_offset = 0
        self._records_since_snapshot = 0
        self._bytes_written = 0

        # Instruments are optional: a bare Journal (tests, tools) runs
        # without a registry.
        self._h_append = self._c_records = self._c_fsyncs = None
        self._c_snapshots = self._g_bytes = None
        if metrics is not None:
            self._h_append = metrics.histogram(
                "journal_append_ms",
                "wall milliseconds per journal commit (ack-to-durable)")
            self._c_records = metrics.counter(
                "journal_records_total", "operations journaled")
            self._c_fsyncs = metrics.counter(
                "journal_fsyncs_total", "group-commit fsync batches")
            self._c_snapshots = metrics.counter(
                "journal_snapshots_total", "compaction snapshots written")
            self._g_bytes = metrics.gauge(
                "journal_bytes", "bytes across live journal files")

        self._flusher: Optional[threading.Thread] = None
        if self.durability == "fsync":
            self._flusher = threading.Thread(
                target=self._flush_loop, name="repro-journal-fsync",
                daemon=True,
            )

    # ------------------------------------------------------------------
    # Recovery (call exactly once, before the first commit)
    # ------------------------------------------------------------------

    def recover(self) -> RecoveredState:
        """Read everything valid off disk and position the writer.

        Chooses the newest loadable snapshot, replays every chained
        record after it (across segment files, in order), tolerates a
        torn tail by truncating it, and raises
        :class:`JournalCorruption` on mid-log damage.  After recover()
        the journal appends exactly where the valid history ended.
        """
        with self._lock:
            if self._file is not None:
                raise RuntimeError("recover() must precede commits")
            state = RecoveredState()
            snapshots = self._list(_SNAPSHOT_RE)
            segments = self._list(_SEGMENT_RE)

            chosen_seq = 0
            for snap_seq, name in reversed(snapshots):
                try:
                    with open(os.path.join(self.directory, name),
                              "r", encoding="utf-8") as handle:
                        payload = json.load(handle)
                    if payload.get("seq") != snap_seq:
                        raise ValueError("snapshot seq mismatch")
                    state.snapshot = payload
                    chosen_seq = snap_seq
                    break
                except (OSError, ValueError, json.JSONDecodeError):
                    state.skipped_snapshots += 1

            self._seq = chosen_seq
            self._chain = (state.snapshot.get("chain", GENESIS)
                           if state.snapshot else GENESIS)

            tail_segment: Optional[str] = None
            for index, (base, name) in enumerate(segments):
                path = os.path.join(self.directory, name)
                last = index == len(segments) - 1
                for record in self._replay_segment(path, last, state):
                    if record.seq <= self._seq:
                        # Duplicate replay (an injected duplicated
                        # frame, or a segment overlapping the
                        # snapshot): idempotent, skip.
                        state.duplicate_records += 1
                        continue
                    if record.seq != self._seq + 1:
                        raise JournalCorruption(
                            f"sequence gap: have {self._seq}, "
                            f"next record is {record.seq} in {name}"
                        )
                    state.records.append(record)
                    self._seq = record.seq
                    self._chain = record.chain
                if last:
                    tail_segment = path
                    self._segment_base = base

            state.seq = self._seq
            if tail_segment is None:
                self._segment_base = self._seq
                tail_segment = self._segment_path(self._seq)
            self._open_segment(tail_segment)
            self._written_seq = self._synced_seq = self._seq
            self._refresh_bytes_locked()
        if self._flusher is not None:
            self._flusher.start()
        return state

    def _replay_segment(self, path: str, is_tail: bool,
                        state: RecoveredState) -> Iterator[JournalRecord]:
        """Yield chain-valid records; handle damage per the tail rule."""
        with open(path, "rb") as handle:
            raw = handle.read()
        offset = 0
        lines = raw.split(b"\n")
        chain = self._chain
        seq = self._seq
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                offset += len(line) + 1
                continue
            record = self._parse_record(stripped, chain, seq)
            if record is None:
                remainder = lines[index + 1:]
                if is_tail and not _any_parseable(remainder):
                    # Torn tail: accept the prefix, truncate the rest.
                    torn = len(raw) - offset
                    state.truncated_tail_bytes += torn
                    with open(path, "ab") as handle:
                        handle.truncate(offset)
                    return
                raise JournalCorruption(
                    f"damaged record at byte {offset} of {path} with "
                    f"valid records after it"
                )
            if record.seq > seq:
                chain = record.chain
                seq = record.seq
            yield record
            offset += len(line) + 1

    @staticmethod
    def _parse_record(line: bytes, prev_chain: str,
                      prev_seq: int) -> Optional[JournalRecord]:
        """Decode + chain-verify one line; ``None`` if invalid.

        A record whose seq is not past ``prev_seq`` (a duplicated
        frame) is verified against its *own* position being unknown --
        we only require it to be well-formed JSON with the record
        shape; the caller drops it as a duplicate.
        """
        try:
            payload = json.loads(line.decode("utf-8"))
            seq = payload["seq"]
            kind = payload["kind"]
            data = payload["data"]
            chain = payload["chain"]
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return None
        if not isinstance(seq, int) or not isinstance(kind, str) \
                or not isinstance(data, dict) or not isinstance(chain, str):
            return None
        if seq <= prev_seq:
            return JournalRecord(seq, kind, data, chain)
        if record_chain(prev_chain, seq, kind, data) != chain:
            return None
        return JournalRecord(seq, kind, data, chain)

    # ------------------------------------------------------------------
    # Commits
    # ------------------------------------------------------------------

    def commit(self, kind: str, data: Dict[str, Any],
               apply: Optional[Callable[[], Any]] = None) -> int:
        """Write-ahead commit: journal first, then apply, then ack.

        The record is appended and ``apply()`` (the in-memory mutation)
        runs under the journal lock, so the on-disk order is exactly
        the apply order.  The call returns -- and the caller may ack
        the client -- only once the record is durable under the
        configured ``durability``.  Returns the record's seq.
        """
        import time as _time

        begun = _time.perf_counter()
        with self._lock:
            if self._closed:
                raise RuntimeError("journal is closed")
            if self._file is None:
                raise RuntimeError("journal used before recover()")
            seq = self._seq + 1
            chain = record_chain(self._chain, seq, kind, data)
            record = JournalRecord(seq, kind, data, chain)
            line = record.to_line() + "\n"
            encoded = line.encode("utf-8")
            self._file.write(encoded)
            self._bytes_written += len(encoded)
            self._seq = seq
            self._chain = chain
            self._written_seq = seq
            self._records_since_snapshot += 1
            if apply is not None:
                apply()
            if self.durability == "fsync":
                self._sync_cond.notify_all()
        if self.durability == "fsync":
            self._await_sync(seq)
        elif self.durability == "flush":
            with self._lock:
                self._flush_locked()
        if self._c_records is not None:
            self._c_records.inc()
            self._h_append.observe((_time.perf_counter() - begun) * 1e3)
            self._g_bytes.set(float(self._bytes_written))
        return seq

    append = commit

    def _await_sync(self, seq: int) -> None:
        with self._sync_cond:
            while self._synced_seq < seq and not self._closed:
                self._sync_cond.wait(timeout=0.5)

    def _flush_loop(self) -> None:
        """Group commit: one fsync covers every record that accumulated
        while the previous fsync was in flight."""
        while True:
            with self._sync_cond:
                while (self._written_seq <= self._synced_seq
                       and not self._closed):
                    self._sync_cond.wait(timeout=0.5)
                if self._closed:
                    return
                target = self._written_seq
                file = self._file
                file.flush()
            try:
                os.fsync(file.fileno())
            except (OSError, ValueError):  # pragma: no cover - fd gone
                with self._sync_cond:
                    if self._closed:
                        return
                continue
            with self._sync_cond:
                self._synced_seq = max(self._synced_seq, target)
                try:
                    self._durable_offset = file.tell()
                except (OSError, ValueError):  # pragma: no cover
                    pass
                if self._c_fsyncs is not None:
                    self._c_fsyncs.inc()
                self._sync_cond.notify_all()

    def _flush_locked(self) -> None:
        self._file.flush()
        self._synced_seq = self._written_seq
        self._durable_offset = self._file.tell()

    def sync(self) -> None:
        """Force everything written so far durable (drain/shutdown)."""
        with self._lock:
            if self._file is None or self._closed:
                return
            self._flush_locked()
            file = self._file
        if self.durability == "fsync":
            try:
                os.fsync(file.fileno())
            except (OSError, ValueError):  # pragma: no cover - fd gone
                pass

    # ------------------------------------------------------------------
    # Snapshots / compaction
    # ------------------------------------------------------------------

    def maybe_snapshot(self, state_fn: Callable[[], Dict[str, Any]]) -> bool:
        """Compact when ``snapshot_every`` records accumulated."""
        with self._lock:
            due = self._records_since_snapshot >= self.snapshot_every
        if not due:
            return False
        self.snapshot(state_fn)
        return True

    def snapshot(self, state_fn: Callable[[], Dict[str, Any]]) -> int:
        """Serialize full state, rotate the log, delete old segments.

        ``state_fn`` runs under the journal lock so the snapshot is
        consistent with a record boundary: it sees exactly the state
        produced by records ``1..seq``.
        """
        with self._lock:
            if self._file is None or self._closed:
                raise RuntimeError("journal not open")
            seq = self._seq
            state = dict(state_fn())
            state["seq"] = seq
            state["chain"] = self._chain
            state["v"] = JOURNAL_VERSION
            # Seal the current segment before the snapshot claims to
            # cover it.
            self._flush_locked()
            old_file = self._file
            try:
                os.fsync(old_file.fileno())
            except (OSError, ValueError):  # pragma: no cover
                pass
            # New segment first: if we crash before the snapshot
            # renames into place, recovery replays the old snapshot
            # plus both segments and loses nothing.
            self._segment_base = seq
            self._open_segment(self._segment_path(seq))
            self._records_since_snapshot = 0

            tmp = os.path.join(self.directory, f".snapshot-{seq:012d}.tmp")
            final = os.path.join(self.directory, f"snapshot-{seq:012d}.json")
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(state, handle, separators=(",", ":"),
                          sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
            old_file.close()
            self._gc_locked(seq)
            self._refresh_bytes_locked()
            if self._c_snapshots is not None:
                self._c_snapshots.inc()
        return seq

    def _gc_locked(self, covered_seq: int) -> None:
        """Drop snapshots/segments the newest snapshot supersedes.

        One older snapshot generation (and the segments needed to
        replay from it) is kept as insurance against a latent defect in
        the newest snapshot file.
        """
        snapshots = self._list(_SNAPSHOT_RE)
        keep_from = snapshots[-2][0] if len(snapshots) >= 2 else covered_seq
        for snap_seq, name in snapshots[:-2]:
            _unlink(os.path.join(self.directory, name))
        for base, name in self._list(_SEGMENT_RE):
            if base < keep_from and base != self._segment_base:
                # A segment is replayed from its base seq; it is dead
                # only if an older *kept* snapshot already covers it.
                _unlink(os.path.join(self.directory, name))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def seq(self) -> int:
        with self._lock:
            return self._seq

    @property
    def synced_seq(self) -> int:
        with self._lock:
            return self._synced_seq

    def durable_offset(self) -> int:
        """Bytes of the tail segment known durable (the chaos
        harness's torn-write injection boundary)."""
        with self._lock:
            return self._durable_offset

    def tail_path(self) -> str:
        with self._lock:
            return self._segment_path(self._segment_base)

    def lag(self) -> Dict[str, int]:
        """Durability lag for health checks."""
        with self._lock:
            return {
                "seq": self._seq,
                "synced_seq": self._synced_seq,
                "lag_records": self._seq - self._synced_seq,
                "records_since_snapshot": self._records_since_snapshot,
                "bytes": self._bytes_written,
            }

    def close(self) -> None:
        self.sync()
        with self._sync_cond:
            self._closed = True
            self._sync_cond.notify_all()
            file = self._file
            self._file = None
        if self._flusher is not None and self._flusher.is_alive():
            self._flusher.join(timeout=2.0)
        if file is not None:
            try:
                file.flush()
                if self.durability == "fsync":
                    os.fsync(file.fileno())
            except (OSError, ValueError):  # pragma: no cover
                pass
            file.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals (callers hold the lock unless noted)
    # ------------------------------------------------------------------

    def _segment_path(self, base: int) -> str:
        return os.path.join(self.directory, f"wal-{base:012d}.ndjson")

    def _open_segment(self, path: str) -> None:
        self._file = open(path, "ab")
        self._durable_offset = self._file.tell()

    def _list(self, pattern: re.Pattern) -> List[Tuple[int, str]]:
        """(seq, filename) matches in the directory, ascending seq."""
        found = []
        for name in os.listdir(self.directory):
            match = pattern.match(name)
            if match:
                found.append((int(match.group(1)), name))
        found.sort()
        return found

    def _refresh_bytes_locked(self) -> None:
        total = 0
        for _seq, name in self._list(_SEGMENT_RE) + self._list(_SNAPSHOT_RE):
            try:
                total += os.path.getsize(os.path.join(self.directory, name))
            except OSError:  # pragma: no cover - raced a gc
                pass
        self._bytes_written = total
        if self._g_bytes is not None:
            self._g_bytes.set(float(total))


def _any_parseable(lines: List[bytes]) -> bool:
    """True if any later line still looks like a journal record --
    the torn-tail/corruption discriminator."""
    for line in lines:
        stripped = line.strip()
        if not stripped:
            continue
        try:
            payload = json.loads(stripped.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(payload, dict) and {"seq", "kind", "chain"} <= set(payload):
            return True
    return False


def _unlink(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:  # pragma: no cover - raced
        pass
