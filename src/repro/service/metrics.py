"""A small dependency-free metrics registry for the placement service.

Three instrument kinds, mirroring the Prometheus data model at the
scale this daemon needs:

* :class:`Counter` -- monotone event counts (requests served, cache
  hits, sheds, worker crashes);
* :class:`Gauge` -- instantaneous levels (queue depth, in-flight
  solves, cache bytes);
* :class:`Histogram` -- latency distributions over a bounded sample
  window, summarized as count/sum plus p50/p95/p99 quantiles.

Every instrument lives in a :class:`MetricsRegistry`, which renders the
whole set either as a JSON-able snapshot (embedded in service responses
and ``BENCH_pr5.json``) or as Prometheus-style exposition text (the
``metrics`` request of the wire protocol).  All instruments are
thread-safe: broker threads, the dispatcher, and connection handlers
update them concurrently.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Histograms keep at most this many recent samples; the window bounds
#: memory on a long-running daemon while keeping the quantiles honest
#: over the recent past (a sliding window, not a decaying reservoir --
#: predictable and test-friendly).
_WINDOW = 2048

_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p95", 0.95), ("p99", 0.99),
)


class Counter:
    """A monotonically increasing event counter."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """An instantaneous level that can move both ways."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Latency distribution over a sliding window of recent samples."""

    def __init__(self, name: str, help_text: str = "",
                 window: int = _WINDOW) -> None:
        self.name = name
        self.help_text = help_text
        self._window = window
        self._samples: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            self._samples.append(value)
            if len(self._samples) > self._window:
                del self._samples[: len(self._samples) - self._window]

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile (nearest-rank) of the current window."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def summary(self) -> Dict[str, float]:
        """count/sum/mean plus the standard quantiles (JSON-able)."""
        with self._lock:
            count, total = self._count, self._sum
            ordered = sorted(self._samples)
        record: Dict[str, float] = {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
        }
        for label, q in _QUANTILES:
            if ordered:
                rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
                record[label] = ordered[rank]
        return record


class MetricsRegistry:
    """Creates, owns, and exports every instrument of one service."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument factories (idempotent: same name returns same object)
    # ------------------------------------------------------------------

    def counter(self, name: str, help_text: str = "") -> Counter:
        with self._lock:
            if name not in self._counters:
                self._check_fresh(name, self._counters)
                self._counters[name] = Counter(name, help_text)
            return self._counters[name]

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._check_fresh(name, self._gauges)
                self._gauges[name] = Gauge(name, help_text)
            return self._gauges[name]

    def histogram(self, name: str, help_text: str = "") -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._check_fresh(name, self._histograms)
                self._histograms[name] = Histogram(name, help_text)
            return self._histograms[name]

    def _check_fresh(self, name: str, own: Dict[str, object]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric {name!r} already registered with another kind"
                )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Everything as one JSON-able dict (embedded in responses)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(histograms.items())
            },
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (one sample per line)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        lines: List[str] = []
        for name, counter in sorted(counters.items()):
            if counter.help_text:
                lines.append(f"# HELP {name} {counter.help_text}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_fmt(counter.value)}")
        for name, gauge in sorted(gauges.items()):
            if gauge.help_text:
                lines.append(f"# HELP {name} {gauge.help_text}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(gauge.value)}")
        for name, hist in sorted(histograms.items()):
            summary = hist.summary()
            if hist.help_text:
                lines.append(f"# HELP {name} {hist.help_text}")
            lines.append(f"# TYPE {name} summary")
            for label, _q in _QUANTILES:
                if label in summary:
                    quantile = {"p50": "0.5", "p95": "0.95", "p99": "0.99"}[label]
                    lines.append(
                        f'{name}{{quantile="{quantile}"}} '
                        f"{_fmt(summary[label])}"
                    )
            lines.append(f"{name}_sum {_fmt(summary['sum'])}")
            lines.append(f"{name}_count {_fmt(summary['count'])}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Render integers without a trailing ``.0`` (Prometheus style)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
