"""Asyncio NDJSON front-end for the placement service.

The PR 5 :class:`~repro.service.daemon.ServiceServer` spends one OS
thread per connection, which caps the daemon at a few hundred mostly-
idle controllers.  This front-end multiplexes every connection onto one
event loop: tens of thousands of *idle* NDJSON connections cost a
handful of file descriptors and buffers each, and only requests that
are actually in flight consume real work.

Division of labor, chosen so the event loop never blocks:

* **reading**: ``asyncio`` stream per connection; one request line in,
  one response line out, ``request_id`` correlation -- the identical
  wire protocol the threaded server speaks.
* **parsing/validating**: :func:`~repro.service.protocol.decode_request`
  deserializes whole placement instances, which can be megabytes of
  JSON; it runs on a small thread pool (``parse_workers``), off the
  loop's hot path.
* **executing**: the backend's ``submit()`` is non-blocking (the PR 5
  broker's admission guarantee) and returns a
  :class:`~repro.service.broker.Ticket`; the ticket's done-callback is
  bridged onto the loop with ``call_soon_threadsafe``.  Blocking broker
  and worker internals are untouched.

The ``backend`` is anything with ``submit(request) -> Ticket``: a
:class:`~repro.service.daemon.PlacementService` (one shard) or a
:class:`~repro.service.cluster.ClusterRouter` (many).

Shutdown is loop-native -- no poll interval, no connect-to-self nudge:
``shutdown()`` posts a cancellation onto the loop, which closes the
listener, optionally waits for in-flight requests to be answered
(``drain=True``), then cancels the per-connection readers.  Under zero
traffic that completes in milliseconds.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

from .protocol import (
    ProtocolError,
    Response,
    ResponseStatus,
    decode_request,
    encode_response,
)

__all__ = ["AsyncFrontend"]

#: Per-line byte cap; a line past it is answered BAD_REQUEST instead of
#: buffering without bound.  Sized for ~100k-rule instances.
_DEFAULT_LINE_LIMIT = 256 * 1024 * 1024


def _decode_or_error(line: str):
    """Decode one request line, entirely on the parse pool.

    Returns ``(request, None)`` on success or ``(None, answer)`` with
    the BAD_REQUEST response already encoded -- the event loop only
    ever forwards bytes, it never parses or serializes them.
    """
    try:
        return decode_request(line), None
    except ProtocolError as exc:
        request_id = None
        try:
            request_id = json.loads(line).get("request_id")
        except (json.JSONDecodeError, AttributeError):
            pass
        return None, encode_response(Response(
            status=ResponseStatus.BAD_REQUEST,
            request_id=request_id, error=str(exc)))


class AsyncFrontend:
    """One event loop serving NDJSON for a service or cluster router."""

    def __init__(
        self,
        backend: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        parse_workers: int = 2,
        max_line_bytes: int = _DEFAULT_LINE_LIMIT,
        backlog: int = 512,
    ) -> None:
        self.backend = backend
        self.host = host
        self.port = port
        self.backlog = backlog
        self.max_line_bytes = max_line_bytes
        self._parse_pool = ThreadPoolExecutor(
            max_workers=parse_workers,
            thread_name_prefix="repro-parse")
        # Pre-encoded so the oversize answer costs the loop nothing.
        self._oversize_answer = encode_response(Response(
            status=ResponseStatus.BAD_REQUEST,
            error=f"request line exceeds {max_line_bytes} bytes"))
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._conn_tasks: set = set()
        self._pending = 0
        self._pending_zero: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._shut_down = False
        self._address: Optional[tuple] = None
        # Telemetry (through the backend's registry when it has one).
        metrics = getattr(backend, "metrics", None)
        self._g_connections = (metrics.gauge(
            "frontend_connections", "open NDJSON connections")
            if metrics is not None else None)
        self._c_requests = (metrics.counter(
            "frontend_requests_total", "request lines served")
            if metrics is not None else None)
        self._c_bad_lines = (metrics.counter(
            "frontend_bad_lines_total",
            "lines answered BAD_REQUEST (malformed or oversized)")
            if metrics is not None else None)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple:
        if self._address is None:
            raise RuntimeError("frontend not started")
        return self._address

    @property
    def port_(self) -> int:  # pragma: no cover - convenience alias
        return self.address[1]

    def start(self) -> None:
        """Serve on a background event-loop thread (tests, embedding)."""
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-async-frontend", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("async frontend failed to start")
        if self._address is None:
            raise RuntimeError("async frontend failed to bind")

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI daemon path)."""
        self._run_loop()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        finally:
            try:
                # Cancel any straggler tasks so the loop closes clean.
                for task in asyncio.all_tasks(loop):
                    task.cancel()
                loop.run_until_complete(
                    loop.shutdown_asyncgens())
            except Exception:  # pragma: no cover - teardown best effort
                pass
            loop.close()
            self._stopped.set()

    async def _serve(self) -> None:
        self._pending_zero = asyncio.Event()
        self._pending_zero.set()
        self._stop_accepting = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port,
                limit=self.max_line_bytes, backlog=self.backlog,
                reuse_address=True)
        except OSError:
            self._started.set()
            raise
        self._address = self._server.sockets[0].getsockname()[:2]
        self._started.set()
        async with self._server:
            await self._stop_accepting.wait()
            # Stop accepting, then (drain path) let in-flight answers
            # land before the reader tasks are cancelled.
            self._server.close()
            await self._server.wait_closed()
            if self._drain_requested and self._pending:
                try:
                    await asyncio.wait_for(
                        self._pending_zero.wait(),
                        timeout=self._drain_timeout)
                except asyncio.TimeoutError:  # pragma: no cover - hung
                    pass
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)

    def shutdown(self, drain: bool = True,
                 drain_timeout: Optional[float] = 30.0) -> None:
        """Stop serving; graceful by default.

        ``drain=True``: close the listener, wait for every in-flight
        request to be answered on its connection, then disconnect the
        idle readers.  The *backend* is not closed here -- the caller
        owns its lifetime (and typically drains its broker next).
        Loop-native: completes promptly under zero traffic.  Safe from
        any thread; idempotent.
        """
        with self._shutdown_lock:
            if self._shut_down:
                return
            self._shut_down = True
        self._drain_requested = drain
        self._drain_timeout = (drain_timeout if drain_timeout is not None
                               else 30.0)
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._stop_accepting.set)
            except RuntimeError:  # pragma: no cover - loop just closed
                pass
        self._stopped.wait(timeout=self._drain_timeout + 10.0)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._parse_pool.shutdown(wait=False)

    def __enter__(self) -> "AsyncFrontend":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        if self._g_connections is not None:
            self._g_connections.inc()
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # A line past the limit: answer once, then drop the
                    # connection -- the stream offset is unrecoverable.
                    await self._write_line(writer, self._oversize_answer)
                    if self._c_bad_lines is not None:
                        self._c_bad_lines.inc()
                    return
                if not raw:
                    return  # EOF: client hung up.
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                answer = await self._serve_line(line)
                try:
                    await self._write_line(writer, answer)
                except (ConnectionResetError, BrokenPipeError):
                    return
        except asyncio.CancelledError:
            pass  # shutdown path: fall through to the cleanup below
        except (ConnectionResetError, BrokenPipeError,
                TimeoutError, OSError):  # pragma: no cover - peer died
            pass
        finally:
            self._conn_tasks.discard(task)
            if self._g_connections is not None:
                self._g_connections.dec()
            try:
                writer.close()
            except Exception:  # pragma: no cover - already torn down
                pass

    async def _serve_line(self, line: str) -> str:
        """One request line -> one response line, never raising."""
        loop = asyncio.get_running_loop()
        self._pending += 1
        self._pending_zero.clear()
        if self._c_requests is not None:
            self._c_requests.inc()
        try:
            try:
                # Parse + validate off the loop: instance payloads can
                # be large, and json decoding holds the GIL anyway --
                # but on the pool it never stalls connection I/O.  The
                # malformed-line answer is encoded there too.
                request, bad_answer = await loop.run_in_executor(
                    self._parse_pool, _decode_or_error, line)
            except RuntimeError as exc:  # pragma: no cover - pool closed
                # Shutdown race: one small constant encode on the loop.
                # repro: allow[REP-ASYNC] pool is closed; tiny fixed-size payload on the shutdown path
                return encode_response(Response(
                    status=ResponseStatus.ERROR,
                    error=f"frontend shutting down: {exc}"))
            if bad_answer is not None:
                if self._c_bad_lines is not None:
                    self._c_bad_lines.inc()
                return bad_answer
            response = await self._submit(request)
            try:
                # Responses carry whole placements; encode off the loop.
                return await loop.run_in_executor(
                    self._parse_pool, encode_response, response)
            except RuntimeError:  # pragma: no cover - pool closed
                # repro: allow[REP-ASYNC] pool is closed; last in-flight answer on the shutdown path
                return encode_response(response)
        finally:
            self._pending -= 1
            if self._pending == 0:
                self._pending_zero.set()

    async def _submit(self, request) -> Response:
        """Bridge the broker's threading Ticket into the event loop."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()

        def resolved(response: Response) -> None:
            def _set() -> None:
                if not future.done():
                    future.set_result(response)
            try:
                loop.call_soon_threadsafe(_set)
            except RuntimeError:  # pragma: no cover - loop closed
                pass

        try:
            ticket = self.backend.submit(request)
        except Exception as exc:  # pragma: no cover - defensive net
            return Response(
                status=ResponseStatus.ERROR,
                kind=getattr(request, "kind", ""),
                request_id=getattr(request, "request_id", None),
                error=f"submit failed: {type(exc).__name__}: {exc}")
        ticket.add_done_callback(resolved)
        return await future

    @staticmethod
    async def _write_line(writer: asyncio.StreamWriter, line: str) -> None:
        writer.write(line.encode("utf-8") + b"\n")
        await writer.drain()
